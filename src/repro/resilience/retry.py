"""Retry policies: capped exponential backoff on simulated time.

:class:`RetryPolicy` decides *whether* and *how long* to wait between
attempts; :func:`call_with_policy` is the execution loop that applies a
policy (and optionally a :class:`~repro.resilience.breaker.CircuitBreaker`)
to any zero-argument callable. Backoff jitter is derived from a stable
hash of ``(seed, key, attempt)``, so two runs with the same seed produce
byte-identical retry schedules — the property every deterministic fault
test in ``tests/test_failure_injection.py`` relies on.

All waiting happens on the caller's :class:`~repro.services.base.SimClock`
(duck-typed: anything with ``now`` and ``advance``); nothing here sleeps
on wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from ..errors import (
    CircuitOpen,
    DeadlineExceeded,
    NotFound,
    QuotaExhausted,
    ServiceError,
)
from ..utils.rng import stable_hash
from .breaker import CircuitBreaker

T = TypeVar("T")

#: Callback fired before each backoff wait: ``(service, attempt, delay,
#: exc)`` where ``attempt`` is the 1-based attempt that just failed.
RetryObserver = Callable[[str, int, float, ServiceError], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay_for`` computes the wait after the ``attempt``-th failure
    (1-based): ``base_delay * multiplier**(attempt-1)`` capped at
    ``max_delay``, spread by ``±jitter`` (a fraction, e.g. 0.1 = ±10%)
    derived deterministically from ``(seed, key, attempt)``. A server's
    explicit ``retry_after`` hint always wins when it is longer.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays cannot be negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")

    def should_retry(self, attempt: int, exc: ServiceError) -> bool:
        """True when the ``attempt``-th failure (1-based) may be retried."""
        return exc.retryable and attempt < self.max_attempts

    def delay_for(self, attempt: int, *, key: str = "",
                  retry_after: Optional[float] = None) -> float:
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            unit = stable_hash(f"retry:{self.seed}:{key}:{attempt}") / 2 ** 32
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay


def breaker_counts(exc: ServiceError) -> bool:
    """Whether a failure should count toward tripping a breaker.

    Infrastructure failures count: transient/retryable errors and hard
    quota exhaustion. Semantic answers do not: :class:`NotFound` ("no
    such record") and permanent per-item rejections (e.g. the GSB
    transparency report's anti-automation block, which is deterministic
    per URL and says nothing about the service's health).
    """
    if isinstance(exc, NotFound):
        return False
    return exc.retryable or isinstance(exc, QuotaExhausted)


def call_with_policy(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    clock,
    service: str = "",
    key: str = "",
    breaker: Optional[CircuitBreaker] = None,
    on_retry: Optional[RetryObserver] = None,
    deadline: Optional[float] = None,
) -> T:
    """Run ``fn`` under a retry policy and an optional circuit breaker.

    Replaces ad-hoc ``wait_and_charge``-style loops at call sites: on a
    retryable :class:`ServiceError` the simulated clock advances by the
    policy's backoff (honoring ``retry_after`` hints) and the call is
    re-attempted, up to ``policy.max_attempts`` total attempts. The
    exception that finally escapes carries the number of attempts made
    in ``exc.resilience_attempts``, so callers can file accurate
    :class:`~repro.core.enrichment.EnrichmentGap` records.

    With a breaker, every attempt first asks :meth:`CircuitBreaker.allow`;
    an open breaker raises :class:`~repro.errors.CircuitOpen` without
    touching the service.

    ``deadline`` is an absolute simulated instant bounding the caller's
    patience. A call that starts past its deadline, or whose next
    backoff sleep would land past it, raises a structured
    :class:`~repro.errors.DeadlineExceeded` instead of sleeping — the
    remaining budget could never cover the wait, so burning it on
    backoff would only make the caller later. The deadline bounds
    *waiting*, not the attempt itself (service simulators do not
    advance the clock mid-call), which keeps the check side-effect-free:
    no partial backoff is ever burned on an abandoned retry.
    """

    def _expired(now: float) -> DeadlineExceeded:
        return DeadlineExceeded(
            f"{service or key}: deadline exceeded "
            f"(t={now:.1f} past deadline {deadline:.1f})",
            service=service,
            deadline=deadline,
            remaining=max(0.0, deadline - now),
        )

    attempt = 0
    while True:
        if deadline is not None and clock.now >= deadline:
            exc = _expired(clock.now)
            exc.resilience_attempts = attempt
            raise exc
        if breaker is not None and not breaker.allow():
            exc = CircuitOpen(
                f"{service or breaker.service}: circuit open "
                f"(cooling down until t={breaker.retry_at:.1f})",
                service=service or breaker.service,
            )
            exc.resilience_attempts = attempt
            raise exc
        attempt += 1
        try:
            result = fn()
        except ServiceError as exc:
            if breaker is not None and breaker_counts(exc):
                breaker.record_failure()
            if not policy.should_retry(attempt, exc):
                exc.resilience_attempts = attempt
                raise
            delay = policy.delay_for(
                attempt, key=key or service,
                retry_after=getattr(exc, "retry_after", None),
            )
            if deadline is not None and clock.now + delay > deadline:
                timeout = _expired(clock.now)
                timeout.resilience_attempts = attempt
                timeout.__cause__ = exc
                raise timeout
            if on_retry is not None:
                on_retry(service or exc.service, attempt, delay, exc)
            clock.advance(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result
