"""Per-service circuit breakers on simulated time.

A :class:`CircuitBreaker` protects callers from hammering a service that
is clearly down: after ``failure_threshold`` consecutive infrastructure
failures it *opens* and rejects calls instantly (no request charged, no
backoff burned) until ``cooldown`` simulated seconds have passed. The
first call after the cool-down *half-opens* the breaker as a probe — one
success closes it again, one failure re-opens it for another cool-down.

State transitions are observable two ways: an optional ``observer``
callback ``(service, event, value)`` (mirroring the meter observer shape
so :class:`~repro.obs.Telemetry` can count them) and :meth:`snapshot`
for end-of-run reporting.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional


class BreakerState(str, enum.Enum):
    """The classic three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Observer signature: ``(service, event, value)`` where event is one of
#: ``open`` / ``half_open`` / ``close`` / ``fast_fail``.
BreakerObserver = Callable[[str, str, float], None]


class CircuitBreaker:
    """Consecutive-failure breaker cooling down on the simulated clock."""

    def __init__(
        self,
        service: str,
        clock,
        *,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        observer: Optional[BreakerObserver] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown cannot be negative")
        self.service = service
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.observer = observer
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._opens = 0
        self._fast_fails = 0
        self._half_open_probes = 0
        self._half_open_successes = 0

    # -- introspection --------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def opens(self) -> int:
        """How many times the breaker has tripped open."""
        return self._opens

    @property
    def fast_fails(self) -> int:
        """Calls rejected without reaching the service."""
        return self._fast_fails

    @property
    def half_open_probes(self) -> int:
        """Probe calls allowed through a half-open breaker."""
        return self._half_open_probes

    @property
    def half_open_successes(self) -> int:
        """Probes that succeeded and closed the breaker."""
        return self._half_open_successes

    @property
    def retry_at(self) -> float:
        """Simulated time at which an open breaker will half-open."""
        if self._opened_at is None:
            return self.clock.now
        return self._opened_at + self.cooldown

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self._state.value,
            "opens": self._opens,
            "fast_fails": self._fast_fails,
            "consecutive_failures": self._consecutive_failures,
            "opened_at": self._opened_at,
            "half_open_probes": self._half_open_probes,
            "half_open_successes": self._half_open_successes,
        }

    def state_dict(self) -> Dict[str, Any]:
        """Complete internal state for the run journal."""
        return {
            "state": self._state.value,
            "consecutive_failures": self._consecutive_failures,
            "opened_at": self._opened_at,
            "opens": self._opens,
            "fast_fails": self._fast_fails,
            "half_open_probes": self._half_open_probes,
            "half_open_successes": self._half_open_successes,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore journaled state without emitting observer events (the
        transitions were already counted in the crashed run)."""
        self._state = BreakerState(state["state"])
        self._consecutive_failures = int(state["consecutive_failures"])
        opened = state["opened_at"]
        self._opened_at = None if opened is None else float(opened)
        self._opens = int(state["opens"])
        self._fast_fails = int(state["fast_fails"])
        # Journals written before probe accounting existed lack these.
        self._half_open_probes = int(state.get("half_open_probes", 0))
        self._half_open_successes = int(state.get("half_open_successes", 0))

    # -- state machine --------------------------------------------------------

    def _emit(self, event: str, value: float = 1.0) -> None:
        if self.observer is not None:
            self.observer(self.service, event, value)

    def allow(self) -> bool:
        """Whether a call may proceed; open breakers count a fast-fail."""
        if self._state is BreakerState.OPEN:
            if self.clock.now >= self.retry_at:
                self._state = BreakerState.HALF_OPEN
                self._emit("half_open")
            else:
                self._fast_fails += 1
                self._emit("fast_fail")
                return False
        if self._state is BreakerState.HALF_OPEN:
            # Every call allowed while half-open is one recovery probe;
            # the probe/success ratio is how the serve degradation
            # controller tells "recovering" from "still failing".
            self._half_open_probes += 1
        return True

    def record_success(self) -> None:
        if self._state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
        if self._state is not BreakerState.CLOSED:
            self._state = BreakerState.CLOSED
            self._emit("close")
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._trip()
        elif (self._state is BreakerState.CLOSED
              and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self.clock.now
        self._opens += 1
        self._emit("open")
