"""Resilience primitives for calls to flaky external services.

The package is the engineered counterpart to the luck the paper's
pipeline needed (§3.1: the Twitter academic API shutdown, Smishing.eu
ceasing operations, hard API quotas). It splits into two layers:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (capped
  exponential backoff with deterministic jitter on simulated time) and
  :func:`call_with_policy`, the loop that applies a policy to any call.
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, a
  per-service closed/open/half-open state machine cooling down on the
  simulated clock.

Everything is deterministic: same seed, same fault plan, same schedule.
"""

from .breaker import BreakerObserver, BreakerState, CircuitBreaker
from .retry import RetryPolicy, RetryObserver, breaker_counts, call_with_policy

__all__ = [
    "BreakerObserver",
    "BreakerState",
    "CircuitBreaker",
    "RetryPolicy",
    "RetryObserver",
    "breaker_counts",
    "call_with_policy",
]
