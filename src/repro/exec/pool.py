"""Worker pools with a canonical-merge guarantee.

A :class:`WorkerPool` runs a batch of independent tasks and returns the
results **in task-submission order**, no matter which worker finished
first. That canonical merge is the property the deterministic execution
engine (:mod:`repro.exec.engine`) builds on: as long as each task is a
pure function of its input (no shared mutable state), the merged output
of ``ThreadPool(4)`` is byte-identical to :class:`SerialPool`.

Two implementations share the interface:

* :class:`SerialPool` — runs tasks inline, one after another. The
  reference semantics; zero overhead, zero concurrency.
* :class:`ThreadPool` — a ``concurrent.futures`` thread pool. Results
  are gathered by submission index; a task that raises re-raises the
  exception of the *lowest-indexed* failing task (again independent of
  completion order, so failures are deterministic too).

Note on the GIL: CPython threads do not speed up pure-Python compute;
the engine's wall-time wins come from the
:class:`~repro.exec.cache.EnrichmentCache` deduplicating work, while the
pool provides the sharding/merge structure (and genuine parallelism on
GIL-free builds).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool:
    """Interface: run tasks, merge results in canonical (input) order."""

    #: How many tasks may run concurrently (1 for serial pools).
    workers: int = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for serial pools)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialPool(WorkerPool):
    """Inline execution in submission order — the reference semantics."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPool(WorkerPool):
    """Thread-backed pool whose merge order ignores completion order."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-exec"
        )

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        futures = [self._executor.submit(fn, item) for item in items]
        # Gather in submission order. Waiting on futures[0] first is fine:
        # every future completes regardless of which we await, and
        # .result() re-raises the lowest-indexed failure deterministically.
        results: List[R] = []
        error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                error = error or exc
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def make_pool(workers: int) -> WorkerPool:
    """``workers <= 1`` → :class:`SerialPool`, else :class:`ThreadPool`."""
    if workers <= 1:
        return SerialPool()
    return ThreadPool(workers)


def canonical_merge(chunks: Sequence[Sequence[R]]) -> List[R]:
    """Flatten per-shard result lists in shard order (helper for tests)."""
    merged: List[R] = []
    for chunk in chunks:
        merged.extend(chunk)
    return merged


def shard(items: Sequence[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` balanced round-robin chunks.

    Submitting one *chunk* per worker instead of one future per item
    keeps executor overhead negligible when items are many and cheap
    (the enrichment precompute has thousands of sub-millisecond tasks).
    Round-robin keeps the chunks within one item of each other in size.
    Order within and across chunks is deterministic, so any consumer
    that merges canonically is unaffected by the chunking.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return [list(items[i::shards]) for i in range(min(shards, len(items)))]
