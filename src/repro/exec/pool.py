"""Worker pools with a canonical-merge guarantee.

A :class:`WorkerPool` runs a batch of independent tasks and returns the
results **in task-submission order**, no matter which worker finished
first. That canonical merge is the property the deterministic execution
engine (:mod:`repro.exec.engine`) builds on: as long as each task is a
pure function of its input (no shared mutable state), the merged output
of ``ThreadPool(4)`` is byte-identical to :class:`SerialPool`.

Three implementations share the interface:

* :class:`SerialPool` — runs tasks inline, one after another. The
  reference semantics; zero overhead, zero concurrency.
* :class:`ThreadPool` — a ``concurrent.futures`` thread pool. Results
  are gathered by submission index; a task that raises re-raises the
  exception of the *lowest-indexed* failing task (again independent of
  completion order, so failures are deterministic too).
* :class:`ProcessPool` — a ``concurrent.futures`` process pool with the
  same submission-order merge and lowest-indexed-failure semantics.
  Tasks and their results cross a pickle boundary, so callers must hand
  it module-level callables or picklable task objects — never closures
  over live services, meters, or locks.

Note on the GIL: CPython threads do not speed up pure-Python compute;
the engine's wall-time wins on thread pools come from the
:class:`~repro.exec.cache.EnrichmentCache` deduplicating work, while the
pool provides the sharding/merge structure. :class:`ProcessPool` is the
true multi-core path: each worker is its own interpreter, so the pure
precompute phase scales with physical cores.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool:
    """Interface: run tasks, merge results in canonical (input) order.

    Pools also keep per-worker task accounting (task count, busy wall
    seconds) for the performance observatory — timing is observational
    only and never feeds back into scheduling, so it cannot perturb the
    canonical merge.
    """

    #: How many tasks may run concurrently (1 for serial pools).
    workers: int = 1
    #: Display label set by the engine ("collection", "enrichment", ...).
    label: str = "pool"

    def __init__(self) -> None:
        self.tasks = 0
        self.busy_seconds = 0.0
        self._per_worker: Dict[str, Dict[str, float]] = {}
        self._stats_lock = threading.Lock()

    def _record_task(self, worker: str, seconds: float) -> None:
        with self._stats_lock:
            self.tasks += 1
            self.busy_seconds += seconds
            slot = self._per_worker.setdefault(
                worker, {"tasks": 0, "busy_seconds": 0.0})
            slot["tasks"] += 1
            slot["busy_seconds"] += seconds

    def stats(self) -> Dict[str, object]:
        """Task accounting for the observatory's exec snapshot."""
        with self._stats_lock:
            return {
                "label": self.label,
                "kind": type(self).__name__,
                "workers": self.workers,
                "tasks": self.tasks,
                "busy_seconds": self.busy_seconds,
                "per_worker": {name: dict(slot) for name, slot
                               in sorted(self._per_worker.items())},
            }

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for serial pools)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialPool(WorkerPool):
    """Inline execution in submission order — the reference semantics."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        results: List[R] = []
        for item in items:
            started = time.perf_counter()
            try:
                results.append(fn(item))
            finally:
                self._record_task("worker-0",
                                  time.perf_counter() - started)
        return results


class ThreadPool(WorkerPool):
    """Thread-backed pool whose merge order ignores completion order."""

    def __init__(self, workers: int):
        super().__init__()
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-exec"
        )

    def _timed(self, fn: Callable[[T], R], item: T) -> R:
        started = time.perf_counter()
        try:
            return fn(item)
        finally:
            self._record_task(threading.current_thread().name,
                              time.perf_counter() - started)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        futures = [self._executor.submit(self._timed, fn, item)
                   for item in items]
        # Gather in submission order. Waiting on futures[0] first is fine:
        # every future completes regardless of which we await, and
        # .result() re-raises the lowest-indexed failure deterministically.
        results: List[R] = []
        error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                error = error or exc
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def _timed_call(fn: Callable[[T], R], item: T) -> tuple:
    """Worker-side wrapper: run one task, report who ran it for how long.

    Module-level on purpose — it must be picklable for the process pool.
    Timing happens inside the worker (the parent cannot observe a child's
    busy time), and the accounting triple travels back with the result.
    """
    started = time.perf_counter()
    result = fn(item)
    return (result, multiprocessing.current_process().name,
            time.perf_counter() - started)


class ProcessPool(WorkerPool):
    """Process-backed pool: true multi-core, same canonical merge.

    ``mp_context`` selects the multiprocessing start method; the default
    prefers ``fork`` (cheap startup) and falls back to ``spawn`` where
    fork is unavailable. Passing ``spawn`` explicitly reproduces
    macOS/Windows semantics on any platform — the regression tests do,
    to prove every task survives a from-scratch interpreter.
    """

    def __init__(self, workers: int,
                 mp_context: Optional[multiprocessing.context.BaseContext] = None):
        super().__init__()
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.workers = workers
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
        self._executor = ProcessPoolExecutor(max_workers=workers,
                                             mp_context=mp_context)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        futures = [self._executor.submit(_timed_call, fn, item)
                   for item in items]
        # Same gather discipline as ThreadPool: submission order, with
        # the lowest-indexed failure re-raised deterministically.
        results: List[R] = []
        error: BaseException | None = None
        for future in futures:
            try:
                result, worker, seconds = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                error = error or exc
            else:
                self._record_task(worker, seconds)
                results.append(result)
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=True)


#: The pool kinds `--pool` accepts, in reference-semantics-first order.
POOL_KINDS = ("serial", "thread", "process")


def make_pool(workers: int, kind: str = "thread") -> WorkerPool:
    """Build the pool a policy asks for.

    ``serial`` (or ``workers <= 1`` under any kind) → :class:`SerialPool`;
    ``thread`` → :class:`ThreadPool`; ``process`` → :class:`ProcessPool`.
    """
    if kind not in POOL_KINDS:
        raise ValueError(
            f"unknown pool kind {kind!r}; expected one of {POOL_KINDS}")
    if kind == "serial" or workers <= 1:
        return SerialPool()
    if kind == "process":
        return ProcessPool(workers)
    return ThreadPool(workers)


def canonical_merge(chunks: Sequence[Sequence[R]]) -> List[R]:
    """Flatten per-shard result lists in shard order (helper for tests)."""
    merged: List[R] = []
    for chunk in chunks:
        merged.extend(chunk)
    return merged


def shard(items: Sequence[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` balanced round-robin chunks.

    Submitting one *chunk* per worker instead of one future per item
    keeps executor overhead negligible when items are many and cheap
    (the enrichment precompute has thousands of sub-millisecond tasks).
    Round-robin keeps the chunks within one item of each other in size.
    Order within and across chunks is deterministic, so any consumer
    that merges canonically is unaffected by the chunking.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return [list(items[i::shards]) for i in range(min(shards, len(items)))]
