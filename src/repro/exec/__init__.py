"""Deterministic parallel execution: pools, memoisation, and the engine.

``repro.exec`` lets the pipeline shard collection per-forum and
enrichment per-unique-subject across a :class:`WorkerPool`, and memoise
per-(service, subject) lookups in an :class:`EnrichmentCache`, while
guaranteeing the resulting :class:`~repro.core.pipeline.PipelineRun`
is byte-identical to the sequential uncached run — the argument lives
in :mod:`repro.exec.engine`'s docstring and is enforced by
``tests/test_exec_equivalence.py``.
"""

from .cache import CacheEntry, EnrichmentCache, EntryKind
from .engine import SEQUENTIAL, ExecutionEngine, ExecutionPolicy
from .pool import (
    POOL_KINDS,
    ProcessPool,
    SerialPool,
    ThreadPool,
    WorkerPool,
    canonical_merge,
    make_pool,
    shard,
)

__all__ = [
    "CacheEntry",
    "EnrichmentCache",
    "EntryKind",
    "ExecutionEngine",
    "ExecutionPolicy",
    "POOL_KINDS",
    "ProcessPool",
    "SEQUENTIAL",
    "SerialPool",
    "ThreadPool",
    "WorkerPool",
    "canonical_merge",
    "make_pool",
    "shard",
]
