"""Per-(service, subject) memoisation for enrichment lookups.

An :class:`EnrichmentCache` remembers the *pure* outcome of one lookup —
``(service, subject)`` → value — so duplicate senders, URLs, hosts, and
message texts hit each service's compute path once per run. Three entry
kinds cover every terminal outcome a lookup can have:

* ``VALUE``      — a successful answer (a record, a scan report, ...).
* ``NOT_FOUND``  — the service answered "no such record". Negative
  results are answers, not failures; caching them stops duplicate
  subjects from re-asking a question whose answer is known to be empty.
* ``FAILURE``    — a *permanent*, per-subject failure (e.g. the GSB
  transparency report's deterministic anti-automation block). The entry
  stores the failure's gap classification (kind, detail, attempts) and
  the original exception instance, so the engine can re-file an
  identical :class:`~repro.core.enrichment.EnrichmentGap` for every
  duplicate subject without touching the service again — and the run
  journal (:mod:`repro.checkpoint.codec`) can round-trip the failure as
  a structured ``(type, message)`` record. Transient failures are
  **never** cached — a retryable error says nothing about the subject.

The cache is the one concurrency point the execution engine shares
between workers, so it owns its lock (services stay lock-free, per the
engine's design rule). Counters (hits, misses, evictions, stores) are
kept per service and flow into :class:`~repro.obs.Telemetry` via
:meth:`stats`; an optional ``max_entries`` bound evicts oldest-first,
which is always safe — an evicted entry merely re-computes on next use.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import NotFound, ServiceError


class EntryKind(str, enum.Enum):
    """What a cached entry records about its lookup."""

    VALUE = "value"
    NOT_FOUND = "not_found"
    FAILURE = "failure"


@dataclass(frozen=True)
class CacheEntry:
    """One memoised lookup outcome."""

    kind: EntryKind
    value: Any = None
    #: For FAILURE entries: the gap classification to replay.
    failure_kind: str = ""
    failure_detail: str = ""
    failure_attempts: int = 1
    #: For FAILURE entries: the original exception instance, so replays
    #: and the run journal can reconstruct an *equivalent* error (type +
    #: message + flags) instead of only its name. Excluded from equality
    #: — two entries for the same failure compare equal even though
    #: exception objects never do.
    failure_exception: Optional[ServiceError] = field(default=None,
                                                      compare=False)

    @property
    def is_value(self) -> bool:
        return self.kind is EntryKind.VALUE

    @property
    def is_not_found(self) -> bool:
        return self.kind is EntryKind.NOT_FOUND

    @property
    def is_failure(self) -> bool:
        return self.kind is EntryKind.FAILURE


@dataclass
class _ServiceCounters:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Entries adopted from a prior epoch's persisted cache (see
    #: :meth:`EnrichmentCache.seed`) — reuse, not work, so kept apart
    #: from ``stores``.
    seeded: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "seeded": self.seeded}


class EnrichmentCache:
    """Thread-safe per-(service, subject) memo with usage counters."""

    def __init__(self, *, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, str], CacheEntry]" = OrderedDict()
        self._counters: Dict[str, _ServiceCounters] = {}
        self._lock = threading.Lock()

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: the lock is process-local, so it stays behind.

        A cache that crosses a ``multiprocessing`` boundary (worker
        startup under ``spawn``) carries its entries and counters; the
        receiving interpreter gets a fresh, unheld lock.
        """
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- internals ------------------------------------------------------------

    def _counter(self, service: str) -> _ServiceCounters:
        counter = self._counters.get(service)
        if counter is None:
            counter = self._counters[service] = _ServiceCounters()
        return counter

    def _store(self, service: str, subject: str, entry: CacheEntry) -> None:
        key = (service, subject)
        self._entries[key] = entry
        counter = self._counter(service)
        counter.stores += 1
        if self._max_entries is not None:
            while len(self._entries) > self._max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                self._counter(evicted_key[0]).evictions += 1

    # -- the memo API ---------------------------------------------------------

    def get(self, service: str, subject: str) -> Optional[CacheEntry]:
        """The entry for one lookup, counting a hit or a miss."""
        with self._lock:
            entry = self._entries.get((service, subject))
            counter = self._counter(service)
            if entry is None:
                counter.misses += 1
            else:
                counter.hits += 1
            return entry

    def peek(self, service: str, subject: str) -> Optional[CacheEntry]:
        """The entry without touching the hit/miss counters."""
        with self._lock:
            return self._entries.get((service, subject))

    def put_value(self, service: str, subject: str, value: Any) -> CacheEntry:
        entry = CacheEntry(kind=EntryKind.VALUE, value=value)
        with self._lock:
            self._store(service, subject, entry)
        return entry

    def put_not_found(self, service: str, subject: str) -> CacheEntry:
        entry = CacheEntry(kind=EntryKind.NOT_FOUND)
        with self._lock:
            self._store(service, subject, entry)
        return entry

    def put_failure(self, service: str, subject: str, *, kind: str,
                    detail: str, attempts: int = 1,
                    exception: Optional[ServiceError] = None) -> CacheEntry:
        entry = CacheEntry(kind=EntryKind.FAILURE, failure_kind=kind,
                           failure_detail=detail, failure_attempts=attempts,
                           failure_exception=exception)
        with self._lock:
            self._store(service, subject, entry)
        return entry

    def lookup(self, service: str, subject: str,
               compute: Callable[[], Any]) -> CacheEntry:
        """Memoising wrapper: return the entry, computing it on a miss.

        ``compute`` runs *outside* the lock (it may be slow); the first
        completed compute for a subject wins and later duplicates adopt
        it, so concurrent workers racing on the same subject still end
        with one canonical entry. A :class:`~repro.errors.NotFound` from
        ``compute`` becomes a negative entry; a *permanent* (non-
        retryable) :class:`~repro.errors.ServiceError` becomes a failure
        entry and re-raises; transient errors propagate uncached.
        """
        entry = self.get(service, subject)
        if entry is not None:
            return entry
        try:
            value = compute()
        except NotFound:
            return self._adopt(service, subject,
                               CacheEntry(kind=EntryKind.NOT_FOUND))
        except ServiceError as exc:
            if not exc.retryable:
                self._adopt(service, subject, CacheEntry(
                    kind=EntryKind.FAILURE,
                    failure_kind=type(exc).__name__,
                    failure_detail=str(exc),
                    failure_attempts=getattr(exc, "resilience_attempts", 1),
                    failure_exception=exc,
                ))
            raise
        return self._adopt(service, subject,
                           CacheEntry(kind=EntryKind.VALUE, value=value))

    def _adopt(self, service: str, subject: str,
               entry: CacheEntry) -> CacheEntry:
        """Store ``entry`` unless a concurrent compute already won."""
        with self._lock:
            existing = self._entries.get((service, subject))
            if existing is not None:
                return existing
            self._store(service, subject, entry)
            return entry

    # -- cross-run seeding (repro.stream delta enrichment) --------------------

    def export_entries(self) -> Tuple[Tuple[str, str, CacheEntry], ...]:
        """Every persistable entry as ``(service, subject, entry)``.

        Only VALUE and NOT_FOUND entries export: both are durable facts
        about their subject. FAILURE entries never cross a run boundary —
        a failure says what *this* run's faults did, not what the subject
        is, and replaying it would poison a later epoch that could have
        succeeded.
        """
        with self._lock:
            return tuple(
                (service, subject, entry)
                for (service, subject), entry in self._entries.items()
                if entry.kind is not EntryKind.FAILURE
            )

    def seed(self, entries) -> int:
        """Adopt prior-epoch entries without counting them as stores.

        Skips FAILURE entries and subjects already present (the current
        run's own computes win), respects ``max_entries``, and counts
        each adoption on the per-service ``seeded`` counter. Returns how
        many entries were adopted.
        """
        adopted = 0
        with self._lock:
            for service, subject, entry in entries:
                if entry.kind is EntryKind.FAILURE:
                    continue
                key = (service, subject)
                if key in self._entries:
                    continue
                if (self._max_entries is not None
                        and len(self._entries) >= self._max_entries):
                    break
                self._entries[key] = entry
                self._counter(service).seeded += 1
                adopted += 1
        return adopted

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return sum(c.hits for c in self._counters.values())

    @property
    def misses(self) -> int:
        with self._lock:
            return sum(c.misses for c in self._counters.values())

    @property
    def evictions(self) -> int:
        with self._lock:
            return sum(c.evictions for c in self._counters.values())

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        with self._lock:
            hits = sum(c.hits for c in self._counters.values())
            misses = sum(c.misses for c in self._counters.values())
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Per-service and total counters, for telemetry capture."""
        with self._lock:
            per_service = {name: counter.to_dict()
                           for name, counter in sorted(self._counters.items())}
            entries = len(self._entries)
        totals = {"hits": sum(c["hits"] for c in per_service.values()),
                  "misses": sum(c["misses"] for c in per_service.values()),
                  "stores": sum(c["stores"] for c in per_service.values()),
                  "evictions": sum(c["evictions"] for c in per_service.values()),
                  "seeded": sum(c["seeded"] for c in per_service.values())}
        total_lookups = totals["hits"] + totals["misses"]
        return {
            "entries": entries,
            "services": per_service,
            "totals": totals,
            "hit_rate": (totals["hits"] / total_lookups
                         if total_lookups else 0.0),
        }
