"""The deterministic execution engine: policy, pools, and the cache.

:class:`ExecutionPolicy` is the user-facing knob (``--workers N``,
``--no-cache``); :class:`ExecutionEngine` turns it into concrete
resources for one pipeline run — worker pools for the parallel phases
and an :class:`~repro.exec.cache.EnrichmentCache` for memoisation — and
owns their lifecycle (the engine is a context manager; pools it built
are shut down on exit).

The equivalence argument, stated once
=====================================

The headline guarantee is that for any seed, fault plan, and worker
count, the :class:`~repro.core.pipeline.PipelineRun` is byte-identical
to the sequential uncached run. The engine earns that by splitting work
into two phases with very different rules:

* **Parallel phases are pure.** Collection shards per-forum: each forum
  is an independent simulator with its own meter, its own fault-proxy
  call counter, and a clock it only *reads* (forum meters never advance
  the shared :class:`~repro.services.base.SimClock`), so forum order
  cannot leak between shards; results merge in the fixed ``_COLLECTORS``
  order regardless of completion order. Enrichment precompute shards
  per-unique-subject and calls only the *uncharged, unfaulted* compute
  paths of the deterministic simulators — no meter, no clock, no fault
  proxy, no retries — filling the cache with values any schedule would
  produce identically.
* **Effectful phases are serial.** Everything that charges a meter,
  consults a fault rule, advances the clock, retries, or trips a
  breaker runs on the main thread in exactly the order the sequential
  pipeline uses. A cached value changes *what is computed* inside a
  service call, never whether the call happens, so call indices, meter
  charges, backoff, and gap timestamps are untouched.

The one scheduling hazard is an :class:`~repro.faults.InjectedLatency`
rule targeting a *forum*: it advances the shared clock from inside a
collection shard, so worker interleaving would change the clock
trajectory other rules observe. :meth:`ExecutionEngine.collection_pool`
detects that case and degrades collection to the serial pool (the run
stays correct, just unsharded); enrichment precompute is unaffected
because it never touches the clock at all.

Locks live here (well, in the cache the engine builds) — the simulated
services themselves stay lock-free and concurrency-unaware.

The same phase split is what makes checkpoint/resume exact
(:mod:`repro.checkpoint`): the parallel phases are pure, so a resumed
run simply re-executes them (the precompute refills an identical cache
from the restored dataset), while the serial effects replay is the only
place state mutates between barriers — which is why journaling one
record per guarded lookup, with a changed-state delta, reconstructs a
crashed run bit-for-bit under any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ConfigurationError
from ..faults.plan import FaultPlan, InjectedLatency
from .cache import EnrichmentCache
from .pool import POOL_KINDS, SerialPool, WorkerPool, make_pool


@dataclass(frozen=True)
class ExecutionPolicy:
    """How one pipeline run schedules and memoises its work.

    The default — one worker, cache on — is safe everywhere: the cache
    only deduplicates pure compute, so enabling it never changes a run's
    outputs (that is the engine's proven guarantee, not an aspiration).
    """

    #: Maximum concurrent tasks per parallel phase; 1 means fully serial.
    workers: int = 1
    #: Memoise per-(service, subject) enrichment lookups.
    cache: bool = True
    #: Optional cache bound (oldest-first eviction); None = unbounded.
    cache_max_entries: Optional[int] = None
    #: Which pool backs the parallel phases: ``serial`` forces inline
    #: execution regardless of ``workers``; ``thread`` is the classic
    #: shared-memory pool; ``process`` runs the pure enrichment
    #: precompute in ``multiprocessing`` workers (collection stays on
    #: threads — its shards mutate parent-side forum meters).
    pool: str = "thread"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ConfigurationError(
                f"cache_max_entries must be >= 1 or None, "
                f"got {self.cache_max_entries}"
            )
        if self.pool not in POOL_KINDS:
            raise ConfigurationError(
                f"pool must be one of {POOL_KINDS}, got {self.pool!r}"
            )

    def describe(self) -> str:
        """One-line summary for logs, manifests, and `repro resume`."""
        cache = "on" if self.cache else "off"
        if self.cache and self.cache_max_entries is not None:
            cache = f"on(max={self.cache_max_entries})"
        return f"workers={self.workers} cache={cache} pool={self.pool}"


#: The reference semantics every other policy must be equivalent to.
SEQUENTIAL = ExecutionPolicy(workers=1, cache=False)


class ExecutionEngine:
    """Builds and owns the pools + cache for one pipeline run."""

    def __init__(self, policy: Optional[ExecutionPolicy] = None):
        self.policy = policy or ExecutionPolicy()
        self._pools: List[WorkerPool] = []
        #: Task accounting of pools already closed — :meth:`stats` keeps
        #: reporting them after the engine context exits.
        self._retired_stats: List[Dict[str, Any]] = []

    # -- resources ------------------------------------------------------------

    def build_cache(self) -> Optional[EnrichmentCache]:
        """A fresh cache per run, or None when the policy disables it."""
        if not self.policy.cache:
            return None
        return EnrichmentCache(max_entries=self.policy.cache_max_entries)

    def _pool(self, workers: int, label: str,
              kind: Optional[str] = None) -> WorkerPool:
        pool = make_pool(workers, kind if kind is not None else self.policy.pool)
        pool.label = label
        self._pools.append(pool)
        return pool

    def collection_pool(self, fault_plan: Optional[FaultPlan],
                        forum_names: Iterable[str]) -> WorkerPool:
        """The pool for the per-forum collection shards.

        Degrades to serial when the fault plan injects latency into a
        forum — that rule advances the shared clock from inside a shard,
        and a deterministic clock trajectory requires the shards to run
        in canonical order (see the module docstring). Under
        ``pool=process`` collection runs on *threads*: each forum shard
        mutates its parent-side forum meter and fault-proxy counters,
        which must stay in the parent's memory.
        """
        workers = self.policy.workers
        if workers > 1 and fault_plan is not None:
            names = set(forum_names)
            if any(isinstance(rule, InjectedLatency) and rule.service in names
                   for rule in fault_plan.rules):
                workers = 1
        kind = "thread" if self.policy.pool == "process" else self.policy.pool
        return self._pool(workers, "collection", kind)

    def enrichment_pool(self) -> WorkerPool:
        """The pool for the per-unique-subject precompute shards."""
        return self._pool(self.policy.workers, "enrichment")

    # -- observability --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Per-pool task/busy accounting (live and retired pools)."""
        pools = self._retired_stats + [pool.stats()
                                       for pool in self._pools]
        return {
            "policy": self.policy.describe(),
            "pools": pools,
            "tasks": sum(int(p["tasks"]) for p in pools),
            "busy_seconds": sum(float(p["busy_seconds"]) for p in pools),
        }

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        for pool in self._pools:
            self._retired_stats.append(pool.stats())
            pool.close()
        self._pools.clear()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecutionEngine(workers={self.policy.workers}, "
                f"cache={self.policy.cache})")


__all__ = ["ExecutionPolicy", "ExecutionEngine", "SEQUENTIAL"]
