"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main workflows:

* ``report``   — regenerate every paper table/figure.
* ``release``  — write the pseudo-anonymised dataset (Appendix C).
* ``casestudy``— run the §6 active malware investigation.
* ``mine``     — cluster the dataset back into campaigns.
* ``figures``  — export plot-ready CSVs for the figures.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis.campaign_mining import (
    campaign_summary_table,
    mine_campaigns,
)
from .analysis.figures import export_all_figures
from .analysis.malware import build_table19, family_distribution_table
from .analysis.report import generate_paper_report
from .core.active import run_case_study
from .core.anonymize import build_release, save_release
from .core.pipeline import PipelineRun, run_pipeline
from .world.scenario import ScenarioConfig, build_world


def _build_run(args: argparse.Namespace) -> PipelineRun:
    world = build_world(ScenarioConfig(seed=args.seed,
                                       n_campaigns=args.campaigns))
    return run_pipeline(world)


def _cmd_report(args: argparse.Namespace) -> int:
    run = _build_run(args)
    report = generate_paper_report(run)
    print(report.render())
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    run = _build_run(args)
    rows = build_release(run.enriched)
    written = save_release(rows, args.output)
    print(f"wrote {written} pseudo-anonymised rows to {args.output}")
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    run = _build_run(args)
    study = run_case_study(run.world, run.dataset,
                           sample_posts=args.sample)
    print(build_table19(study).to_text())
    print()
    print(family_distribution_table(study).to_text())
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    run = _build_run(args)
    mined = mine_campaigns(run.annotated_dataset,
                           threshold=args.threshold)
    print(campaign_summary_table(mined, top=args.top).to_text())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    run = _build_run(args)
    written = export_all_figures(run.enriched, run.collection.reports,
                                 args.output)
    for name, rows in sorted(written.items()):
        print(f"{name}.csv: {rows} rows")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fishing-for-Smishing reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=7726,
                        help="world seed (default 7726)")
    parser.add_argument("--campaigns", type=int, default=120,
                        help="number of simulated campaigns (default 120)")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate all tables/figures")
    report.set_defaults(func=_cmd_report)

    release = sub.add_parser("release", help="write the anonymised dataset")
    release.add_argument("output", type=Path, nargs="?",
                         default=Path("smishing_release.jsonl"))
    release.set_defaults(func=_cmd_release)

    casestudy = sub.add_parser("casestudy",
                               help="run the §6 malware case study")
    casestudy.add_argument("--sample", type=int, default=200)
    casestudy.set_defaults(func=_cmd_casestudy)

    mine = sub.add_parser("mine", help="cluster records into campaigns")
    mine.add_argument("--threshold", type=float, default=0.7)
    mine.add_argument("--top", type=int, default=10)
    mine.set_defaults(func=_cmd_mine)

    figures = sub.add_parser("figures", help="export figure CSVs")
    figures.add_argument("output", type=Path, nargs="?",
                         default=Path("figures"))
    figures.set_defaults(func=_cmd_figures)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
