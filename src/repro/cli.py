"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main workflows:

* ``report``   — regenerate every paper table/figure.
* ``release``  — write the pseudo-anonymised dataset (Appendix C).
* ``casestudy``— run the §6 active malware investigation.
* ``mine``     — cluster the dataset back into campaigns.
* ``figures``  — export plot-ready CSVs for the figures.
* ``stats``    — run the pipeline and print its telemetry (spans,
  per-service request/retry/backoff counters, run counters).

Every command accepts ``--trace-out PATH`` to dump the run's full trace
and metrics as JSON, and emits stage-level progress lines on stderr
(suppress with ``--quiet``) so long runs are not mute.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis.campaign_mining import (
    campaign_summary_table,
    mine_campaigns,
)
from .analysis.figures import export_all_figures
from .analysis.malware import build_table19, family_distribution_table
from .analysis.report import generate_paper_report
from .core.active import run_case_study
from .core.anonymize import build_release, save_release
from .core.pipeline import PipelineRun, run_pipeline
from .exec import ExecutionPolicy
from .faults import FAULT_PROFILES, build_fault_plan
from .obs import Telemetry, stderr_sink
from .world.scenario import ScenarioConfig, build_world


def _build_run(args: argparse.Namespace) -> PipelineRun:
    world = build_world(ScenarioConfig(seed=args.seed,
                                       n_campaigns=args.campaigns))
    progress = None if args.quiet else stderr_sink
    telemetry = Telemetry.create(clock=world.clock, progress=progress)
    fault_plan = build_fault_plan(args.faults, seed=args.seed)
    execution = ExecutionPolicy(workers=args.workers,
                                cache=not args.no_cache)
    return run_pipeline(world, telemetry=telemetry, fault_plan=fault_plan,
                        execution=execution)


def _write_trace(args: argparse.Namespace, run: PipelineRun) -> int:
    """Dump the run's trace + metrics JSON when ``--trace-out`` was given.

    Returns the command exit code: 0 normally, 1 when the dump path is
    unwritable (the run itself already succeeded, so fail cleanly)."""
    if args.trace_out is None:
        return 0
    try:
        run.telemetry.write_json(args.trace_out)
    except OSError as exc:
        print(f"repro: error: cannot write trace to {args.trace_out}: {exc}",
              file=sys.stderr)
        return 1
    print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    run = _build_run(args)
    report = generate_paper_report(run)
    print(report.render())
    return _write_trace(args, run)


def _cmd_release(args: argparse.Namespace) -> int:
    run = _build_run(args)
    rows = build_release(run.enriched)
    written = save_release(rows, args.output)
    print(f"wrote {written} pseudo-anonymised rows to {args.output}")
    return _write_trace(args, run)


def _cmd_casestudy(args: argparse.Namespace) -> int:
    run = _build_run(args)
    study = run_case_study(run.world, run.dataset,
                           sample_posts=args.sample)
    print(build_table19(study).to_text())
    print()
    print(family_distribution_table(study).to_text())
    return _write_trace(args, run)


def _cmd_mine(args: argparse.Namespace) -> int:
    run = _build_run(args)
    mined = mine_campaigns(run.annotated_dataset,
                           threshold=args.threshold)
    print(campaign_summary_table(mined, top=args.top).to_text())
    return _write_trace(args, run)


def _cmd_figures(args: argparse.Namespace) -> int:
    run = _build_run(args)
    written = export_all_figures(run.enriched, run.collection.reports,
                                 args.output)
    for name, rows in sorted(written.items()):
        print(f"{name}.csv: {rows} rows")
    return _write_trace(args, run)


def _cmd_stats(args: argparse.Namespace) -> int:
    run = _build_run(args)
    dataset = run.dataset
    print(f"seed={args.seed} campaigns={args.campaigns} "
          f"faults={args.faults} "
          f"workers={args.workers} "
          f"cache={'off' if args.no_cache else 'on'} "
          f"reports={len(run.collection.reports)} records={len(dataset)} "
          f"limitations={len(run.collection.limitations)} "
          f"gaps={len(run.enriched.gaps)}")
    print()
    print(run.telemetry.summary())
    gapped = run.enriched.gaps_by_service()
    if gapped:
        print()
        print("Enrichment gaps:")
        for service in sorted(gapped):
            kinds: dict = {}
            for gap in gapped[service]:
                kinds[gap.kind] = kinds.get(gap.kind, 0) + 1
            detail = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
            print(f"  {service}: {len(gapped[service])} ({detail})")
    return _write_trace(args, run)


def _add_run_options(sub: argparse.ArgumentParser) -> None:
    """Run-shaping flags accepted after the subcommand too (``repro stats
    --seed 7``); SUPPRESS keeps root-level values when absent."""
    sub.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                     help="world seed")
    sub.add_argument("--campaigns", type=int, default=argparse.SUPPRESS,
                     help="number of simulated campaigns")
    sub.add_argument("--trace-out", type=Path, default=argparse.SUPPRESS,
                     help="write the run's trace + metrics JSON here")
    sub.add_argument("--quiet", action="store_true",
                     default=argparse.SUPPRESS,
                     help="suppress stage progress lines on stderr")
    sub.add_argument("--faults", choices=FAULT_PROFILES,
                     default=argparse.SUPPRESS,
                     help="chaos profile to inject during the run")
    sub.add_argument("--workers", type=int, default=argparse.SUPPRESS,
                     help="worker count for the parallel execution phases")
    sub.add_argument("--no-cache", action="store_true",
                     default=argparse.SUPPRESS,
                     help="disable the per-(service, subject) "
                          "enrichment cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fishing-for-Smishing reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=7726,
                        help="world seed (default 7726)")
    parser.add_argument("--campaigns", type=int, default=120,
                        help="number of simulated campaigns (default 120)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write the run's trace + metrics JSON here")
    parser.add_argument("--quiet", action="store_true", default=False,
                        help="suppress stage progress lines on stderr")
    parser.add_argument("--faults", choices=FAULT_PROFILES, default="none",
                        help="chaos profile to inject during the run "
                             "(default: none)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count for the parallel execution "
                             "phases (default 1; any count is "
                             "byte-identical to serial)")
    parser.add_argument("--no-cache", action="store_true", default=False,
                        help="disable the per-(service, subject) "
                             "enrichment cache (on by default; caching "
                             "never changes results)")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate all tables/figures")
    report.set_defaults(func=_cmd_report)
    _add_run_options(report)

    release = sub.add_parser("release", help="write the anonymised dataset")
    release.add_argument("output", type=Path, nargs="?",
                         default=Path("smishing_release.jsonl"))
    release.set_defaults(func=_cmd_release)
    _add_run_options(release)

    casestudy = sub.add_parser("casestudy",
                               help="run the §6 malware case study")
    casestudy.add_argument("--sample", type=int, default=200)
    casestudy.set_defaults(func=_cmd_casestudy)
    _add_run_options(casestudy)

    mine = sub.add_parser("mine", help="cluster records into campaigns")
    mine.add_argument("--threshold", type=float, default=0.7)
    mine.add_argument("--top", type=int, default=10)
    mine.set_defaults(func=_cmd_mine)
    _add_run_options(mine)

    figures = sub.add_parser("figures", help="export figure CSVs")
    figures.add_argument("output", type=Path, nargs="?",
                         default=Path("figures"))
    figures.set_defaults(func=_cmd_figures)
    _add_run_options(figures)

    stats = sub.add_parser(
        "stats", help="run the pipeline and print its telemetry"
    )
    stats.set_defaults(func=_cmd_stats)
    _add_run_options(stats)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
