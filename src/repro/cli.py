"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main workflows:

* ``report``   — regenerate every paper table/figure.
* ``release``  — write the pseudo-anonymised dataset (Appendix C).
* ``casestudy``— run the §6 active malware investigation.
* ``mine``     — cluster the dataset back into campaigns.
* ``figures``  — export plot-ready CSVs for the figures.
* ``stats``    — run the pipeline and print its telemetry (spans,
  per-service request/retry/backoff counters, run counters). With
  ``--epochs``/``--epoch-hours`` the run is an in-memory incremental
  ingestion and the summary gains the per-epoch Stream table.
* ``watch``    — continuous incremental ingestion: run N epochs over a
  durable stream directory (``repro.stream``), printing the per-epoch
  table and a final stream fingerprint.
* ``ingest``   — run one (or more) follow-on epochs against an existing
  stream directory.
* ``serve``    — drive the overload-safe report-intake service
  (``repro.serve``) under a deterministic simulated load: bounded
  queue, per-reporter rate limits, load shedding, degraded modes, and
  (with ``--serve-dir``) a durable exactly-once session resumable via
  ``repro serve --resume``.
* ``investigate`` — run a declarative playbook over every URL-bearing
  record as an investigation fleet (``repro.investigate``): funnel
  navigation through the simulated web hosts, per-campaign evidence
  packages, and (with ``--invest-dir``) a durable charged phase
  resumable via ``repro investigate --resume``.
* ``resume``   — finish a crashed run: ``--checkpoint-dir`` for a batch
  journal, ``--stream-dir`` for a stream session.

Every command accepts ``--trace-out PATH`` to dump the run's full trace
and metrics as JSON (``--trace-format chrome`` writes Chrome
trace-event JSON instead, openable in Perfetto), and emits stage-level
progress lines on stderr (suppress with ``--quiet``) so long runs are
not mute. Pass ``--checkpoint-dir DIR`` to journal the run for crash
recovery (and ``--crash-at SERVICE:INDEX`` to inject a hard crash for
testing it).

The performance observatory rides on two more flags: ``--profile``
adds function-level profiling (cProfile + tracemalloc, observation
only — profiled runs are byte-identical to unprofiled ones) and
``--history-dir DIR`` appends a summarized record of every run to
``DIR/RUNS.jsonl``; ``repro stats --history --history-dir DIR`` then
renders the run-over-run trend tables, and ``scripts/perf_gate.py``
gates CI on them.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .analysis.campaign_mining import (
    campaign_summary_table,
    mine_campaigns,
)
from .analysis.figures import export_all_figures
from .analysis.malware import build_table19, family_distribution_table
from .analysis.report import generate_paper_report
from .checkpoint import (
    MANIFEST_NAME,
    CheckpointSession,
    RunJournal,
    policy_from_manifest,
    resume_pipeline,
)
from .core.active import run_case_study
from .core.anonymize import build_release, save_release
from .core.pipeline import PipelineRun, run_pipeline
from .errors import CheckpointError, ConfigurationError, SimulatedCrash
from .exec import POOL_KINDS, ExecutionPolicy
from .faults import FAULT_PROFILES, CrashPoint, build_fault_plan
from .investigate import (
    INVESTIGATE_MANIFEST_NAME,
    PLAYBOOKS,
    fleet_fingerprint,
    run_investigation,
    write_packages,
)
from .obs import (
    FunctionProfiler,
    RunHistory,
    Telemetry,
    build_run_record,
    render_history,
    stderr_sink,
)
from .serve import (
    LOAD_PROFILES,
    SERVE_MANIFEST_NAME,
    IntakeService,
    LoadSpec,
    ServeConfig,
    serve_fingerprint,
)
from .stream import STREAM_MANIFEST_NAME, StreamSession
from .world.adversarial import HOSTILE_PROFILES
from .world.scenario import ScenarioConfig, build_world


def _parse_crash_at(spec: str) -> Tuple[str, int]:
    service, sep, index = spec.partition(":")
    if not sep or not service or not index:
        raise ConfigurationError(
            f"--crash-at wants SERVICE:CALL_INDEX (e.g. whois:5), "
            f"got {spec!r}"
        )
    try:
        at_call = int(index)
    except ValueError:
        raise ConfigurationError(
            f"--crash-at call index must be an integer, got {index!r}"
        )
    if at_call < 0:
        raise ConfigurationError(
            f"--crash-at call index must be >= 0, got {at_call}"
        )
    return service, at_call


def _manifest_argv(args: argparse.Namespace) -> List[str]:
    """The argv `repro resume` replays to rebuild this exact command."""
    argv = ["--seed", str(args.seed), "--campaigns", str(args.campaigns),
            "--faults", args.faults, "--workers", str(args.workers),
            "--pool", args.pool]
    if args.hostile != "none":
        argv += ["--hostile", args.hostile]
    if args.no_cache:
        argv.append("--no-cache")
    if getattr(args, "columnar", False):
        argv.append("--columnar")
    if args.quiet:
        argv.append("--quiet")
    if getattr(args, "profile", False):
        argv.append("--profile")
    if getattr(args, "history_dir", None) is not None:
        argv += ["--history-dir", str(args.history_dir)]
    argv.append(args.command)
    if args.command in ("release", "figures"):
        argv.append(str(args.output))
    elif args.command == "casestudy":
        argv += ["--sample", str(args.sample)]
    elif args.command == "mine":
        argv += ["--threshold", str(args.threshold), "--top", str(args.top)]
    return argv


def _build_run(args: argparse.Namespace) -> PipelineRun:
    progress = None if args.quiet else stderr_sink
    resume_dir = getattr(args, "_resume_dir", None)

    def _execute() -> PipelineRun:
        if resume_dir is not None:
            return resume_pipeline(
                resume_dir,
                telemetry_factory=lambda world: Telemetry.create(
                    clock=world.clock, progress=progress),
            )
        world = build_world(ScenarioConfig(seed=args.seed,
                                           n_campaigns=args.campaigns,
                                           hostile=args.hostile))
        telemetry = Telemetry.create(clock=world.clock, progress=progress)
        fault_plan = build_fault_plan(args.faults, seed=args.seed)
        if args.crash_at is not None:
            service, at_call = _parse_crash_at(args.crash_at)
            fault_plan = fault_plan.extended(CrashPoint(service, at_call))
        execution = ExecutionPolicy(workers=args.workers,
                                    cache=not args.no_cache,
                                    pool=args.pool)
        checkpoint = None
        if args.checkpoint_dir is not None:
            checkpoint = CheckpointSession.record(
                args.checkpoint_dir, cli={"argv": _manifest_argv(args)})
        return run_pipeline(world, telemetry=telemetry,
                            fault_plan=fault_plan,
                            execution=execution, checkpoint=checkpoint)

    if not getattr(args, "profile", False):
        return _execute()
    profiler = FunctionProfiler()
    with profiler:
        run = _execute()
    run.telemetry.capture_function_profile(profiler.snapshot())
    return run


def _profiled_session_run(args: argparse.Namespace,
                          session: StreamSession,
                          action) -> None:
    """Run one stream action, function-profiled when ``--profile``."""
    if not getattr(args, "profile", False):
        action()
        return
    profiler = FunctionProfiler()
    with profiler:
        action()
    session.telemetry.capture_function_profile(profiler.snapshot())


def _run_config(args: argparse.Namespace) -> dict:
    """The run-shaping knobs whose digest decides comparability."""
    config = {
        "seed": args.seed,
        "campaigns": args.campaigns,
        "faults": args.faults,
        "workers": args.workers,
        "cache": not args.no_cache,
        "pool": args.pool,
    }
    if args.hostile != "none":
        config["hostile"] = args.hostile
    if getattr(args, "columnar", False):
        config["columnar"] = True
    epochs = getattr(args, "epochs", None)
    if epochs is not None:
        config["epochs"] = epochs
    epoch_hours = getattr(args, "epoch_hours", None)
    if epoch_hours is not None:
        config["epoch_hours"] = epoch_hours
    if getattr(args, "playbook", None) is not None:
        config["playbook"] = args.playbook
        if getattr(args, "sample", None) is not None:
            config["sample"] = args.sample
    if getattr(args, "load_profile", None) is not None:
        config["load_profile"] = args.load_profile
        config["requests"] = args.requests
        config["reporters"] = args.reporters
        config["queue_capacity"] = args.queue_capacity
        config["batch_size"] = args.batch_size
        config["drain_interval"] = args.drain_interval
    return config


def _append_history(args: argparse.Namespace, *, telemetry,
                    counts: dict) -> None:
    """Record the finished run in ``--history-dir``/RUNS.jsonl."""
    history_dir = getattr(args, "history_dir", None)
    if history_dir is None:
        return
    record = build_run_record(command=args.command,
                              config=_run_config(args),
                              telemetry=telemetry, counts=counts)
    stored = RunHistory(history_dir).append(record)
    if not getattr(args, "quiet", False):
        print(f"history: recorded run {stored['sequence']} in "
              f"{Path(history_dir) / 'RUNS.jsonl'}", file=sys.stderr)


def _dump_trace(args: argparse.Namespace, telemetry) -> int:
    """Write the trace when ``--trace-out`` was given (JSON or Chrome).

    Returns the command exit code: 0 normally, 1 when the dump path is
    unwritable (the run itself already succeeded, so fail cleanly)."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out is None:
        return 0
    trace_format = getattr(args, "trace_format", "json")
    try:
        if trace_format == "chrome":
            telemetry.write_chrome_trace(trace_out)
        else:
            telemetry.write_json(trace_out)
    except OSError as exc:
        print(f"repro: error: cannot write trace to {trace_out}: {exc}",
              file=sys.stderr)
        return 1
    print(f"wrote {trace_format} trace to {trace_out}", file=sys.stderr)
    return 0


def _run_counts(run: PipelineRun) -> dict:
    counts = {
        "posts_seen": run.collection.posts_seen,
        "reports": len(run.collection.reports),
        "records": len(run.dataset),
        "gaps": len(run.enriched.gaps),
        "limitations": len(run.collection.limitations),
    }
    if run.curation_stats.quarantined:
        counts["quarantined"] = run.curation_stats.quarantined
    return counts


def _write_trace(args: argparse.Namespace, run: PipelineRun) -> int:
    """Finish a batch command: history record, then the trace dump."""
    _append_history(args, telemetry=run.telemetry, counts=_run_counts(run))
    return _dump_trace(args, run.telemetry)


def _cmd_report(args: argparse.Namespace) -> int:
    run = _build_run(args)
    report = generate_paper_report(run, columnar=args.columnar)
    print(report.render())
    return _write_trace(args, run)


def _cmd_release(args: argparse.Namespace) -> int:
    run = _build_run(args)
    rows = build_release(run.enriched)
    written = save_release(rows, args.output)
    print(f"wrote {written} pseudo-anonymised rows to {args.output}")
    return _write_trace(args, run)


def _cmd_casestudy(args: argparse.Namespace) -> int:
    run = _build_run(args)
    study = run_case_study(run.world, run.dataset,
                           sample_posts=args.sample)
    print(build_table19(study).to_text())
    print()
    print(family_distribution_table(study).to_text())
    return _write_trace(args, run)


def _cmd_mine(args: argparse.Namespace) -> int:
    run = _build_run(args)
    mined = mine_campaigns(run.annotated_dataset,
                           threshold=args.threshold)
    print(campaign_summary_table(mined, top=args.top).to_text())
    return _write_trace(args, run)


def _cmd_figures(args: argparse.Namespace) -> int:
    run = _build_run(args)
    written = export_all_figures(run.enriched, run.collection.reports,
                                 args.output)
    for name, rows in sorted(written.items()):
        print(f"{name}.csv: {rows} rows")
    return _write_trace(args, run)


def _cmd_stats(args: argparse.Namespace) -> int:
    if getattr(args, "history", False):
        records = RunHistory(args.history_dir).load()
        if not records:
            print(f"no run history in "
                  f"{Path(args.history_dir) / 'RUNS.jsonl'}")
            return 0
        print(render_history(records))
        return 0
    if (getattr(args, "epochs", None) is not None
            or getattr(args, "epoch_hours", None) is not None):
        session = _build_stream_session(args, stream_dir=None)
        _profiled_session_run(args, session, session.run)
        run = session.as_pipeline_run()
        epochs = f" epochs={session.state.committed_epochs}"
    else:
        run = _build_run(args)
        epochs = ""
    dataset = run.dataset
    hostile = (f" hostile={args.hostile}" if args.hostile != "none" else "")
    quarantined = (f" quarantined={run.curation_stats.quarantined}"
                   if run.curation_stats.quarantined else "")
    print(f"seed={args.seed} campaigns={args.campaigns} "
          f"faults={args.faults} "
          f"workers={args.workers} "
          f"pool={args.pool} "
          f"cache={'off' if args.no_cache else 'on'}"
          f"{hostile}{epochs} "
          f"reports={len(run.collection.reports)} records={len(dataset)} "
          f"limitations={len(run.collection.limitations)} "
          f"gaps={len(run.enriched.gaps)}{quarantined}")
    print()
    print(run.telemetry.summary())
    gapped = run.enriched.gaps_by_service()
    if gapped:
        print()
        print("Enrichment gaps:")
        for service in sorted(gapped):
            kinds: dict = {}
            for gap in gapped[service]:
                kinds[gap.kind] = kinds.get(gap.kind, 0) + 1
            detail = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
            print(f"  {service}: {len(gapped[service])} ({detail})")
    return _write_trace(args, run)


def _stream_argv(args: argparse.Namespace) -> List[str]:
    """Provenance argv recorded in STREAM.json (resume rebuilds the
    session from the manifest itself, not from this)."""
    argv = ["--seed", str(args.seed), "--campaigns", str(args.campaigns),
            "--faults", args.faults, "--workers", str(args.workers),
            "--pool", args.pool]
    if args.hostile != "none":
        argv += ["--hostile", args.hostile]
    if args.no_cache:
        argv.append("--no-cache")
    argv.append(args.command)
    if getattr(args, "epochs", None) is not None:
        argv += ["--epochs", str(args.epochs)]
    if getattr(args, "epoch_hours", None) is not None:
        argv += ["--epoch-hours", str(args.epoch_hours)]
    if getattr(args, "stream_dir", None) is not None:
        argv += ["--stream-dir", str(args.stream_dir)]
    if getattr(args, "profile", False):
        argv.append("--profile")
    if getattr(args, "history_dir", None) is not None:
        argv += ["--history-dir", str(args.history_dir)]
    return argv


def _telemetry_factory(args: argparse.Namespace):
    progress = None if args.quiet else stderr_sink
    return lambda world: Telemetry.create(clock=world.clock,
                                          progress=progress)


def _build_stream_session(args: argparse.Namespace,
                          stream_dir: Optional[Path]) -> StreamSession:
    crash = (_parse_crash_at(args.crash_at)
             if getattr(args, "crash_at", None) is not None else None)
    epochs = getattr(args, "epochs", None)
    epoch_hours = getattr(args, "epoch_hours", None)
    if epochs is None and epoch_hours is None:
        epochs = 4
    return StreamSession.create(
        ScenarioConfig(seed=args.seed, n_campaigns=args.campaigns,
                       hostile=args.hostile),
        epochs=epochs,
        epoch_hours=epoch_hours,
        fault_plan=build_fault_plan(args.faults, seed=args.seed),
        execution=ExecutionPolicy(workers=args.workers,
                                  cache=not args.no_cache,
                                  pool=args.pool),
        telemetry_factory=_telemetry_factory(args),
        stream_dir=stream_dir,
        crash_at=crash,
        crash_epoch=getattr(args, "crash_epoch", None),
        cli={"argv": _stream_argv(args)},
    )


def _print_stream(args: argparse.Namespace,
                  session: StreamSession) -> int:
    state = session.state
    scenario = session.world.config
    quarantined = (f" quarantined={state.curation_stats.quarantined}"
                   if state.curation_stats.quarantined else "")
    print(f"seed={scenario.seed} campaigns={scenario.n_campaigns} "
          f"faults={session.fault_profile} "
          f"workers={session.policy.workers} "
          f"pool={session.policy.pool} "
          f"cache={'on' if session.policy.cache else 'off'} "
          f"epochs={state.committed_epochs}/{session.scheduler.target} "
          f"reports={len(state.collection.reports)} "
          f"records={len(state.dataset)} "
          f"limitations={len(state.collection.limitations)} "
          f"gaps={len(state.gaps)}{quarantined}")
    print()
    print(session.telemetry.summary())
    print()
    print(f"stream fingerprint={state.fingerprint()}")
    counts = {
        "posts_seen": getattr(state.collection, "posts_seen", 0),
        "reports": len(state.collection.reports),
        "records": len(state.dataset),
        "gaps": len(state.gaps),
        "limitations": len(state.collection.limitations),
    }
    if state.curation_stats.quarantined:
        counts["quarantined"] = state.curation_stats.quarantined
    _append_history(args, telemetry=session.telemetry, counts=counts)
    return _dump_trace(args, session.telemetry)


def _cmd_watch(args: argparse.Namespace) -> int:
    session = _build_stream_session(args, stream_dir=args.stream_dir)
    _profiled_session_run(args, session, session.run)
    return _print_stream(args, session)


def _cmd_ingest(args: argparse.Namespace) -> int:
    session = StreamSession.load(
        args.stream_dir, telemetry_factory=_telemetry_factory(args))
    _profiled_session_run(args, session,
                          lambda: session.ingest(args.epochs))
    return _print_stream(args, session)


def _cmd_stream_resume(args: argparse.Namespace) -> int:
    session = StreamSession.load(
        args.stream_dir, telemetry_factory=_telemetry_factory(args))
    if not args.quiet:
        pending = session.scheduler.target - session.state.committed_epochs
        print(f"resuming stream from {args.stream_dir} "
              f"({pending} epoch(s) pending, "
              f"{session.policy.describe()})", file=sys.stderr)
    _profiled_session_run(args, session, session.run)
    return _print_stream(args, session)


def _serve_argv(args: argparse.Namespace) -> List[str]:
    """Provenance argv recorded in SERVE.json (resume rebuilds the
    service from the manifest itself, not from this)."""
    argv = ["--seed", str(args.seed), "--campaigns", str(args.campaigns),
            "--faults", args.faults, "--workers", str(args.workers),
            "--pool", args.pool]
    if args.hostile != "none":
        argv += ["--hostile", args.hostile]
    if args.no_cache:
        argv.append("--no-cache")
    argv += ["serve", "--load-profile", args.load_profile,
             "--requests", str(args.requests),
             "--reporters", str(args.reporters),
             "--queue-capacity", str(args.queue_capacity),
             "--batch-size", str(args.batch_size),
             "--drain-interval", str(args.drain_interval),
             "--commit-every", str(args.commit_every)]
    if getattr(args, "serve_dir", None) is not None:
        argv += ["--serve-dir", str(args.serve_dir)]
    return argv


def _build_serve(args: argparse.Namespace) -> IntakeService:
    if getattr(args, "resume", False):
        return IntakeService.load(
            args.serve_dir,
            telemetry_factory=_telemetry_factory(args),
            kill_at=getattr(args, "kill_at", None),
        )
    return IntakeService.create(
        ScenarioConfig(seed=args.seed, n_campaigns=args.campaigns,
                       hostile=args.hostile),
        load=LoadSpec(profile=args.load_profile, requests=args.requests,
                      reporters=args.reporters, seed=args.seed),
        config=ServeConfig(queue_capacity=args.queue_capacity,
                           batch_size=args.batch_size,
                           drain_interval=args.drain_interval,
                           commit_every=args.commit_every),
        fault_plan=build_fault_plan(args.faults, seed=args.seed),
        execution=ExecutionPolicy(workers=args.workers,
                                  cache=not args.no_cache,
                                  pool=args.pool),
        telemetry_factory=_telemetry_factory(args),
        serve_dir=getattr(args, "serve_dir", None),
        kill_at=getattr(args, "kill_at", None),
        cli={"argv": _serve_argv(args)},
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    service = _build_serve(args)
    service.run()
    stats = service.stats()
    load = stats["load"]
    queue = stats["queue"]
    latency = stats["latency"]
    quarantined = (f" quarantined={stats['quarantined']}"
                   if stats.get("quarantined") else "")
    print(f"seed={service.world.config.seed} "
          f"campaigns={service.world.config.n_campaigns} "
          f"faults={service.fault_profile} "
          f"workers={service.policy.workers} "
          f"pool={service.policy.pool} "
          f"profile={load['profile']} "
          f"submitted={stats['submitted']} accepted={stats['accepted']} "
          f"shed={stats['shed']} processed={stats['processed']} "
          f"timed_out={stats['timed_out']} records={stats['records']}"
          f"{quarantined} "
          f"mode={stats['mode']}")
    print()
    print(service.telemetry.summary())
    print()
    print(f"queue depth max={queue['max_depth']}/{queue['capacity']} "
          f"p50={queue.get('p50')} p99={queue.get('p99')}")
    p50 = latency.get("p50")
    p99 = latency.get("p99")
    print(f"intake latency sim-seconds "
          f"p50={p50 if p50 is None else round(p50, 3)} "
          f"p99={p99 if p99 is None else round(p99, 3)}")
    digest = hashlib.sha256(
        serve_fingerprint(service).encode("utf-8")).hexdigest()
    print(f"serve fingerprint={digest}")
    counts = {
        "submitted": stats["submitted"],
        "accepted": stats["accepted"],
        "shed": stats["shed"],
        "processed": stats["processed"],
        "timed_out": stats["timed_out"],
        "records": stats["records"],
        "gaps": stats["gaps"],
    }
    if stats.get("quarantined"):
        counts["quarantined"] = stats["quarantined"]
    _append_history(args, telemetry=service.telemetry, counts=counts)
    return _dump_trace(args, service.telemetry)


def _cmd_investigate(args: argparse.Namespace) -> int:
    progress = None if args.quiet else stderr_sink
    telemetry = Telemetry.create(progress=progress)
    outcome = run_investigation(
        ScenarioConfig(seed=args.seed, n_campaigns=args.campaigns,
                       hostile=args.hostile),
        playbook=args.playbook,
        sample=args.sample,
        workers=args.workers,
        pool_kind=args.pool,
        fault_profile=args.faults,
        fault_seed=args.seed,
        invest_dir=getattr(args, "invest_dir", None),
        resume=getattr(args, "resume", False),
        kill_at=getattr(args, "kill_at", None),
        commit_every=args.commit_every,
        telemetry=telemetry,
    )
    report = outcome.report
    world = outcome.world
    fault_profile = (outcome.session.fault_profile
                     if outcome.session is not None else args.faults)
    print(f"seed={world.config.seed} campaigns={world.config.n_campaigns} "
          f"faults={fault_profile} "
          f"workers={args.workers} "
          f"pool={args.pool} "
          f"playbook={report.playbook} "
          f"investigated={report.investigated} "
          f"packages={len(report.packages)} "
          f"payloads={len(report.payloads)} "
          f"scans={len(report.verdicts)} scan_gaps={report.scan_gaps}")
    print()
    print(telemetry.summary())
    evidence_dir = getattr(args, "evidence_dir", None)
    if evidence_dir is not None:
        manifest_path = write_packages(evidence_dir, report.packages)
        print()
        print(f"wrote {len(report.packages)} evidence package(s) to "
              f"{evidence_dir} (manifest: {manifest_path})")
    digest = hashlib.sha256(
        fleet_fingerprint(report, world).encode("utf-8")).hexdigest()
    print()
    print(f"investigate fingerprint={digest}")
    counts = {
        "investigated": report.investigated,
        "evidence_packages": len(report.packages),
        "payloads": len(report.payloads),
        "scans": len(report.verdicts),
        "scan_gaps": report.scan_gaps,
        "androzoo_hits": report.androzoo_hits,
    }
    _append_history(args, telemetry=telemetry, counts=counts)
    return _dump_trace(args, telemetry)


def _add_run_options(sub: argparse.ArgumentParser) -> None:
    """Run-shaping flags accepted after the subcommand too (``repro stats
    --seed 7``); SUPPRESS keeps root-level values when absent."""
    sub.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                     help="world seed")
    sub.add_argument("--campaigns", type=int, default=argparse.SUPPRESS,
                     help="number of simulated campaigns")
    sub.add_argument("--trace-out", type=Path, default=argparse.SUPPRESS,
                     help="write the run's trace + metrics JSON here")
    sub.add_argument("--quiet", action="store_true",
                     default=argparse.SUPPRESS,
                     help="suppress stage progress lines on stderr")
    sub.add_argument("--faults", choices=FAULT_PROFILES,
                     default=argparse.SUPPRESS,
                     help="chaos profile to inject during the run")
    sub.add_argument("--hostile", choices=HOSTILE_PROFILES,
                     default=argparse.SUPPRESS,
                     help="adversarial reporter profile for the world")
    sub.add_argument("--workers", type=int, default=argparse.SUPPRESS,
                     help="worker count for the parallel execution phases")
    sub.add_argument("--pool", choices=POOL_KINDS,
                     default=argparse.SUPPRESS,
                     help="pool backend for the parallel phases (process "
                          "= true multi-core for the pure precompute)")
    sub.add_argument("--columnar", action="store_true",
                     default=argparse.SUPPRESS,
                     help="drive the strategy tables off the columnar "
                          "dataset layout (byte-identical output)")
    sub.add_argument("--no-cache", action="store_true",
                     default=argparse.SUPPRESS,
                     help="disable the per-(service, subject) "
                          "enrichment cache")
    sub.add_argument("--checkpoint-dir", type=Path,
                     default=argparse.SUPPRESS,
                     help="journal the run here for crash recovery")
    sub.add_argument("--crash-at", metavar="SERVICE:CALL_INDEX",
                     default=argparse.SUPPRESS,
                     help="inject a hard crash at the Nth call to a "
                          "service (testing aid for checkpointing)")
    sub.add_argument("--trace-format", choices=("json", "chrome"),
                     default=argparse.SUPPRESS,
                     help="format for --trace-out (chrome = Chrome "
                          "trace-event JSON, openable in Perfetto)")
    sub.add_argument("--profile", action="store_true",
                     default=argparse.SUPPRESS,
                     help="add function-level profiling (cProfile + "
                          "tracemalloc); observation only, results are "
                          "byte-identical")
    sub.add_argument("--history-dir", type=Path,
                     default=argparse.SUPPRESS,
                     help="append a summarized run record to "
                          "DIR/RUNS.jsonl for trend tracking")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fishing-for-Smishing reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=7726,
                        help="world seed (default 7726)")
    parser.add_argument("--campaigns", type=int, default=120,
                        help="number of simulated campaigns (default 120)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write the run's trace + metrics JSON here")
    parser.add_argument("--quiet", action="store_true", default=False,
                        help="suppress stage progress lines on stderr")
    parser.add_argument("--faults", choices=FAULT_PROFILES, default="none",
                        help="chaos profile to inject during the run "
                             "(default: none)")
    parser.add_argument("--hostile", choices=HOSTILE_PROFILES,
                        default="none",
                        help="adversarial reporter profile: mutate a "
                             "seeded fraction of reports into hostile "
                             "shapes (noisy) plus coordinated floods and "
                             "poison clusters (poison); clean results "
                             "are provably unaffected (default: none)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count for the parallel execution "
                             "phases (default 1; any count is "
                             "byte-identical to serial)")
    parser.add_argument("--pool", choices=POOL_KINDS, default="thread",
                        help="pool backend for the parallel execution "
                             "phases (default thread; process runs the "
                             "pure precompute in multiprocessing workers "
                             "— any choice is byte-identical)")
    parser.add_argument("--columnar", action="store_true", default=False,
                        help="drive the strategy tables off the columnar "
                             "dataset layout (one batched normalisation "
                             "pass; output is byte-identical)")
    parser.add_argument("--no-cache", action="store_true", default=False,
                        help="disable the per-(service, subject) "
                             "enrichment cache (on by default; caching "
                             "never changes results)")
    parser.add_argument("--checkpoint-dir", type=Path, default=None,
                        help="journal the run here for crash recovery "
                             "(resume with `repro resume`)")
    parser.add_argument("--crash-at", metavar="SERVICE:CALL_INDEX",
                        default=None,
                        help="inject a hard crash at the Nth call to a "
                             "service (testing aid for checkpointing)")
    parser.add_argument("--trace-format", choices=("json", "chrome"),
                        default="json",
                        help="format for --trace-out (default json; "
                             "chrome = Chrome trace-event JSON, openable "
                             "in Perfetto / chrome://tracing)")
    parser.add_argument("--profile", action="store_true", default=False,
                        help="add function-level profiling (cProfile + "
                             "tracemalloc) to the telemetry; observation "
                             "only — profiled runs are byte-identical")
    parser.add_argument("--history-dir", type=Path, default=None,
                        help="append a summarized record of the run to "
                             "DIR/RUNS.jsonl (view trends with "
                             "`repro stats --history`)")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate all tables/figures")
    report.set_defaults(func=_cmd_report)
    _add_run_options(report)

    release = sub.add_parser("release", help="write the anonymised dataset")
    release.add_argument("output", type=Path, nargs="?",
                         default=Path("smishing_release.jsonl"))
    release.set_defaults(func=_cmd_release)
    _add_run_options(release)

    casestudy = sub.add_parser("casestudy",
                               help="run the §6 malware case study")
    casestudy.add_argument("--sample", type=int, default=200)
    casestudy.set_defaults(func=_cmd_casestudy)
    _add_run_options(casestudy)

    mine = sub.add_parser("mine", help="cluster records into campaigns")
    mine.add_argument("--threshold", type=float, default=0.7)
    mine.add_argument("--top", type=int, default=10)
    mine.set_defaults(func=_cmd_mine)
    _add_run_options(mine)

    figures = sub.add_parser("figures", help="export figure CSVs")
    figures.add_argument("output", type=Path, nargs="?",
                         default=Path("figures"))
    figures.set_defaults(func=_cmd_figures)
    _add_run_options(figures)

    stats = sub.add_parser(
        "stats", help="run the pipeline and print its telemetry"
    )
    stats.add_argument("--epochs", type=int, default=None,
                       help="run an in-memory incremental ingestion over "
                            "this many epochs instead of one batch run")
    stats.add_argument("--epoch-hours", type=float, default=None,
                       help="epoch window width in hours (with --epochs)")
    stats.add_argument("--history", action="store_true", default=False,
                       help="render the run-history trend tables from "
                            "--history-dir instead of running the pipeline")
    stats.set_defaults(func=_cmd_stats)
    _add_run_options(stats)

    watch = sub.add_parser(
        "watch", help="continuous incremental ingestion over epochs"
    )
    watch.add_argument("--epochs", type=int, default=None,
                       help="how many epochs to run (default 4, or the "
                            "full plan when --epoch-hours is given)")
    watch.add_argument("--epoch-hours", type=float, default=None,
                       help="epoch window width in hours (default: divide "
                            "the global window into --epochs equal slices)")
    watch.add_argument("--stream-dir", type=Path, default=None,
                       help="persist watermarks, dedup ledger, and merged "
                            "state here (resumable with `repro resume "
                            "--stream-dir`)")
    watch.add_argument("--crash-epoch", type=int, default=None,
                       help="which epoch --crash-at applies to (default 0)")
    watch.set_defaults(func=_cmd_watch)
    _add_run_options(watch)

    ingest = sub.add_parser(
        "ingest", help="run follow-on epochs against a stream directory"
    )
    ingest.add_argument("--stream-dir", type=Path, required=True,
                        help="an existing stream directory (`repro watch "
                             "--stream-dir`)")
    ingest.add_argument("--epochs", type=int, default=1,
                        help="how many additional epochs to ingest "
                             "(default 1)")
    ingest.add_argument("--trace-out", type=Path, default=argparse.SUPPRESS,
                        help="write the run's trace + metrics JSON here")
    ingest.add_argument("--trace-format", choices=("json", "chrome"),
                        default=argparse.SUPPRESS,
                        help="format for --trace-out")
    ingest.add_argument("--quiet", action="store_true",
                        default=argparse.SUPPRESS,
                        help="suppress stage progress lines on stderr")
    ingest.add_argument("--profile", action="store_true",
                        default=argparse.SUPPRESS,
                        help="add function-level profiling to the epochs")
    ingest.add_argument("--history-dir", type=Path,
                        default=argparse.SUPPRESS,
                        help="append a summarized run record to "
                             "DIR/RUNS.jsonl")
    ingest.set_defaults(func=_cmd_ingest)

    serve = sub.add_parser(
        "serve",
        help="drive the overload-safe intake service under simulated load",
    )
    serve.add_argument("--load-profile", choices=LOAD_PROFILES,
                       default="burst",
                       help="arrival pattern for the simulated reporters "
                            "(default burst)")
    serve.add_argument("--requests", type=int, default=2000,
                       help="how many report submissions to simulate "
                            "(default 2000)")
    serve.add_argument("--reporters", type=int, default=500,
                       help="distinct reporter population, Pareto-skewed "
                            "(default 500)")
    serve.add_argument("--queue-capacity", type=int, default=512,
                       help="bounded ingest queue capacity (default 512)")
    serve.add_argument("--batch-size", type=int, default=32,
                       help="reports drained per processing batch "
                            "(default 32)")
    serve.add_argument("--drain-interval", type=float, default=20.0,
                       help="sim-seconds between batch drains (default 20)")
    serve.add_argument("--commit-every", type=int, default=500,
                       help="arrivals between durable commits with "
                            "--serve-dir (default 500)")
    serve.add_argument("--serve-dir", type=Path, default=None,
                       help="persist the session here (resumable with "
                            "`repro serve --resume --serve-dir DIR`)")
    serve.add_argument("--resume", action="store_true", default=False,
                       help="reopen an existing --serve-dir and finish its "
                            "schedule from the last commit")
    serve.add_argument("--kill-at", type=int, default=None,
                       help="inject a hard crash before this arrival index "
                            "(testing aid for the resume protocol)")
    serve.set_defaults(func=_cmd_serve)
    _add_run_options(serve)

    investigate = sub.add_parser(
        "investigate",
        help="run a playbook-driven investigation fleet over the dataset",
    )
    investigate.add_argument("--playbook", choices=sorted(PLAYBOOKS),
                             default="full-funnel",
                             help="which playbook the fleet interprets "
                                  "(default full-funnel; case-study is "
                                  "the §6 protocol)")
    investigate.add_argument("--sample", type=int, default=None,
                             help="investigate only the first N "
                                  "URL-bearing records (default: all)")
    investigate.add_argument("--invest-dir", type=Path, default=None,
                             help="persist the charged phase here "
                                  "(resumable with `repro investigate "
                                  "--resume --invest-dir DIR`)")
    investigate.add_argument("--resume", action="store_true", default=False,
                             help="reopen an existing --invest-dir and "
                                  "finish its scans from the last commit")
    investigate.add_argument("--kill-at", type=int, default=None,
                             help="inject a hard crash before this scan "
                                  "index (testing aid for the resume "
                                  "protocol)")
    investigate.add_argument("--commit-every", type=int, default=1,
                             help="scans between durable commits with "
                                  "--invest-dir (default 1)")
    investigate.add_argument("--evidence-dir", type=Path, default=None,
                             help="write per-campaign evidence packages "
                                  "(content-hashed JSON) here")
    investigate.set_defaults(func=_cmd_investigate)
    _add_run_options(investigate)

    resume = sub.add_parser(
        "resume", help="finish a crashed checkpointed or stream run"
    )
    resume.add_argument("--checkpoint-dir", type=Path, default=None,
                        help="the journal directory of a crashed batch run")
    resume.add_argument("--stream-dir", type=Path, default=None,
                        help="the stream directory of a crashed "
                             "`repro watch` run")
    resume.add_argument("--trace-out", type=Path, default=argparse.SUPPRESS,
                        help="write the resumed run's trace JSON here")
    resume.add_argument("--trace-format", choices=("json", "chrome"),
                        default=argparse.SUPPRESS,
                        help="format for --trace-out")
    resume.add_argument("--quiet", action="store_true",
                        default=argparse.SUPPRESS,
                        help="suppress stage progress lines on stderr")
    resume.add_argument("--profile", action="store_true",
                        default=argparse.SUPPRESS,
                        help="add function-level profiling to the "
                             "resumed run")
    resume.add_argument("--history-dir", type=Path,
                        default=argparse.SUPPRESS,
                        help="append a summarized run record to "
                             "DIR/RUNS.jsonl")
    resume.set_defaults(func=_cmd_resume)
    return parser


def _writable_dir(path: Path) -> bool:
    """Is ``path`` (or its nearest existing ancestor) writable?"""
    probe = path
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            break
        probe = parent
    return os.access(probe, os.W_OK)


def _validate_args(args: argparse.Namespace) -> None:
    """Fail fast on bad run-shaping inputs, before any work starts."""
    if getattr(args, "workers", 1) < 1:
        raise ConfigurationError(
            f"--workers must be >= 1, got {args.workers}"
        )
    if getattr(args, "crash_at", None) is not None:
        _parse_crash_at(args.crash_at)
    if getattr(args, "epochs", None) is not None and args.epochs < 1:
        raise ConfigurationError(f"--epochs must be >= 1, got {args.epochs}")
    if (getattr(args, "trace_format", "json") == "chrome"
            and getattr(args, "trace_out", None) is None):
        raise ConfigurationError(
            "--trace-format chrome needs --trace-out PATH to write to"
        )
    history_dir = getattr(args, "history_dir", None)
    if getattr(args, "history", False) and history_dir is None:
        raise ConfigurationError(
            "stats --history wants --history-dir DIR to read from"
        )
    if history_dir is not None:
        if history_dir.exists() and not history_dir.is_dir():
            raise ConfigurationError(
                f"--history-dir {history_dir} exists and is not a directory"
            )
        if not getattr(args, "history", False) \
                and not _writable_dir(history_dir):
            raise ConfigurationError(
                f"--history-dir {history_dir} is not writable"
            )
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    stream_dir = getattr(args, "stream_dir", None)
    if args.command == "serve":
        serve_dir = getattr(args, "serve_dir", None)
        if getattr(args, "resume", False):
            if serve_dir is None:
                raise ConfigurationError(
                    "serve --resume wants --serve-dir DIR to reopen"
                )
            if not (serve_dir / SERVE_MANIFEST_NAME).is_file():
                raise ConfigurationError(
                    f"--serve-dir {serve_dir} has no {SERVE_MANIFEST_NAME}; "
                    f"start one with `repro serve --serve-dir {serve_dir}`"
                )
        elif serve_dir is not None:
            if (serve_dir / SERVE_MANIFEST_NAME).is_file():
                raise ConfigurationError(
                    f"--serve-dir {serve_dir} already holds a serve "
                    f"session; finish it with `repro serve --resume "
                    f"--serve-dir {serve_dir}`"
                )
            if not _writable_dir(serve_dir):
                raise ConfigurationError(
                    f"--serve-dir {serve_dir} is not writable"
                )
        if getattr(args, "kill_at", None) is not None and serve_dir is None:
            raise ConfigurationError(
                "serve --kill-at wants --serve-dir DIR (a kill without a "
                "durable session loses the run)"
            )
    if args.command == "investigate":
        invest_dir = getattr(args, "invest_dir", None)
        if getattr(args, "sample", None) is not None and args.sample < 1:
            raise ConfigurationError(
                f"investigate --sample must be >= 1, got {args.sample}"
            )
        if getattr(args, "commit_every", 1) < 1:
            raise ConfigurationError(
                f"investigate --commit-every must be >= 1, "
                f"got {args.commit_every}"
            )
        if getattr(args, "resume", False):
            if invest_dir is None:
                raise ConfigurationError(
                    "investigate --resume wants --invest-dir DIR to reopen"
                )
            if not (invest_dir / INVESTIGATE_MANIFEST_NAME).is_file():
                raise ConfigurationError(
                    f"--invest-dir {invest_dir} has no "
                    f"{INVESTIGATE_MANIFEST_NAME}; start one with "
                    f"`repro investigate --invest-dir {invest_dir}`"
                )
        elif invest_dir is not None:
            if (invest_dir / INVESTIGATE_MANIFEST_NAME).is_file():
                raise ConfigurationError(
                    f"--invest-dir {invest_dir} already holds an "
                    f"investigation session; finish it with `repro "
                    f"investigate --resume --invest-dir {invest_dir}`"
                )
            if not _writable_dir(invest_dir):
                raise ConfigurationError(
                    f"--invest-dir {invest_dir} is not writable"
                )
        if getattr(args, "kill_at", None) is not None and invest_dir is None:
            raise ConfigurationError(
                "investigate --kill-at wants --invest-dir DIR (a kill "
                "without a durable session loses the run)"
            )
        evidence_dir = getattr(args, "evidence_dir", None)
        if evidence_dir is not None and not _writable_dir(evidence_dir):
            raise ConfigurationError(
                f"--evidence-dir {evidence_dir} is not writable"
            )
    if args.command == "resume":
        if (checkpoint_dir is None) == (stream_dir is None):
            raise ConfigurationError(
                "resume wants exactly one of --checkpoint-dir (batch "
                "journal) or --stream-dir (stream session)"
            )
    if args.command in ("watch", "ingest") and checkpoint_dir is not None:
        raise ConfigurationError(
            f"`repro {args.command}` journals per-epoch under its "
            f"--stream-dir; --checkpoint-dir does not apply"
        )
    if stream_dir is not None:
        if args.command in ("ingest", "resume"):
            if not (stream_dir / STREAM_MANIFEST_NAME).is_file():
                raise ConfigurationError(
                    f"--stream-dir {stream_dir} has no "
                    f"{STREAM_MANIFEST_NAME}; start one with `repro watch "
                    f"--stream-dir {stream_dir}`"
                )
        elif not _writable_dir(stream_dir):
            raise ConfigurationError(
                f"--stream-dir {stream_dir} is not writable"
            )
    if checkpoint_dir is None:
        return
    if args.command == "resume":
        if not checkpoint_dir.is_dir():
            raise ConfigurationError(
                f"--checkpoint-dir {checkpoint_dir} is not a directory"
            )
        if not (checkpoint_dir / MANIFEST_NAME).is_file():
            raise ConfigurationError(
                f"--checkpoint-dir {checkpoint_dir} has no {MANIFEST_NAME}; "
                f"nothing to resume"
            )
        return
    if checkpoint_dir.exists() and not checkpoint_dir.is_dir():
        raise ConfigurationError(
            f"--checkpoint-dir {checkpoint_dir} exists and is not "
            f"a directory"
        )
    if not _writable_dir(checkpoint_dir):
        raise ConfigurationError(
            f"--checkpoint-dir {checkpoint_dir} is not writable"
        )
    if checkpoint_dir.is_dir() and any(checkpoint_dir.iterdir()):
        if (checkpoint_dir / MANIFEST_NAME).is_file():
            raise ConfigurationError(
                f"--checkpoint-dir {checkpoint_dir} already contains a "
                f"run journal; use `repro resume --checkpoint-dir "
                f"{checkpoint_dir}` to finish it"
            )
        raise ConfigurationError(
            f"--checkpoint-dir {checkpoint_dir} is not empty"
        )


def _cmd_resume(args: argparse.Namespace) -> int:
    if getattr(args, "stream_dir", None) is not None:
        return _cmd_stream_resume(args)
    manifest = RunJournal.read_manifest(args.checkpoint_dir)
    cli = manifest.get("cli") or {}
    argv = cli.get("argv")
    if not argv:
        raise ConfigurationError(
            f"journal at {args.checkpoint_dir} was not recorded by the "
            f"CLI; resume it with repro.checkpoint.resume_pipeline()"
        )
    new_args = build_parser().parse_args([str(a) for a in argv])
    _validate_args(new_args)
    new_args._resume_dir = args.checkpoint_dir
    if getattr(args, "quiet", False):
        new_args.quiet = True
    if getattr(args, "trace_out", None) is not None:
        new_args.trace_out = args.trace_out
    if getattr(args, "trace_format", "json") != "json":
        new_args.trace_format = args.trace_format
    if getattr(args, "profile", False):
        new_args.profile = True
    if getattr(args, "history_dir", None) is not None:
        new_args.history_dir = args.history_dir
    if not new_args.quiet:
        policy = policy_from_manifest(manifest)
        print(f"resuming run from {args.checkpoint_dir} "
              f"({policy.describe()})", file=sys.stderr)
    return new_args.func(new_args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _validate_args(args)
        return args.func(args)
    except (ConfigurationError, CheckpointError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except SimulatedCrash as exc:
        print(f"repro: crashed: {exc}", file=sys.stderr)
        stream_dir = getattr(args, "stream_dir", None)
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        serve_dir = getattr(args, "serve_dir", None)
        invest_dir = getattr(args, "invest_dir", None)
        if serve_dir is not None and args.command == "serve":
            print(f"repro: resume with: repro serve --resume --serve-dir "
                  f"{serve_dir}", file=sys.stderr)
        elif invest_dir is not None and args.command == "investigate":
            print(f"repro: resume with: repro investigate --resume "
                  f"--invest-dir {invest_dir}", file=sys.stderr)
        elif stream_dir is not None and args.command != "resume":
            print(f"repro: resume with: repro resume --stream-dir "
                  f"{stream_dir}", file=sys.stderr)
        elif checkpoint_dir is not None and args.command != "resume":
            print(f"repro: resume with: repro resume --checkpoint-dir "
                  f"{checkpoint_dir}", file=sys.stderr)
        return 75


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
