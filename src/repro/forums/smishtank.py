"""Smishtank service (§3.1.5).

Timko & Rahman's crowdsourcing site: every report is structured —
submission timestamp, sender ID, message text, URL — and usually carries
a screenshot. The collector pulls the updated report list
programmatically.
"""

from __future__ import annotations

import datetime as dt
from typing import List, Optional

from ..types import Forum
from .base import ForumService, Post
from .base_meter import ForumMeter


class SmishtankService(ForumService):
    """Structured crowdsourced reports with a bulk listing endpoint."""

    forum = Forum.SMISHTANK
    page_size = 200

    def __init__(self, *, meter: Optional[ForumMeter] = None):
        super().__init__(meter=meter or ForumMeter(service="smishtank"))

    def list_reports(
        self,
        *,
        since: Optional[dt.datetime] = None,
        until: Optional[dt.datetime] = None,
    ) -> List[Post]:
        """The site's report listing (charges one request per call).

        Unlike keyword search, this returns *all* reports in the window —
        smishtank is a dedicated smishing site, no keyword filter needed.
        """
        self.meter.charge()
        results: List[Post] = []
        for post in self.all_posts():
            if post.deleted:
                continue
            if since is not None and post.created_at < since:
                continue
            if until is not None and post.created_at >= until:
                continue
            results.append(post)
        return results
