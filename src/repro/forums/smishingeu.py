"""Smishing.eu service (§3.1.3).

A European reporting website where users filled a form: report date,
country, sender ID, impersonated brand, and the smishing text (no
screenshots reach the collector). The paper scraped it weekly (every
Monday) from 2022-11-28 until the site ceased operations on 2023-10-16;
it also grabbed the backlog of old reports.
"""

from __future__ import annotations

import datetime as dt
from typing import List, Optional

from ..errors import ServiceUnavailable
from ..types import Forum
from .base import ForumService, Post
from .base_meter import ForumMeter

#: The site went offline on this date (§3.1.3).
SHUTDOWN_DATE = dt.date(2023, 10, 16)


class SmishingEuService(ForumService):
    """Form-based reports, scraped weekly until shutdown."""

    forum = Forum.SMISHING_EU
    page_size = 200

    def __init__(self, *, meter: Optional[ForumMeter] = None):
        super().__init__(meter=meter or ForumMeter(service="smishing.eu"))

    def scrape(self, on: dt.date) -> List[Post]:
        """One scrape visit: every report visible on the site that day.

        Raises a permanent :class:`ServiceUnavailable` after shutdown.
        """
        if on >= SHUTDOWN_DATE:
            raise ServiceUnavailable(
                "smishing.eu ceased operations on 2023-10-16",
                service="smishing.eu",
                permanent=True,
            )
        self.meter.charge()
        cutoff = dt.datetime.combine(on, dt.time(0, 0))
        return [
            post for post in self.all_posts()
            if post.created_at < cutoff and not post.deleted
        ]

    def weekly_scrape_dates(
        self, start: dt.date, end: dt.date
    ) -> List[dt.date]:
        """Every Monday in [start, end) before the shutdown (§3.1.3)."""
        dates: List[dt.date] = []
        day = start
        while day.weekday() != 0:
            day += dt.timedelta(days=1)
        while day < end and day < SHUTDOWN_DATE:
            dates.append(day)
            day += dt.timedelta(days=7)
        return dates
