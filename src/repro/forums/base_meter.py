"""Request metering for forum APIs.

Forum APIs bill per request with window caps (e.g. the Twitter academic
API's monthly tweet cap; Reddit's per-minute limits). This meter counts
requests and enforces an optional hard cap — collectors surface the cap
as a collection limitation rather than crashing mid-run.

Like :class:`~repro.services.base.ServiceMeter`, the meter exposes a
uniform :meth:`ForumMeter.snapshot` and an optional ``observer`` hook so
the observability layer can account every charge and cap rejection per
forum without the collectors knowing about telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import QuotaExhausted


@dataclass
class ForumMeter:
    """Simple request counter with an optional hard cap."""

    service: str
    cap: Optional[int] = None
    #: Anything with a float ``.now`` attribute (duck-typed SimClock) —
    #: stamps ``last_charge_at`` when present.
    clock: Optional[Any] = None
    used: int = field(default=0, init=False)
    throttle_events: int = field(default=0, init=False)
    last_charge_at: Optional[float] = field(default=None, init=False)
    observer: Optional[Callable[[str, str, float], None]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _emit(self, event: str, value: float = 1.0) -> None:
        if self.observer is not None:
            self.observer(self.service, event, value)

    def charge(self, count: int = 1) -> None:
        if self.cap is not None and self.used + count > self.cap:
            self.throttle_events += 1
            self._emit("quota")
            raise QuotaExhausted(
                f"{self.service}: request cap of {self.cap} reached",
                service=self.service,
            )
        self.used += count
        if self.clock is not None:
            self.last_charge_at = float(self.clock.now)
        self._emit("request", count)

    @property
    def remaining(self) -> Optional[int]:
        if self.cap is None:
            return None
        return max(0, self.cap - self.used)

    def snapshot(self) -> Dict[str, Any]:
        """Uniform budget-consumption report (shared with ServiceMeter)."""
        return {
            "used": self.used,
            "remaining": self.remaining,
            "throttle_events": self.throttle_events,
            "last_charge_at": self.last_charge_at,
        }

    def state_dict(self) -> Dict[str, Any]:
        """Complete internal state for the run journal."""
        return {
            "used": self.used,
            "throttle_events": self.throttle_events,
            "last_charge_at": self.last_charge_at,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore journaled state silently (no observer events — the
        charges were already counted in the crashed run)."""
        self.used = int(state["used"])
        self.throttle_events = int(state["throttle_events"])
        last = state["last_charge_at"]
        self.last_charge_at = None if last is None else float(last)
