"""Request metering for forum APIs.

Forum APIs bill per request with window caps (e.g. the Twitter academic
API's monthly tweet cap; Reddit's per-minute limits). This meter counts
requests and enforces an optional hard cap — collectors surface the cap
as a collection limitation rather than crashing mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import QuotaExhausted


@dataclass
class ForumMeter:
    """Simple request counter with an optional hard cap."""

    service: str
    cap: Optional[int] = None
    used: int = field(default=0, init=False)

    def charge(self, count: int = 1) -> None:
        if self.cap is not None and self.used + count > self.cap:
            raise QuotaExhausted(
                f"{self.service}: request cap of {self.cap} reached",
                service=self.service,
            )
        self.used += count

    @property
    def remaining(self) -> Optional[int]:
        if self.cap is None:
            return None
        return max(0, self.cap - self.used)
