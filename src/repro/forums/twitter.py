"""Twitter (X) service with academic-API semantics (§3.1.1).

Two API surfaces matter to the paper:

* **Full-archive search** (academic access) for historical tweets — this
  endpoint was shut down on 2023-06-23; queries after the shutdown moment
  raise a permanent :class:`ServiceUnavailable`.
* **Recent/streaming collection** used in real time between 2022-11-30
  and the shutdown — modelled as ordinary windowed search, but it sees
  posts *before they can be deleted* (historical search does not).

Replies carry ``in_reply_to``; the collector also fetches the original
tweet and its attachment where the keyword only appeared in the reply.
"""

from __future__ import annotations

import datetime as dt
from typing import Optional

from ..errors import ServiceUnavailable
from ..types import Forum
from .base import ForumService, Post, SearchPage
from .base_meter import ForumMeter

#: Academic API shutdown moment (§3.1.1).
ACADEMIC_API_SHUTDOWN = dt.datetime(2023, 6, 23, 0, 0, 0)

#: Real-time collection start (§3.1.1).
REALTIME_START = dt.datetime(2022, 11, 30, 0, 0, 0)


class TwitterService(ForumService):
    """Twitter with an academic full-archive endpoint that can die."""

    forum = Forum.TWITTER
    page_size = 500  # full-archive pages are large

    def __init__(self, *, meter: Optional[ForumMeter] = None):
        super().__init__(meter=meter or ForumMeter(service="twitter-academic"))
        #: The simulated "current moment" of the API consumer; queries
        #: issued after the shutdown fail. Collectors set this as they
        #: sweep their collection timeline.
        self.query_time: dt.datetime = REALTIME_START

    def full_archive_search(
        self,
        keyword: str,
        *,
        since: dt.datetime,
        until: dt.datetime,
        cursor: Optional[str] = None,
    ) -> SearchPage:
        """Historical search; unavailable after the academic shutdown.

        Deleted tweets are invisible to historical search (users removed
        them before the query ran, §7.1).
        """
        if self.query_time >= ACADEMIC_API_SHUTDOWN:
            raise ServiceUnavailable(
                "Twitter academic API was shut down on 2023-06-23",
                service="twitter-academic",
                permanent=True,
            )
        return self.search(keyword, since=since, until=until, cursor=cursor)

    def realtime_search(
        self,
        keyword: str,
        *,
        since: dt.datetime,
        until: dt.datetime,
        cursor: Optional[str] = None,
    ) -> SearchPage:
        """Real-time collection window: sees posts even if later deleted
        (we collected them before deletion)."""
        if self.query_time >= ACADEMIC_API_SHUTDOWN:
            raise ServiceUnavailable(
                "Twitter academic API was shut down on 2023-06-23",
                service="twitter-academic",
                permanent=True,
            )
        return self.search(
            keyword, since=since, until=until, cursor=cursor,
            include_deleted=True,
        )

    def fetch_original(self, post: Post) -> Optional[Post]:
        """Fetch the tweet a reply points at (charges one request)."""
        if post.in_reply_to is None:
            return None
        self.meter.charge()
        original = self.get(post.in_reply_to)
        if original is None or original.deleted:
            return None
        return original
