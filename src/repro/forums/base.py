"""Forum substrate: posts, search, pagination, and rate limits.

Each of the five collection sources (§3.1) is a :class:`ForumService`
holding user posts. Collection code searches them by keyword with cursor
pagination under a rate limit, exactly the shape of the real APIs — so
the pipeline's collector logic (retry, windowing, dedup) is genuinely
exercised.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..imaging.screenshot import Screenshot
from ..types import Forum
from .base_meter import ForumMeter

#: The four collection keywords (§3.1.1).
COLLECTION_KEYWORDS: Tuple[str, ...] = (
    "smishing", "phishing sms", "sms scam", "sms fraud"
)


@dataclass
class Post:
    """One user post on a forum."""

    post_id: str
    forum: Forum
    author: str
    created_at: dt.datetime
    body: str
    attachments: List[Screenshot] = field(default_factory=list)
    language: str = "en"
    truth_event_id: Optional[str] = None
    in_reply_to: Optional[str] = None
    subreddit: Optional[str] = None
    structured: Optional[Dict[str, str]] = None
    deleted: bool = False

    def matches_keyword(self, keyword: str) -> bool:
        return keyword.lower() in self.body.lower()

    @property
    def has_attachment(self) -> bool:
        return bool(self.attachments)


@dataclass
class SearchPage:
    """One page of search results with an opaque continuation cursor."""

    posts: List[Post]
    next_cursor: Optional[str]

    @property
    def exhausted(self) -> bool:
        return self.next_cursor is None


class ForumService:
    """Base forum with keyword search over a time window."""

    forum: Forum = Forum.TWITTER  # overridden by subclasses
    page_size: int = 100

    def __init__(self, *, meter: Optional[ForumMeter] = None):
        self._posts: List[Post] = []
        self._by_id: Dict[str, Post] = {}
        self._sorted = True
        self.meter = meter or ForumMeter(service=self.forum.value)

    # -- ingestion (world-side) --------------------------------------------------

    def add_post(self, post: Post) -> None:
        if post.forum is not self.forum:
            raise ValidationError(
                f"post for {post.forum} added to {self.forum} service"
            )
        if post.post_id in self._by_id:
            raise ValidationError(f"duplicate post id: {post.post_id}")
        self._posts.append(post)
        self._by_id[post.post_id] = post
        self._sorted = False

    def add_posts(self, posts: Iterable[Post]) -> None:
        for post in posts:
            self.add_post(post)

    def delete_post(self, post_id: str) -> None:
        """User deletes content (historical collection misses it, §7.1)."""
        post = self._by_id.get(post_id)
        if post is not None:
            post.deleted = True

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._posts.sort(key=lambda p: (p.created_at, p.post_id))
            self._sorted = True

    # -- read API -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._posts)

    def get(self, post_id: str) -> Optional[Post]:
        return self._by_id.get(post_id)

    def all_posts(self) -> List[Post]:
        """World-side enumeration (not part of the public API surface)."""
        self._ensure_sorted()
        return list(self._posts)

    def search(
        self,
        keyword: str,
        *,
        since: Optional[dt.datetime] = None,
        until: Optional[dt.datetime] = None,
        cursor: Optional[str] = None,
        include_deleted: bool = False,
    ) -> SearchPage:
        """Keyword search with cursor pagination (charges one request).

        The cursor is the integer offset into the chronological match
        list, stringified — opaque to callers, stable across pages.
        """
        self.meter.charge()
        self._ensure_sorted()
        start_index = int(cursor) if cursor else 0
        matches: List[Post] = []
        scanned = 0
        next_cursor: Optional[str] = None
        for index, post in enumerate(self._posts):
            if index < start_index:
                continue
            if since is not None and post.created_at < since:
                continue
            if until is not None and post.created_at >= until:
                continue
            if post.deleted and not include_deleted:
                continue
            if not post.matches_keyword(keyword):
                continue
            matches.append(post)
            if len(matches) >= self.page_size:
                next_cursor = str(index + 1)
                break
        return SearchPage(posts=matches, next_cursor=next_cursor)

    def search_all(
        self,
        keyword: str,
        *,
        since: Optional[dt.datetime] = None,
        until: Optional[dt.datetime] = None,
    ) -> List[Post]:
        """Drain every page for a keyword (well-behaved client loop)."""
        results: List[Post] = []
        cursor: Optional[str] = None
        while True:
            page = self.search(keyword, since=since, until=until, cursor=cursor)
            results.extend(page.posts)
            if page.exhausted:
                return results
            cursor = page.next_cursor
