"""Reddit service (§3.1.2).

Submissions are spread across many subreddits — the paper found 911
subreddits with r/Scams on top but 582 subreddits contributing exactly
one post. The service supports keyword search plus per-subreddit listing.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..types import Forum
from .base import ForumService, Post
from .base_meter import ForumMeter

#: Subreddits the reporter population posts to, roughly Zipf-weighted.
KNOWN_SUBREDDITS = (
    "Scams", "cybersecurity", "ledgerwallet", "phishing", "personalfinance",
    "privacy", "AskUK", "LegalAdviceUK", "india", "IndiaInvestments",
    "Netherlands", "spain", "france", "germany", "australia", "newzealand",
    "Banking", "CryptoCurrency", "antivirus", "techsupport", "scambait",
    "IdentityTheft", "NoStupidQuestions", "mildlyinfuriating", "pics",
    "Wellthatsucks", "USPS", "RoyalMail", "amazon", "netflix",
)


class RedditService(ForumService):
    """Reddit with subreddit-aware search."""

    forum = Forum.REDDIT
    page_size = 100

    def __init__(self, *, meter: Optional[ForumMeter] = None):
        super().__init__(meter=meter or ForumMeter(service="reddit"))

    def subreddit_counts(self) -> Dict[str, int]:
        """Submissions per subreddit (world-side view for tests)."""
        counts: Counter = Counter()
        for post in self.all_posts():
            if post.subreddit:
                counts[post.subreddit] += 1
        return dict(counts)

    def posts_in_subreddit(self, subreddit: str) -> List[Post]:
        """Listing endpoint for one subreddit (charges one request)."""
        self.meter.charge()
        return [
            post for post in self.all_posts()
            if post.subreddit == subreddit and not post.deleted
        ]
