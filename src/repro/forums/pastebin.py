"""Pastebin service (§3.1.4).

One threat-intel analyst publishes pastes, each containing a single
smishing text in a fixed report format (mirroring the abuseipdb.com
cross-post shown in the paper's Fig. 5). The collector lists a user's
pastes and parses the body format.
"""

from __future__ import annotations

import datetime as dt
import re
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ParseError
from ..types import Forum
from .base import ForumService, Post
from .base_meter import ForumMeter

#: The analyst account whose pastes carry smishing reports.
ANALYST_USER = "smish-intel"

#: Paste body format produced by the analyst's tooling.
PASTE_TEMPLATE = (
    "== SMS PHISHING REPORT ==\n"
    "reported-to: abuseipdb.com\n"
    "sender: {sender}\n"
    "received: {received}\n"
    "message: {message}\n"
)

_PASTE_RE = re.compile(
    r"sender:\s*(?P<sender>.*)\n"
    r"received:\s*(?P<received>.*)\n"
    r"message:\s*(?P<message>.*)",
    re.DOTALL,
)


@dataclass(frozen=True)
class ParsedPaste:
    """Fields recovered from one paste body."""

    sender: str
    received: str
    message: str


def format_paste(sender: str, received: dt.datetime, message: str) -> str:
    """Render a paste body in the analyst's format."""
    return PASTE_TEMPLATE.format(
        sender=sender,
        received=received.strftime("%Y-%m-%d %H:%M"),
        message=message.replace("\n", " "),
    )


def parse_paste(body: str) -> ParsedPaste:
    """Parse a paste body; raises :class:`ParseError` on format drift."""
    match = _PASTE_RE.search(body)
    if not match:
        raise ParseError("paste does not match the analyst report format")
    return ParsedPaste(
        sender=match.group("sender").strip(),
        received=match.group("received").strip(),
        message=match.group("message").strip(),
    )


class PastebinService(ForumService):
    """Public pastes with a per-user listing endpoint."""

    forum = Forum.PASTEBIN
    page_size = 50

    def __init__(self, *, meter: Optional[ForumMeter] = None):
        super().__init__(meter=meter or ForumMeter(service="pastebin"))

    def pastes_by_user(self, username: str) -> List[Post]:
        """All public pastes by one account (charges one request)."""
        self.meter.charge()
        return [
            post for post in self.all_posts()
            if post.author == username and not post.deleted
        ]
