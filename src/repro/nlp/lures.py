"""Lure-principle detection (Stajano & Wilson, §5.5 / Table 13).

Each principle is keyed by cue phrases in the English text. Detection is
multi-label — most smishing texts combine authority with time pressure —
and the cue inventories were written against the same persuasion markers
the template library uses, so detection is a genuine (if in-domain)
classification task.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..types import LurePrinciple

_PHRASES: Dict[LurePrinciple, Tuple[str, ...]] = {
    LurePrinciple.TIME_URGENCY: (
        "today", "immediately", "now", "urgent", "asap", "expires",
        "expire", "deadline", "within 12", "within 24", "within 48",
        "final notice", "last chance", "right away", "before", "hasty",
        "deactivated within", "this weekend only", "limited slots",
    ),
    LurePrinciple.AUTHORITY: (
        "security team", "alert", "notice", "official", "service",
        "verify your", "confirm your identity", "your account", "customs",
        "suspended", "blocked", "locked", "dear customer", "we detected",
        "unpaid", "re-register", "update your", "your parcel", "your line",
        "your sim", "your subscription", "your bill",
    ),
    LurePrinciple.NEED_AND_GREED: (
        "refund", "reward", "rewards", "prize", "win", "won", "earn",
        "free", "gift", "bonus", "cash", "benefit", "claim", "offer",
        "discount", "% off", "loyalty", "returns", "doubled", "approved",
    ),
    LurePrinciple.KINDNESS: (
        "help", "mum", "mom", "dad", "it's me", "family", "your son",
        "your daughter", "can you", "need you",
    ),
    LurePrinciple.DISTRACTION: (
        "if this was not you", "if you did not request", "wrong number",
        "is this", "are we still", "new number", "phone broke",
        "dropped my phone", "using a friend", "lovely meeting",
        "reschedule my appointment", "unrelated",
    ),
    LurePrinciple.HERD: (
        "thousands already", "join the winners", "others have",
        "everyone", "already earning", "investors doubled", "selected for",
        "join thousands", "most popular",
    ),
    LurePrinciple.DISHONESTY: (
        "not strictly legal", "no questions asked", "between us",
        "off the books", "no credit check", "bypass", "unlocked",
    ),
}

#: Phrases that must match as whole words when single-token.
_WORD_BOUNDARY = {"now", "win", "won", "free", "help", "mum", "mom", "dad",
                  "today", "cash", "claim", "offer", "alert", "notice",
                  "before", "service", "earn"}


@dataclass(frozen=True)
class LureDetection:
    """Detected lures with per-lure matched cues."""

    lures: FrozenSet[LurePrinciple]
    evidence: Dict[LurePrinciple, Tuple[str, ...]]


class LureDetector:
    """Multi-label cue matcher over English text."""

    def __init__(self, *, min_cues: int = 1):
        self._min_cues = min_cues
        self._compiled: Dict[LurePrinciple, List[Tuple[str, re.Pattern]]] = {}
        for lure, phrases in _PHRASES.items():
            patterns: List[Tuple[str, re.Pattern]] = []
            for phrase in phrases:
                if phrase in _WORD_BOUNDARY:
                    pattern = re.compile(rf"\b{re.escape(phrase)}\b")
                else:
                    pattern = re.compile(re.escape(phrase))
            # (compiled below to keep the lambda-free loop readable)
                patterns.append((phrase, pattern))
            self._compiled[lure] = patterns

    def detect(self, english_text: str) -> LureDetection:
        """Detect every lure whose cue count reaches the threshold."""
        lowered = english_text.lower()
        found: Dict[LurePrinciple, Tuple[str, ...]] = {}
        for lure, patterns in self._compiled.items():
            hits = tuple(
                phrase for phrase, pattern in patterns
                if pattern.search(lowered)
            )
            if len(hits) >= self._min_cues:
                found[lure] = hits
        return LureDetection(lures=frozenset(found), evidence=found)

    def detect_set(self, english_text: str) -> FrozenSet[LurePrinciple]:
        return self.detect(english_text).lures
