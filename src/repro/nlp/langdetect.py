"""Language identification over the shared marker lexicon.

Two stages: script detection shortcuts non-Latin languages (Japanese kana,
Devanagari Hindi, Cyrillic...), then Latin-script texts are scored by
marker-word hits per language with a tie-break on marker specificity —
words unique to one language count more than words shared by several
(Dutch/German overlap, Spanish/Portuguese overlap).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..world.languages import LanguageRegistry, default_languages
from .tokenize import dominant_script, words_only

#: Script -> candidate language codes (scored by markers within the set).
_SCRIPT_LANGUAGES = {
    "han": ("zh",),
    "kana": ("ja",),
    "hangul": ("ko",),
    "cyrillic": ("ru", "uk", "bg", "sr"),
    "arabic": ("ar", "ur", "fa"),
    "hebrew": ("he",),
    "devanagari": ("hi", "mr"),
    "bengali": ("bn",),
    "tamil": ("ta",),
    "telugu": ("te",),
    "thai": ("th",),
    "greek": ("el",),
    "sinhala": ("si",),
    "gujarati": ("gu",),
    "kannada": ("kn",),
    "malayalam": ("ml",),
}


@dataclass(frozen=True)
class DetectionResult:
    """Language guess with its evidence."""

    language: str
    confidence: float
    marker_hits: int


class LanguageDetector:
    """Marker-lexicon language identifier."""

    def __init__(self, registry: Optional[LanguageRegistry] = None):
        self._registry = registry or default_languages()
        # Inverted index: marker word -> languages using it.
        self._marker_languages: Dict[str, List[str]] = {}
        for language in self._registry:
            for marker in language.markers:
                self._marker_languages.setdefault(marker.lower(), []).append(
                    language.code
                )

    def detect(self, text: str, default: str = "en") -> DetectionResult:
        """Identify the language of one text."""
        if not text or not text.strip():
            return DetectionResult(default, 0.0, 0)
        script = dominant_script(text)
        candidates: Optional[Tuple[str, ...]] = _SCRIPT_LANGUAGES.get(script)
        tokens = words_only(text)
        scores: Counter = Counter()
        hits = 0
        for token in tokens:
            languages = self._marker_languages.get(token)
            if not languages:
                continue
            if candidates is not None:
                languages = [l for l in languages if l in candidates]
            if not languages:
                continue
            hits += 1
            weight = 1.0 / len(languages)  # specificity weighting
            for code in languages:
                scores[code] += weight
        if candidates is not None:
            if scores:
                best, score = max(scores.items(), key=lambda kv: (kv[1], kv[0]))
                return DetectionResult(best, min(1.0, score / max(len(tokens), 1) * 3),
                                       hits)
            # Script alone pins the family; pick its first member.
            return DetectionResult(candidates[0], 0.6, 0)
        if not scores:
            return DetectionResult(default, 0.1, 0)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        best, best_score = ranked[0]
        runner_up = ranked[1][1] if len(ranked) > 1 else 0.0
        margin = best_score - runner_up
        confidence = min(1.0, (best_score + margin) / max(len(tokens), 1) * 3)
        # Weak evidence on Latin script defaults to English — mirroring
        # real detectors' behaviour on short, name-heavy SMS texts. One
        # marker point is not enough: a lone shared word ("bank") must
        # not flip the language of an otherwise markerless text.
        if best_score <= 1.0:
            return DetectionResult(default, 0.2, hits)
        return DetectionResult(best, confidence, hits)

    def detect_code(self, text: str, default: str = "en") -> str:
        """Convenience: just the language code."""
        return self.detect(text, default=default).language
