"""The GPT-4o-style text annotator (§3.3.6, prompt in Appendix D.2).

Pipelines one message through: language identification → translation to
English → brand NER → scam-type classification → lure detection, and
returns both a typed :class:`~repro.sms.message.AnnotationLabels` and the
JSON object the Appendix D.2 prompt specifies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..sms.message import AnnotationLabels
from ..types import LurePrinciple, ScamType
from ..world.brands import BrandRegistry, default_brands
from ..world.languages import LanguageRegistry, default_languages
from ..world.templates import TemplateLibrary, default_templates
from .brands_ner import BrandRecognizer
from .langdetect import LanguageDetector
from .lures import LureDetector
from .scamtype import ScamTypeClassifier
from .translate import TemplateTranslator

#: Scam-type names as the Appendix D.2 prompt spells them.
SCAM_TYPE_JSON_NAMES: Dict[ScamType, str] = {
    ScamType.HEY_MUM_DAD: "Hey mum/dad",
    ScamType.DELIVERY: "Delivery/Parcel",
    ScamType.BANKING: "Banking",
    ScamType.GOVERNMENT: "Government",
    ScamType.TELECOM: "Telecom",
    ScamType.WRONG_NUMBER: "Wrong number",
    ScamType.SPAM: "Spam",
    ScamType.OTHERS: "Others",
}
_SCAM_FROM_JSON = {v.lower(): k for k, v in SCAM_TYPE_JSON_NAMES.items()}

LURE_JSON_NAMES: Dict[LurePrinciple, str] = {
    LurePrinciple.DISTRACTION: "Distraction Principle",
    LurePrinciple.AUTHORITY: "Authority Principle",
    LurePrinciple.HERD: "Herd Principle",
    LurePrinciple.DISHONESTY: "Dishonesty Principle",
    LurePrinciple.KINDNESS: "Kindness Principle",
    LurePrinciple.NEED_AND_GREED: "Need and Greed Principle",
    LurePrinciple.TIME_URGENCY: "Time/Urgency Principle",
}
_LURE_FROM_JSON = {v.lower(): k for k, v in LURE_JSON_NAMES.items()}


def scam_type_from_json(name: str) -> ScamType:
    return _SCAM_FROM_JSON.get(name.strip().lower(), ScamType.OTHERS)


def lure_from_json(name: str) -> Optional[LurePrinciple]:
    return _LURE_FROM_JSON.get(name.strip().lower())


@dataclass
class Annotation:
    """Full annotator output for one message."""

    message_id: str
    labels: AnnotationLabels
    translation: Optional[str]
    english_text: str

    def to_json(self) -> str:
        """Render the Appendix D.2 response object."""
        payload: Dict[str, object] = {
            "id": self.message_id,
            "named_entity": self.labels.brand or "",
            "scam_type": SCAM_TYPE_JSON_NAMES[self.labels.scam_type],
            "lure_principles": [
                LURE_JSON_NAMES[lure] for lure in sorted(
                    self.labels.lures, key=lambda l: l.value
                )
            ],
            "language": self.labels.language,
        }
        if self.translation is not None:
            payload["translation"] = self.translation
        return json.dumps(payload)

    @classmethod
    def from_json(cls, raw: str) -> "Annotation":
        data = json.loads(raw)
        lures = frozenset(
            lure for lure in (
                lure_from_json(name) for name in data.get("lure_principles", [])
            ) if lure is not None
        )
        labels = AnnotationLabels(
            scam_type=scam_type_from_json(data.get("scam_type", "Others")),
            language=data.get("language", "en"),
            brand=data.get("named_entity") or None,
            lures=lures,
        )
        translation = data.get("translation")
        return cls(
            message_id=str(data.get("id", "")),
            labels=labels,
            translation=translation,
            english_text=translation or "",
        )


class MessageAnnotator:
    """End-to-end annotator for smishing texts."""

    def __init__(
        self,
        *,
        brands: Optional[BrandRegistry] = None,
        languages: Optional[LanguageRegistry] = None,
        templates: Optional[TemplateLibrary] = None,
    ):
        brands = brands or default_brands()
        self.language_detector = LanguageDetector(languages or default_languages())
        self.translator = TemplateTranslator(templates or default_templates())
        self.brand_recognizer = BrandRecognizer(brands)
        self.scam_classifier = ScamTypeClassifier(brands)
        self.lure_detector = LureDetector()

    def annotate(self, message_id: str, text: str) -> Annotation:
        """Annotate one message text."""
        language = self.language_detector.detect_code(text)
        translated = self.translator.translate(text, language)
        english = translated.text
        # Brand NER runs on the original text too — brand strings survive
        # translation (they are slot values) but leetspeak lives in the
        # original surface form.
        brand = (
            self.brand_recognizer.find_primary(text)
            or self.brand_recognizer.find_primary(english)
        )
        scam = self.scam_classifier.classify(english, brand=brand)
        lures = self.lure_detector.detect_set(english)
        labels = AnnotationLabels(
            scam_type=scam.scam_type,
            language=language,
            brand=brand,
            lures=lures,
        )
        return Annotation(
            message_id=message_id,
            labels=labels,
            translation=None if language == "en" else english,
            english_text=english,
        )

    def annotate_batch(
        self, items: List[Dict[str, str]]
    ) -> List[Annotation]:
        """Annotate ``[{"id": ..., "message": ...}]`` payloads."""
        return [
            self.annotate(str(item["id"]), item["message"]) for item in items
        ]
