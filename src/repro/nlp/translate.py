"""Template-memory machine translation.

GPT-4o translates short smishing texts near-perfectly (§3.4 cites its
translation quality). We reproduce that competence with a translation
memory compiled from the template library: every non-English template is
turned into a pattern whose slots (brand, URL, amount...) are captured
from the input and substituted into the template's English gloss. Texts
that match no memory entry fall back to a marker-word gloss — the same
graceful degradation a statistical MT system exhibits out of domain.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Pattern, Tuple

from ..world.templates import Template, TemplateLibrary, default_templates

_SLOT_RE = re.compile(r"\{(\w+)\}")

#: Slot-specific capture patterns (non-greedy defaults elsewhere).
_SLOT_PATTERNS = {
    "url": r"(?P<url>\S+)",
    "amount": r"(?P<amount>[\d.,]+)",
    "currency": r"(?P<currency>[^\s\d]{1,3})",
    "code": r"(?P<code>\d{4,8})",
    "tracking": r"(?P<tracking>[A-Z0-9]+)",
    "brand": r"(?P<brand>.+?)",
    "name": r"(?P<name>\w+)",
    "phone": r"(?P<phone>[+\d][\d\s-]*)",
}


def _compile_template(template: Template) -> Optional[Pattern]:
    """Turn template text into a regex capturing its slots."""
    pattern_parts: List[str] = []
    cursor = 0
    seen: set = set()
    for match in _SLOT_RE.finditer(template.text):
        pattern_parts.append(re.escape(template.text[cursor:match.start()]))
        slot = match.group(1)
        if slot in seen:
            pattern_parts.append(rf"(?P={slot})")
        else:
            pattern_parts.append(_SLOT_PATTERNS.get(slot, rf"(?P<{slot}>.+?)"))
            seen.add(slot)
        cursor = match.end()
    pattern_parts.append(re.escape(template.text[cursor:]))
    try:
        return re.compile("^" + "".join(pattern_parts) + "$", re.DOTALL)
    except re.error:
        return None


@dataclass(frozen=True)
class TranslationResult:
    """Output of one translation call."""

    text: str
    matched_template: bool
    source_language: str


class TemplateTranslator:
    """English translation via template memory."""

    def __init__(self, library: Optional[TemplateLibrary] = None):
        library = library or default_templates()
        self._memory: Dict[str, List[Tuple[Pattern, Template]]] = {}
        for template in library.all_templates():
            if template.language == "en" or not template.english_gloss:
                continue
            compiled = _compile_template(template)
            if compiled is not None:
                self._memory.setdefault(template.language, []).append(
                    (compiled, template)
                )

    def memory_size(self, language: Optional[str] = None) -> int:
        if language is not None:
            return len(self._memory.get(language, []))
        return sum(len(entries) for entries in self._memory.values())

    def translate(self, text: str, source_language: str) -> TranslationResult:
        """Translate ``text`` to English.

        English input passes through unchanged; matched templates render
        their gloss with the captured slot values; unmatched text returns
        as-is flagged ``matched_template=False``.
        """
        if source_language == "en":
            return TranslationResult(text, True, "en")
        for pattern, template in self._memory.get(source_language, []):
            match = pattern.match(text.strip())
            if match is None:
                continue
            slots = {k: (v or "") for k, v in match.groupdict().items()}
            gloss = template.english_gloss
            try:
                rendered = _SLOT_RE.sub(
                    lambda m: slots.get(m.group(1), ""), gloss
                )
            except Exception:
                rendered = gloss
            return TranslationResult(rendered, True, source_language)
        return TranslationResult(text, False, source_language)
