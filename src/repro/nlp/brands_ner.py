"""Brand named-entity recognition with evasion-robust matching.

Off-the-shelf NER misses ``N3tfl!x`` (§3.3.6); this recogniser matches the
brand alias lexicon against *normalised* text (leet/homoglyph undone),
using multi-word phrase matching with a squashed-key fallback, and ranks
candidates by match length so "State Bank of India" beats "Bank".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..world.brands import BrandRegistry, default_brands
from .normalize import batch_squash, normalize_text, squash
from .tokenize import tokenize

#: Alias keys shorter than this require an exact token match (avoid "ee"
#: inside other words).
_SHORT_KEY = 4

#: Pathological-input budget: the n-gram walk scans at most this many
#: tokens. Real SMS texts are tens of tokens; a megabyte of junk that
#: slipped past quarantine must not turn the O(tokens × max_ngram) walk
#: into a run-stalling loop.
_MAX_SCAN_TOKENS = 20_000


@dataclass(frozen=True)
class BrandMatch:
    """One recognised brand mention."""

    brand: str
    matched_alias: str
    start_token: int


class BrandRecognizer:
    """Lexicon NER over normalised token n-grams."""

    def __init__(self, registry: Optional[BrandRegistry] = None):
        self._registry = registry or default_brands()
        #: squashed alias -> (canonical name, original alias, token length)
        self._lexicon: Dict[str, Tuple[str, str, int]] = {}
        self._max_tokens = 1
        # One batched squash pass over the whole alias lexicon instead of
        # a per-alias call — every annotator construction pays this cost.
        alias_forms = self._registry.all_alias_forms()
        aliases = list(alias_forms)
        for alias, key in zip(aliases, batch_squash(aliases)):
            canonical = alias_forms[alias]
            if not key:
                continue
            token_count = max(1, len(alias.split()))
            self._max_tokens = max(self._max_tokens, token_count)
            existing = self._lexicon.get(key)
            # Prefer the longest original alias for a squashed key.
            if existing is None or len(alias) > len(existing[1]):
                self._lexicon[key] = (canonical, alias, token_count)

    def find_all(self, text: str) -> List[BrandMatch]:
        """Every brand mention, leftmost-longest, non-overlapping."""
        normalised = normalize_text(text)
        tokens = tokenize(normalised)
        if len(tokens) > _MAX_SCAN_TOKENS:
            tokens = tokens[:_MAX_SCAN_TOKENS]
        matches: List[BrandMatch] = []
        index = 0
        while index < len(tokens):
            matched: Optional[BrandMatch] = None
            for span in range(min(self._max_tokens + 2, len(tokens) - index), 0, -1):
                window = tokens[index:index + span]
                if any("/" in t or t.startswith("http") for t in window):
                    # n-grams crossing URLs are never brand phrases; the
                    # URL itself is checked as a single token below.
                    if span > 1:
                        continue
                key = squash("".join(window))
                entry = self._lexicon.get(key)
                if entry is None and span == 1 and "." in window[0]:
                    # Try the URL's host labels ("netflix.com-billing.xyz").
                    for label in window[0].replace("/", ".").split("."):
                        entry = self._lexicon.get(squash(label))
                        if entry:
                            break
                if entry is None:
                    continue
                canonical, alias, _ = entry
                if len(key) < _SHORT_KEY and span == 1:
                    # Short aliases must match the token exactly.
                    if squash(window[0]) != key:
                        continue
                matched = BrandMatch(
                    brand=canonical, matched_alias=alias, start_token=index
                )
                index += span
                break
            if matched is not None:
                matches.append(matched)
            else:
                index += 1
        return matches

    def find_primary(self, text: str) -> Optional[str]:
        """The impersonated brand: the first, longest-alias mention."""
        matches = self.find_all(text)
        if not matches:
            return None
        # First mention wins; ties broken by alias length (specificity).
        best = min(
            matches,
            key=lambda m: (m.start_token, -len(m.matched_alias)),
        )
        return best.brand
