"""Simulated OpenAI chat-completions endpoint.

The pipeline talks to "the model" the way the paper's scripts did: a
system prompt (Appendix D.1/D.2) plus a JSON user payload, getting a JSON
string back. This wrapper enforces the contract — a prompt that does not
carry the required instructions degrades the response — and meters
requests like the real API (tokens-per-minute is abstracted to
requests-per-second).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ValidationError
from ..imaging.screenshot import Screenshot
from ..imaging.vision_openai import OpenAiVisionExtractor, VISION_PROMPT
from .annotator import Annotation, MessageAnnotator
from ..services.base import ServiceMeter, SimClock, wait_and_charge

#: The Appendix D.2 annotation prompt, abridged to its binding clauses.
ANNOTATION_PROMPT = (
    "You will receive a json object with an 'id' and a 'message'. "
    "1. Translate the text to English, ONLY if it is not in English. "
    "2. Identify the brand, organization, or any other named entity that "
    "the message is trying to impersonate ('named_entity'). "
    "3. Classify the type of smishing message ('scam_type'): Hey mum/dad, "
    "Delivery/Parcel, Banking, Government, Telecom, Wrong number, Spam, "
    "Others. "
    "4. Provide which lure principles apply ('lure_principles'): "
    "Distraction Principle, Authority Principle, Herd Principle, "
    "Dishonesty Principle, Kindness Principle, Need and Greed Principle, "
    "Time/Urgency Principle. "
    "5. Every json object should include the 'id'. "
    "6. Return the language code of the text ('language')."
)

_REQUIRED_CLAUSES = ("scam_type", "lure_principles", "named_entity",
                     "language", "id")


@dataclass
class ChatResponse:
    """One completion: the JSON content plus usage accounting."""

    content: str
    prompt_tokens: int
    completion_tokens: int
    model: str = "gpt-4o-sim"


class OpenAiEndpoint:
    """Chat-completions facade over the annotator and vision extractor."""

    def __init__(
        self,
        *,
        clock: Optional[SimClock] = None,
        annotator: Optional[MessageAnnotator] = None,
        vision: Optional[OpenAiVisionExtractor] = None,
        rate_per_second: float = 8.0,
        quota: Optional[int] = None,
    ):
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="openai", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 4, quota=quota,
        )
        self._annotator = annotator or MessageAnnotator()
        self._vision = vision
        self.requests = 0

    def _charge(self) -> None:
        wait_and_charge(self.meter)
        self.requests += 1

    def annotate_message(
        self, prompt: str, payload: Dict[str, str],
        precomputed: Optional[Annotation] = None,
    ) -> ChatResponse:
        """Annotation call (Appendix D.2).

        ``precomputed`` lets a caller supply an annotation it already
        derived for this exact message text (annotations are pure in the
        text, bar the echoed id): validation and request metering happen
        exactly as for a computed call — only the annotator compute is
        skipped, with the annotation rebound to this payload's id. This
        is the replay half of :class:`repro.exec.EnrichmentCache`.
        """
        missing = [clause for clause in _REQUIRED_CLAUSES if clause not in prompt]
        if missing:
            raise ValidationError(
                f"annotation prompt missing required clauses: {missing}"
            )
        if "id" not in payload or "message" not in payload:
            raise ValidationError("payload must carry 'id' and 'message'")
        self._charge()
        if precomputed is not None:
            annotation = dataclasses.replace(
                precomputed, message_id=str(payload["id"])
            )
        else:
            annotation = self._annotator.annotate(
                str(payload["id"]), payload["message"]
            )
        content = annotation.to_json()
        return ChatResponse(
            content=content,
            prompt_tokens=len(prompt.split()) + len(payload["message"].split()),
            completion_tokens=len(content.split()),
        )

    def extract_image(
        self, prompt: str, screenshot: Screenshot
    ) -> ChatResponse:
        """Vision extraction call (Appendix D.1)."""
        if self._vision is None:
            raise ValidationError("endpoint was built without vision support")
        if "screenshot" not in prompt or "json" not in prompt.lower():
            raise ValidationError("vision prompt must follow Appendix D.1")
        self._charge()
        extraction = self._vision.extract(screenshot)
        content = extraction.to_json()
        return ChatResponse(
            content=content,
            prompt_tokens=len(prompt.split()) + 850,  # image tokens, flat
            completion_tokens=len(content.split()),
        )


def default_endpoint(
    vision: Optional[OpenAiVisionExtractor] = None,
    clock: Optional[SimClock] = None,
) -> OpenAiEndpoint:
    """An endpoint wired with the default annotator (and optional vision)."""
    return OpenAiEndpoint(clock=clock, vision=vision)


__all__ = [
    "ANNOTATION_PROMPT",
    "VISION_PROMPT",
    "ChatResponse",
    "OpenAiEndpoint",
    "default_endpoint",
]
