"""Scam-type classification (the eight categories of §3.3.6).

Operates on the *English* text (the annotator translates first, as the
Appendix D.2 prompt does) plus two context signals that the prompt also
exploits: the impersonated brand's sector, and whether the message
carries a URL (conversation scams do not).

Rule order mirrors the prompt's category definitions: conversation scams
first (their surface forms are unmistakable), then impersonation
categories by cue strength, then spam, with ``others`` as the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from ..types import ScamType
from ..world.brands import BrandRegistry, default_brands
from .tokenize import tokenize

_CUES: Dict[ScamType, FrozenSet[str]] = {
    ScamType.BANKING: frozenset({
        "bank", "banking", "account", "kyc", "card", "debit", "credit",
        "login", "netbanking", "iban", "suspended", "rewards", "points",
        "payment", "transfer", "transaction",
    }),
    ScamType.DELIVERY: frozenset({
        "parcel", "package", "delivery", "deliver", "courier", "shipment",
        "customs", "tracking", "track", "redelivery", "reschedule", "post",
        "postal", "encomenda", "colis", "paket", "pakket",
    }),
    ScamType.GOVERNMENT: frozenset({
        "tax", "refund", "irs", "hmrc", "toll", "penalty", "fine",
        "benefit", "government", "revenue", "dvla", "customs-duty", "gov",
        "seizure", "debt",
    }),
    ScamType.TELECOM: frozenset({
        "sim", "bill", "line", "network", "mobile", "operator", "data",
        "top-up", "topup", "deactivated", "loyalty", "tariff",
    }),
    ScamType.SPAM: frozenset({
        "casino", "spins", "bet", "betting", "sale", "discount", "off",
        "deal", "prize", "draw", "lottery", "win", "offer", "promo",
        "promotion", "unsubscribe",
    }),
}

_HEY_MUM_DAD_CUES = ("mum", "mom", "dad", "mama", "papa", "maman", "mam")
_NEW_NUMBER_CUES = ("new number", "phone broke", "broke my phone",
                    "dropped my phone", "different number", "using a friend",
                    "phone is broken", "nieuwe nummer", "numero nuevo",
                    "nouveau numéro", "neue nummer")
_WRONG_NUMBER_CUES = ("is this", "are we still", "long time", "it's been",
                      "lovely meeting", "reschedule my appointment",
                      "wrong number", "who is this")


@dataclass(frozen=True)
class ScamTypeResult:
    """Classification with the evidence that produced it."""

    scam_type: ScamType
    score: float
    cue_hits: int


class ScamTypeClassifier:
    """Cue/lexicon classifier with brand-sector priors."""

    def __init__(self, brands: Optional[BrandRegistry] = None):
        self._brands = brands or default_brands()

    def classify(
        self,
        english_text: str,
        *,
        brand: Optional[str] = None,
        has_url: Optional[bool] = None,
    ) -> ScamTypeResult:
        """Classify one message (English text, optional brand context)."""
        lowered = english_text.lower()
        tokens = set()
        for token in tokenize(lowered):
            tokens.add(token)
            stripped = token.strip("!'")
            if stripped:
                tokens.add(stripped)
        if has_url is None:
            has_url = any("/" in t or t.startswith("http") or
                          (t.count(".") >= 1 and any(c.isalpha() for c in t))
                          for t in tokens)

        # Conversation scams: unmistakable surface forms, no URL.
        if any(cue in tokens for cue in _HEY_MUM_DAD_CUES) and any(
            cue in lowered for cue in _NEW_NUMBER_CUES
        ):
            return ScamTypeResult(ScamType.HEY_MUM_DAD, 1.0, 2)
        if not has_url and brand is None and any(
            cue in lowered for cue in _WRONG_NUMBER_CUES
        ):
            return ScamTypeResult(ScamType.WRONG_NUMBER, 0.9, 1)

        # Brand sector is a strong prior for impersonation scams.
        sector: Optional[ScamType] = None
        if brand is not None:
            try:
                sector = self._brands.get(brand).category
            except Exception:
                sector = None

        scores: Dict[ScamType, float] = {}
        for scam_type, cues in _CUES.items():
            hits = len(tokens & cues)
            if hits:
                scores[scam_type] = float(hits)
        if sector is not None and sector in _CUES:
            scores[sector] = scores.get(sector, 0.0) + 1.5
        elif sector is ScamType.OTHERS:
            scores[ScamType.OTHERS] = scores.get(ScamType.OTHERS, 0.0) + 1.2

        if not scores:
            if not has_url and any(cue in lowered for cue in _WRONG_NUMBER_CUES):
                return ScamTypeResult(ScamType.WRONG_NUMBER, 0.6, 1)
            return ScamTypeResult(ScamType.OTHERS, 0.3, 0)

        best_type, best_score = max(
            scores.items(), key=lambda kv: (kv[1], kv[0].value)
        )
        # Spam needs decisive evidence: a spam cue alongside an
        # impersonated regulated brand is still a scam, not marketing.
        if best_type is ScamType.SPAM and sector not in (None, ScamType.OTHERS):
            non_spam = {k: v for k, v in scores.items() if k is not ScamType.SPAM}
            if non_spam:
                best_type, best_score = max(
                    non_spam.items(), key=lambda kv: (kv[1], kv[0].value)
                )
        hits = int(best_score)
        return ScamTypeResult(best_type, min(1.0, best_score / 4.0), hits)
