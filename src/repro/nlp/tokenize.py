"""Unicode-aware tokenisation for smishing texts.

SMS text is messy: URLs, currency symbols, emoji, leetspeak, and a mix of
scripts. The tokenizer keeps URLs intact as single tokens (they matter
for downstream extraction), lowercases Latin-script words, and exposes a
simple interface every classifier in the package shares.
"""

from __future__ import annotations

import re
import unicodedata
from typing import List

_URL_TOKEN_RE = re.compile(
    r"(?:https?://)?(?:[a-zA-Z0-9-]+\.)+[a-zA-Z]{2,24}(?:/[^\s]*)?"
)
# ``\w`` excludes combining marks (category Mn), which would shatter
# Brahmic-script words (Devanagari matras, Tamil vowel signs...) into
# fragments. Include the relevant script blocks wholesale.
_WORD_RE = re.compile(
    r"[\w"
    r"֑-ׇ"  # Hebrew points
    r"ً-ْ"  # Arabic harakat
    r"ऀ-෿"  # Devanagari..Sinhala blocks (letters + signs)
    r"฀-๿"  # Thai
    r"'@€£₹¥!]+",
    re.UNICODE,
)


def tokenize(text: str) -> List[str]:
    """Split text into lowercase tokens, preserving URLs whole."""
    tokens: List[str] = []
    cursor = 0
    for match in _URL_TOKEN_RE.finditer(text):
        before = text[cursor:match.start()]
        tokens.extend(w.lower() for w in _WORD_RE.findall(before))
        tokens.append(match.group(0).lower())
        cursor = match.end()
    tokens.extend(w.lower() for w in _WORD_RE.findall(text[cursor:]))
    return tokens


def words_only(text: str) -> List[str]:
    """Tokens excluding URLs and pure numbers (for language detection)."""
    result: List[str] = []
    for token in tokenize(text):
        if "." in token and "/" not in token:
            continue
        if "/" in token or token.startswith("http"):
            continue
        if token.replace(",", "").replace("'", "").isdigit():
            continue
        result.append(token)
    return result


def dominant_script(text: str) -> str:
    """Rough script classification by codepoint ranges.

    Returns one of: latin, han, kana, hangul, cyrillic, arabic, hebrew,
    devanagari, bengali, tamil, telugu, thai, greek, sinhala, gujarati,
    kannada, malayalam, unknown.
    """
    counts: dict = {}
    for char in text:
        if not char.isalpha():
            continue
        code = ord(char)
        script = _script_of(code)
        counts[script] = counts.get(script, 0) + 1
    if not counts:
        return "unknown"
    return max(counts.items(), key=lambda kv: kv[1])[0]


def _script_of(code: int) -> str:
    if code < 0x250:
        return "latin"
    if 0x370 <= code <= 0x3FF:
        return "greek"
    if 0x400 <= code <= 0x4FF:
        return "cyrillic"
    if 0x590 <= code <= 0x5FF:
        return "hebrew"
    if 0x600 <= code <= 0x6FF or 0x750 <= code <= 0x77F:
        return "arabic"
    if 0x900 <= code <= 0x97F:
        return "devanagari"
    if 0x980 <= code <= 0x9FF:
        return "bengali"
    if 0xA80 <= code <= 0xAFF:
        return "gujarati"
    if 0xB80 <= code <= 0xBFF:
        return "tamil"
    if 0xC00 <= code <= 0xC7F:
        return "telugu"
    if 0xC80 <= code <= 0xCFF:
        return "kannada"
    if 0xD00 <= code <= 0xD7F:
        return "malayalam"
    if 0xD80 <= code <= 0xDFF:
        return "sinhala"
    if 0xE00 <= code <= 0xE7F:
        return "thai"
    if 0x3040 <= code <= 0x30FF:
        return "kana"
    if 0x4E00 <= code <= 0x9FFF:
        return "han"
    if 0xAC00 <= code <= 0xD7AF or 0x1100 <= code <= 0x11FF:
        return "hangul"
    category = unicodedata.category(chr(code))
    return "latin" if category.startswith("L") and code < 0x2000 else "unknown"
