"""Text similarity: shingles, Jaccard, MinHash and LSH-style clustering.

Smishing campaigns send near-duplicate texts (same template, varying
amounts/codes/URLs). Clustering the curated dataset back into campaigns
is the standard mining step over such corpora; this module provides the
machinery: character shingles robust to slot variation, exact Jaccard for
small sets, MinHash signatures for scale, and a banded-LSH candidate
generator feeding a union-find clusterer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..utils.rng import stable_hash

_DIGIT_RE = re.compile(r"\d+")
_URL_RE = re.compile(
    r"(?:https?://)?(?:[a-zA-Z0-9-]+\.)+[a-zA-Z]{2,24}(?:/[^\s]*)?"
)
_WS_RE = re.compile(r"\s+")


def canonicalise(text: str) -> str:
    """Map a message onto its template skeleton.

    URLs become ``<url>`` and digit runs become ``<n>``, so two sends of
    the same template with different amounts/codes/links canonicalise to
    the same string.
    """
    result = _URL_RE.sub("<url>", text)
    result = _DIGIT_RE.sub("<n>", result)
    return _WS_RE.sub(" ", result).strip().lower()


def shingles(text: str, k: int = 4) -> FrozenSet[str]:
    """Character k-shingles of the canonicalised text."""
    canonical = canonicalise(text)
    if len(canonical) <= k:
        return frozenset({canonical} if canonical else set())
    return frozenset(
        canonical[i:i + k] for i in range(len(canonical) - k + 1)
    )


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    return intersection / (len(a) + len(b) - intersection)


@dataclass(frozen=True)
class MinHashSignature:
    """Fixed-length MinHash signature of a shingle set."""

    values: Tuple[int, ...]

    def estimate_jaccard(self, other: "MinHashSignature") -> float:
        if len(self.values) != len(other.values):
            raise ValueError("signature lengths differ")
        if not self.values:
            return 0.0
        matches = sum(1 for a, b in zip(self.values, other.values) if a == b)
        return matches / len(self.values)


class MinHasher:
    """Produces MinHash signatures with ``num_hashes`` seeded functions."""

    def __init__(self, num_hashes: int = 64):
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_hashes = num_hashes
        # Affine hash family over a Mersenne prime.
        self._prime = (1 << 61) - 1
        self._coefficients = [
            (stable_hash(f"mh-a-{i}", self._prime - 1) + 1,
             stable_hash(f"mh-b-{i}", self._prime))
            for i in range(num_hashes)
        ]

    def signature(self, shingle_set: Iterable[str]) -> MinHashSignature:
        hashed = [stable_hash(s, self._prime) for s in shingle_set]
        if not hashed:
            return MinHashSignature(values=tuple([0] * self.num_hashes))
        values = []
        for a, b in self._coefficients:
            values.append(min((a * h + b) % self._prime for h in hashed))
        return MinHashSignature(values=tuple(values))


class UnionFind:
    """Disjoint sets with path compression."""

    def __init__(self, size: int):
        self._parent = list(range(size))

    def find(self, index: int) -> int:
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)

    def groups(self) -> Dict[int, List[int]]:
        grouped: Dict[int, List[int]] = {}
        for index in range(len(self._parent)):
            grouped.setdefault(self.find(index), []).append(index)
        return grouped


def cluster_texts(
    texts: Sequence[str],
    *,
    threshold: float = 0.7,
    num_hashes: int = 64,
    bands: int = 16,
    shingle_k: int = 4,
) -> List[List[int]]:
    """Cluster texts by near-duplicate similarity.

    Banded MinHash-LSH proposes candidate pairs; exact Jaccard over the
    shingle sets confirms them at ``threshold``; union-find merges.
    Returns index clusters, largest first.
    """
    if num_hashes % bands != 0:
        raise ValueError("bands must divide num_hashes")
    shingle_sets = [shingles(text, shingle_k) for text in texts]
    hasher = MinHasher(num_hashes)
    signatures = [hasher.signature(s) for s in shingle_sets]
    rows = num_hashes // bands
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for index, signature in enumerate(signatures):
        for band in range(bands):
            chunk = signature.values[band * rows:(band + 1) * rows]
            key = (band, stable_hash(",".join(map(str, chunk))))
            buckets.setdefault(key, []).append(index)
    uf = UnionFind(len(texts))
    checked: Set[Tuple[int, int]] = set()
    for members in buckets.values():
        if len(members) < 2:
            continue
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                pair = (members[i], members[j])
                if pair in checked:
                    continue
                checked.add(pair)
                if jaccard(shingle_sets[pair[0]],
                           shingle_sets[pair[1]]) >= threshold:
                    uf.union(*pair)
    clusters = list(uf.groups().values())
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return clusters
