"""Leetspeak / homoglyph normalisation.

Scammers spell brands as ``N3tfl!x`` or ``Amaz0n`` to slip past keyword
filters; off-the-shelf NER misses these (§3.3.6). Normalisation maps
look-alike digits/symbols back to letters and strips combining marks so
the brand lexicon can match. The mapping is deliberately conservative —
it only rewrites characters *inside* alphabetic tokens, so genuine codes
("OTP 123456") survive untouched.
"""

from __future__ import annotations

import re
import unicodedata
from typing import Dict, List, Sequence

#: Look-alike characters and the letters they stand in for.
LEET_MAP: Dict[str, str] = {
    "0": "o", "1": "l", "3": "e", "4": "a", "5": "s", "7": "t", "8": "b",
    "9": "g", "!": "i", "@": "a", "$": "s", "€": "e", "|": "l",
}

#: Homoglyphs from other scripts used in squatting domains.
HOMOGLYPH_MAP: Dict[str, str] = {
    "а": "a", "е": "e", "о": "o", "р": "p", "с": "c", "х": "x", "у": "y",
    "і": "i", "ѕ": "s", "ɑ": "a", "ı": "i", "ℓ": "l",
}

_TOKEN_RE = re.compile(r"\S+")

#: Pathological-input budget: normalisation inspects at most this many
#: characters per text. Real SMS bodies are under a kilobyte; anything a
#: megabyte long is hostile, and the quarantine layer has usually
#: diverted it already — this cap is the backstop that keeps the regex
#: walk bounded even for inputs that reach the hot path directly. The
#: batch variants apply the identical truncation, preserving the
#: batch ≡ per-record equality the property tests enforce.
MAX_NORMALIZE_CHARS = 65_536


def strip_accents(text: str) -> str:
    """Remove combining marks: ``café`` → ``cafe``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def _has_letters(token: str) -> bool:
    return any(ch.isalpha() for ch in token)


def _is_code_like(token: str) -> bool:
    """Pure digits / short digit groups are codes, not disguised words."""
    stripped = token.strip(".,:;!?")
    return stripped.isdigit()


def normalize_token(token: str) -> str:
    """Undo leet/homoglyph substitutions inside one token."""
    if _is_code_like(token) or not _has_letters(token):
        return token.lower()
    chars = []
    for ch in token:
        lower = ch.lower()
        if lower in HOMOGLYPH_MAP:
            chars.append(HOMOGLYPH_MAP[lower])
        elif ch in LEET_MAP:
            chars.append(LEET_MAP[ch])
        else:
            chars.append(lower)
    return strip_accents("".join(chars))


def normalize_text(text: str) -> str:
    """Normalise every token of a text, preserving whitespace shape.

    Inputs beyond ``MAX_NORMALIZE_CHARS`` are truncated first — a
    bounded-cost guarantee for adversarial megabyte bodies.
    """
    if len(text) > MAX_NORMALIZE_CHARS:
        text = text[:MAX_NORMALIZE_CHARS]
    return _TOKEN_RE.sub(lambda m: normalize_token(m.group(0)), text)


def squash(text: str) -> str:
    """Lowercase and drop every non-alphanumeric character.

    ``"N3tfl!x"`` → ``"netflix"``; used as the last-resort comparison key
    in brand matching.
    """
    return "".join(ch for ch in normalize_text(text) if ch.isalnum())


# -- batched (columnar) normalisation ----------------------------------------
#
# Per-record `squash` dominates the analysis hot path: ten-thousand-plus
# calls each pay the regex-engine entry cost and re-normalise tokens the
# corpus repeats endlessly ("your", "parcel", brand names). The batch
# variants below make ONE compiled-regex pass over the whole corpus
# joined on a sentinel, memoising normalize_token per distinct token —
# and are proven token-for-token identical to the per-record functions
# by the property tests in ``tests/test_properties.py``.

#: Joins texts for the single-pass batch walk. U+001E (record separator)
#: cannot be produced by normalisation (NFKD never emits it and the
#: mapping tables do not contain it), and as a standalone token it
#: normalises to itself, so it survives the pass as a split point.
BATCH_SENTINEL = "\n\x1e\n"


def batch_normalize(texts: Sequence[str]) -> List[str]:
    """``[normalize_text(t) for t in texts]`` in one regex pass.

    Texts that themselves contain the sentinel character (possible only
    in adversarial input; no generator emits it) fall back to the
    per-record function — correctness over batching.
    """
    if not texts:
        return []
    # Identical truncation to normalize_text, BEFORE the sentinel join —
    # required for batch ≡ per-record equality on oversized inputs.
    texts = [t if len(t) <= MAX_NORMALIZE_CHARS
             else t[:MAX_NORMALIZE_CHARS] for t in texts]
    fallback = {i: normalize_text(t)
                for i, t in enumerate(texts) if "\x1e" in t}
    if len(fallback) == len(texts):
        return [fallback[i] for i in range(len(texts))]
    batched = [t for i, t in enumerate(texts) if i not in fallback]
    memo: Dict[str, str] = {}

    def _token(match: "re.Match[str]") -> str:
        token = match.group(0)
        normalized = memo.get(token)
        if normalized is None:
            normalized = memo[token] = normalize_token(token)
        return normalized

    joined = _TOKEN_RE.sub(_token, BATCH_SENTINEL.join(batched))
    pieces = iter(joined.split(BATCH_SENTINEL))
    return [fallback[i] if i in fallback else next(pieces)
            for i in range(len(texts))]


def batch_squash(texts: Sequence[str]) -> List[str]:
    """``[squash(t) for t in texts]`` via the single-pass batch walk."""
    return ["".join(ch for ch in piece if ch.isalnum())
            for piece in batch_normalize(texts)]
