"""Leetspeak / homoglyph normalisation.

Scammers spell brands as ``N3tfl!x`` or ``Amaz0n`` to slip past keyword
filters; off-the-shelf NER misses these (§3.3.6). Normalisation maps
look-alike digits/symbols back to letters and strips combining marks so
the brand lexicon can match. The mapping is deliberately conservative —
it only rewrites characters *inside* alphabetic tokens, so genuine codes
("OTP 123456") survive untouched.
"""

from __future__ import annotations

import re
import unicodedata
from typing import Dict

#: Look-alike characters and the letters they stand in for.
LEET_MAP: Dict[str, str] = {
    "0": "o", "1": "l", "3": "e", "4": "a", "5": "s", "7": "t", "8": "b",
    "9": "g", "!": "i", "@": "a", "$": "s", "€": "e", "|": "l",
}

#: Homoglyphs from other scripts used in squatting domains.
HOMOGLYPH_MAP: Dict[str, str] = {
    "а": "a", "е": "e", "о": "o", "р": "p", "с": "c", "х": "x", "у": "y",
    "і": "i", "ѕ": "s", "ɑ": "a", "ı": "i", "ℓ": "l",
}

_TOKEN_RE = re.compile(r"\S+")


def strip_accents(text: str) -> str:
    """Remove combining marks: ``café`` → ``cafe``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def _has_letters(token: str) -> bool:
    return any(ch.isalpha() for ch in token)


def _is_code_like(token: str) -> bool:
    """Pure digits / short digit groups are codes, not disguised words."""
    stripped = token.strip(".,:;!?")
    return stripped.isdigit()


def normalize_token(token: str) -> str:
    """Undo leet/homoglyph substitutions inside one token."""
    if _is_code_like(token) or not _has_letters(token):
        return token.lower()
    chars = []
    for ch in token:
        lower = ch.lower()
        if lower in HOMOGLYPH_MAP:
            chars.append(HOMOGLYPH_MAP[lower])
        elif ch in LEET_MAP:
            chars.append(LEET_MAP[ch])
        else:
            chars.append(lower)
    return strip_accents("".join(chars))


def normalize_text(text: str) -> str:
    """Normalise every token of a text, preserving whitespace shape."""
    return _TOKEN_RE.sub(lambda m: normalize_token(m.group(0)), text)


def squash(text: str) -> str:
    """Lowercase and drop every non-alphanumeric character.

    ``"N3tfl!x"`` → ``"netflix"``; used as the last-resort comparison key
    in brand matching.
    """
    return "".join(ch for ch in normalize_text(text) if ch.isalnum())
