"""The stream session: multi-epoch ingestion over one simulated world.

A :class:`StreamSession` turns the batch pipeline into a resumable
incremental ingester. One session owns one world, one enrichment-service
battery, one memo cache, one breaker set, and one telemetry sink; each
*epoch* then runs the familiar collect → curate → enrich sequence over a
clamped slice of the collection timeline and folds its products into the
growing :class:`~repro.stream.state.StreamState`:

* the **epoch plan** (:mod:`repro.stream.epochs`) partitions the global
  window, so windowed forums contribute each post to exactly one epoch;
* the **watermark store** (:mod:`repro.stream.watermarks`) drops
  re-sightings from the cumulative sources and defers future-dated
  posts to the epoch that owns them;
* the **dedup ledger** (:mod:`repro.stream.ledger`) removes records
  whose content a prior epoch already enriched — the duplicate record
  stays in the dataset but inherits its canonical twin's annotation
  (rebound to its own record id, exactly the service's echo semantics);
* **delta enrichment** passes the merged state's url/sender subjects to
  the :class:`~repro.core.enrichment.Enricher` as known sets and keeps
  the session-wide cache warm, so epoch N+1 charges only for what epoch
  N has never answered.

With a ``stream_dir``, every epoch runs under its own
:class:`~repro.checkpoint.CheckpointSession` (journal + barriers under
``<stream_dir>/epochs/epoch-NNNN/``) and each commit durably rewrites
``state.pkl`` + ``STREAM.json``. A crash mid-epoch resumes *that* epoch
from its journal without disturbing committed ones; a crash between
epochs resumes from the committed state alone.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import shutil
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..checkpoint import MANIFEST_NAME, CheckpointSession
from ..checkpoint.session import NULL_CHECKPOINT
from ..checkpoint.state import (
    BREAKER_PREFIX,
    CLOCK_KEY,
    FORUM_METER_PREFIX,
    METER_PREFIX,
    PROXY_PREFIX,
    build_state_registry,
)
from ..core.collection import CollectionResult, collect_all
from ..core.config import PipelineConfig
from ..core.curation import Curator
from ..core.quarantine import stamp_epoch
from ..core.enrichment import EnrichedDataset, Enricher
from ..core.dataset import SmishingDataset
from ..core.pipeline import _observed_meters, build_enrichment_services
from ..errors import CheckpointError, ConfigurationError
from ..exec import ExecutionEngine, ExecutionPolicy
from ..faults import CrashPoint, FaultPlan, build_fault_plan, inject_faults
from ..imaging.vision_openai import OpenAiVisionExtractor
from ..obs import Telemetry, ensure_telemetry
from ..resilience import CircuitBreaker, RetryPolicy
from ..types import Forum
from ..utils.rng import derive
from ..world.scenario import ScenarioConfig, World, build_world
from .epochs import EpochScheduler, EpochWindow, clamp_windows, plan_epochs
from .ledger import DedupLedger
from .persist import atomic_write_json, atomic_write_pickle, read_json, \
    read_pickle
from .state import EpochStats, StreamState
from .watermarks import WatermarkStore

#: The stream directory's manifest file name.
STREAM_MANIFEST_NAME = "STREAM.json"
STREAM_STATE_NAME = "state.pkl"
STREAM_FORMAT_VERSION = 1


def _scenario_to_dict(scenario: ScenarioConfig) -> Dict[str, Any]:
    payload = dataclasses.asdict(scenario)
    payload["timeline_start"] = scenario.timeline_start.isoformat()
    payload["timeline_end"] = scenario.timeline_end.isoformat()
    return payload


def _scenario_from_dict(payload: Dict[str, Any]) -> ScenarioConfig:
    data = dict(payload)
    data["timeline_start"] = dt.date.fromisoformat(data["timeline_start"])
    data["timeline_end"] = dt.date.fromisoformat(data["timeline_end"])
    return ScenarioConfig(**data)


class StreamSession:
    """One continuous-ingestion run: a world plus its growing state."""

    def __init__(self, world: World, *, scheduler: EpochScheduler,
                 config: Optional[PipelineConfig] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 execution: Optional[ExecutionPolicy] = None,
                 telemetry: Optional[Telemetry] = None,
                 stream_dir: Optional[Path] = None,
                 crash_at: Optional[tuple] = None,
                 crash_epoch: Optional[int] = None,
                 cli: Optional[Dict[str, Any]] = None):
        self.world = world
        self.scheduler = scheduler
        base = config or PipelineConfig()
        #: Epoch-sliced curation requires per-image vision draws — the
        #: positional RNG would make an image's extraction depend on how
        #: many images preceded it across *all* epochs.
        self.config = replace(base, stable_vision=True)
        self._survivable = (fault_plan.without_crash_points()
                            if fault_plan is not None else None)
        self._crash_at = crash_at
        self._crash_epoch = crash_epoch if crash_epoch is not None else 0
        self.policy = execution or ExecutionPolicy()
        self.telemetry = ensure_telemetry(telemetry)
        self.telemetry.tracer.bind_clock(world.clock)
        self.stream_dir = Path(stream_dir) if stream_dir is not None else None
        self._cli = dict(cli) if cli else {}

        if (self.stream_dir is not None and self._survivable is not None
                and not self._survivable.is_empty
                and self._survivable.profile is None):
            raise ConfigurationError(
                "a durable stream session needs a *named* fault profile "
                "(hand-built plans cannot be rebuilt at resume time)"
            )

        #: Session-wide resources: one service battery (one OpenAI
        #: endpoint, so annotation memoisation spans epochs), one cache,
        #: one breaker set. Fault proxies are rebuilt per epoch.
        self.services = build_enrichment_services(world)
        self._engine = ExecutionEngine(self.policy)
        self.cache = self._engine.build_cache()
        self.breakers: Dict[str, CircuitBreaker] = {}

        self.state = StreamState()
        self.watermarks = WatermarkStore()
        self.ledger = DedupLedger()
        self._cache_seeded = 0
        self._checkpoint_totals: Dict[str, Any] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, scenario: Optional[ScenarioConfig] = None, *,
               epochs: Optional[int] = None,
               epoch_hours: Optional[float] = None,
               config: Optional[PipelineConfig] = None,
               fault_plan: Optional[FaultPlan] = None,
               execution: Optional[ExecutionPolicy] = None,
               telemetry_factory: Optional[Callable[[World], Telemetry]] = None,
               stream_dir: Optional[Path] = None,
               idle_seconds: float = 0.0,
               crash_at: Optional[tuple] = None,
               crash_epoch: Optional[int] = None,
               cli: Optional[Dict[str, Any]] = None) -> "StreamSession":
        """Start a fresh session (``repro watch``).

        With a ``stream_dir``, the directory must not already hold a
        stream; the session manifest is persisted immediately so even a
        crash inside epoch 0 leaves a resumable directory behind.
        """
        scenario = scenario or ScenarioConfig()
        world = build_world(scenario)
        base = config or PipelineConfig()
        plan = plan_epochs(base.windows, epochs=epochs,
                           epoch_hours=epoch_hours)
        target = epochs if epochs is not None else len(plan)
        scheduler = EpochScheduler(plan, target=target,
                                   idle_seconds=idle_seconds)
        telemetry = (telemetry_factory(world) if telemetry_factory is not None
                     else None)
        session = cls(world, scheduler=scheduler, config=base,
                      fault_plan=fault_plan, execution=execution,
                      telemetry=telemetry, stream_dir=stream_dir,
                      crash_at=crash_at, crash_epoch=crash_epoch, cli=cli)
        if session.stream_dir is not None:
            manifest = session.stream_dir / STREAM_MANIFEST_NAME
            if manifest.exists():
                raise ConfigurationError(
                    f"{session.stream_dir} already holds a stream session; "
                    f"continue it with `repro resume --stream-dir "
                    f"{session.stream_dir}` or `repro ingest`"
                )
            session.stream_dir.mkdir(parents=True, exist_ok=True)
            session._persist_manifest(state_ref=None)
        return session

    @classmethod
    def load(cls, stream_dir: Path, *,
             telemetry_factory: Optional[Callable[[World], Telemetry]] = None,
             crash_at: Optional[tuple] = None,
             crash_epoch: Optional[int] = None) -> "StreamSession":
        """Reopen a durable session (``repro resume`` / ``repro ingest``).

        Rebuilds the world from the persisted scenario, reloads the
        merged state, watermarks, and ledger, seeds the enrichment cache
        from the prior epochs' exported entries, and restores the
        registry state (clock, meters, breakers) captured at the last
        commit — fault-proxy counters excepted, since proxies are
        rebuilt fresh for every epoch.
        """
        stream_dir = Path(stream_dir)
        manifest_path = stream_dir / STREAM_MANIFEST_NAME
        if not manifest_path.is_file():
            raise ConfigurationError(
                f"{stream_dir} holds no {STREAM_MANIFEST_NAME}; nothing "
                f"to resume"
            )
        manifest = read_json(manifest_path)
        if manifest.get("version") != STREAM_FORMAT_VERSION:
            raise CheckpointError(
                f"stream manifest version {manifest.get('version')!r} is "
                f"not supported (want {STREAM_FORMAT_VERSION})"
            )
        scenario = _scenario_from_dict(manifest["scenario"])
        world = build_world(scenario)
        faults = manifest.get("faults") or {}
        fault_plan = None
        if faults.get("profile"):
            fault_plan = build_fault_plan(faults["profile"],
                                          seed=int(faults["seed"]))
        execution = ExecutionPolicy(**manifest["execution"])
        plan = [EpochWindow(index=i,
                            start=dt.datetime.fromisoformat(start),
                            end=dt.datetime.fromisoformat(end))
                for i, (start, end) in enumerate(manifest["plan"])]
        scheduler = EpochScheduler(plan, target=int(manifest["target_epochs"]),
                                   idle_seconds=float(
                                       manifest.get("idle_seconds", 0.0)))
        telemetry = (telemetry_factory(world) if telemetry_factory is not None
                     else None)
        session = cls(world, scheduler=scheduler,
                      fault_plan=fault_plan, execution=execution,
                      telemetry=telemetry, stream_dir=stream_dir,
                      crash_at=crash_at, crash_epoch=crash_epoch,
                      cli=manifest.get("cli") or {})
        if manifest.get("state_file"):
            payload = read_pickle(
                stream_dir / manifest["state_file"],
                expected_sha256=manifest.get("state_sha256", ""),
            )
            session.state = StreamState.from_payload(payload)
            if session.cache is not None:
                session._cache_seeded = session.cache.seed(
                    payload.get("cache_entries", ()))
            session._restore_registry_state(
                payload.get("registry_state", {}))
        session.watermarks = WatermarkStore.from_dict(
            manifest.get("watermarks", {}))
        session.ledger = DedupLedger.from_dict(manifest.get("ledger", {}))
        return session

    def _restore_registry_state(self, state: Dict[str, Dict[str, Any]]) -> None:
        """Put the last commit's clock/meter/breaker state back.

        ``proxy:`` keys are dropped: fault proxies are per-epoch objects
        whose call counters start at zero each epoch, exactly as they do
        in an uninterrupted in-process session.
        """
        meters = self.services.meters()
        for key, value in state.items():
            if key == CLOCK_KEY:
                self.world.clock.restore_state(value)
            elif key.startswith(METER_PREFIX):
                meters[key[len(METER_PREFIX):]].restore_state(value)
            elif key.startswith(FORUM_METER_PREFIX):
                forum = Forum(key[len(FORUM_METER_PREFIX):])
                self.world.forums[forum].meter.restore_state(value)
            elif key.startswith(BREAKER_PREFIX):
                name = key[len(BREAKER_PREFIX):]
                breaker = CircuitBreaker(
                    name, self.world.clock,
                    observer=self.telemetry.breaker_hook(),
                )
                breaker.restore_state(value)
                self.breakers[name] = breaker
            elif key.startswith(PROXY_PREFIX):
                continue
            else:
                raise CheckpointError(
                    f"stream state carries unknown registry key {key!r}")

    # -- the epoch loop -------------------------------------------------------

    def run(self) -> StreamState:
        """Run every pending epoch up to the scheduler's target."""
        meters = ([f.meter for f in self.world.forums.values()]
                  + list(self.services.meters().values()))
        try:
            with self._engine, _observed_meters(self.telemetry, meters):
                for epoch in self.scheduler.pending(
                        self.state.committed_epochs):
                    if epoch.index > 0 and self.scheduler.idle_seconds:
                        self.world.clock.advance(self.scheduler.idle_seconds)
                    self._run_epoch(epoch)
        finally:
            self._finalise_telemetry()
        return self.state

    def ingest(self, epochs: int = 1) -> StreamState:
        """Run ``epochs`` additional epochs beyond the current target.

        The raised target is persisted *before* the new epoch starts, so
        a crash mid-ingest resumes into the new epoch rather than
        concluding there is nothing left to do.
        """
        if self.state.committed_epochs < self.scheduler.target:
            raise ConfigurationError(
                f"cannot ingest: {self.scheduler.target - self.state.committed_epochs} "
                f"planned epoch(s) still pending — run `repro resume` first"
            )
        self.scheduler.extend(epochs)
        if self.stream_dir is not None:
            self._persist_manifest(state_ref=self._last_state_ref)
        return self.run()

    def _run_epoch(self, epoch: EpochWindow) -> None:
        config = self._epoch_config(epoch)
        plan = self._plan_for_epoch(epoch)
        services, forums = self.services, self.world.forums
        if plan is not None and not plan.is_empty:
            services, forums = inject_faults(self.services, self.world.forums,
                                             plan, clock=self.world.clock)
        checkpoint = self._open_epoch_checkpoint(epoch)
        enricher = Enricher(
            services, self.telemetry,
            retry_policy=RetryPolicy(seed=self.world.config.seed),
            breakers=self.breakers,
            cache=self.cache,
            pool=self._engine.enrichment_pool(),
            journal=checkpoint.enrichment_journal(),
            known_senders=set(self.state.senders),
            known_urls=set(self.state.urls),
        )
        registry = build_state_registry(self.world, services, forums,
                                        enricher)
        charged_before = self._charged_now()
        try:
            if checkpoint.active:
                checkpoint.bind(registry=registry, scenario=self.world.config,
                                config=config, fault_plan=plan,
                                policy=self.policy)
                # The epoch-start barrier pins the pre-epoch cumulative
                # state (clock, meters, breakers); resuming this epoch
                # restores it before replaying anything.
                if checkpoint.restore_stage("epoch-start") is None:
                    checkpoint.stage_barrier("epoch-start",
                                             {"epoch": epoch.index})
            with self.telemetry.tracer.span(
                "stream/epoch", epoch=epoch.index, window=epoch.label,
            ) as span:
                collection = checkpoint.restore_stage("collection")
                if collection is None:
                    collection = collect_all(
                        forums, config, self.telemetry,
                        pool=self._engine.collection_pool(
                            plan, [f.value for f in forums]),
                    )
                    checkpoint.stage_barrier("collection", collection)
                filtered = self.watermarks.filter_epoch(collection, epoch)
                restored = checkpoint.restore_stage("curation")
                if restored is None:
                    vision = OpenAiVisionExtractor(
                        derive(self.world.config.seed, "pipeline-vision"),
                        miss_rate=config.vision_miss_rate,
                        stable_seed=self.world.config.seed,
                    )
                    curator = Curator(
                        vision, self.telemetry,
                        record_id_start=self.state.next_record_index)
                    dataset = curator.curate(filtered.result.reports)
                    curation_stats = curator.stats
                    next_index = curator.record_counter
                    checkpoint.stage_barrier(
                        "curation", (dataset, curation_stats, next_index))
                else:
                    dataset, curation_stats, next_index = restored
                division = self.ledger.divide(dataset)
                delta = SmishingDataset(division.delta)
                cache_reuse = self._cache_reuse(delta)
                checkpoint.begin_enrichment()
                enriched = enricher.run(delta)
                span.set(reports=len(filtered.result.reports),
                         records=len(dataset), deduped=len(division.duplicate_of),
                         gaps=len(enriched.gaps))
            checkpoint.complete()
            self._commit_epoch(
                epoch=epoch, collection=collection, filtered=filtered,
                dataset=dataset, curation_stats=curation_stats,
                next_index=next_index, division=division, enriched=enriched,
                registry=registry, cache_reuse=cache_reuse,
                charged_before=charged_before,
            )
        finally:
            if checkpoint.active:
                self._accumulate_checkpoint(checkpoint.stats())
            checkpoint.close()

    def _commit_epoch(self, *, epoch, collection, filtered, dataset,
                      curation_stats, next_index, division, enriched,
                      registry, cache_reuse, charged_before) -> None:
        """Fold one finished epoch into the state and make it durable."""
        kept = filtered.result
        kept.limitations = [replace(l, epoch=epoch.index)
                            for l in kept.limitations]
        enriched.gaps = [replace(g, epoch=epoch.index)
                         for g in enriched.gaps]
        curation_stats.quarantines = stamp_epoch(
            curation_stats.quarantines, epoch.index)
        annotations = dict(enriched.annotations)
        raw = dict(enriched.raw_annotations)
        # Duplicates inherit their canonical twin's annotation, rebound
        # to their own record id — byte-for-byte what the annotation
        # service itself does for a repeated text (it echoes the id and
        # is otherwise pure in the text).
        lookup = {**self.state.raw_annotations, **raw}
        for dup_id, canon_id in division.duplicate_of.items():
            canonical = lookup.get(canon_id)
            if canonical is None:  # canonical's annotation gapped
                continue
            rebound = dataclasses.replace(canonical, message_id=dup_id)
            raw[dup_id] = rebound
            annotations[dup_id] = rebound.labels
        charged_after = self._charged_now()
        stats = EpochStats(
            index=epoch.index,
            window=epoch.label,
            start=epoch.start.isoformat(),
            end=epoch.end.isoformat(),
            posts_seen=collection.posts_seen,
            collected=len(collection.reports),
            new_reports=len(kept.reports),
            seen_dropped=filtered.seen_dropped,
            deferred=filtered.deferred,
            records=len(dataset),
            quarantined=curation_stats.quarantined,
            deduped=len(division.duplicate_of),
            delta_records=len(division.delta),
            gaps=len(enriched.gaps),
            limitations=len(kept.limitations),
            cache_reuse=cache_reuse,
            ledger_hits=len(division.duplicate_of),
            ledger_misses=len(division.delta),
            charged={name: charged_after[name] - charged_before.get(name, 0)
                     for name in charged_after},
        )
        self.state.merge_epoch(
            stats=stats, collection=kept, dataset=dataset,
            curation_stats=curation_stats, enriched=enriched,
            annotations=annotations, raw_annotations=raw,
            next_record_index=next_index,
        )
        self.watermarks.commit(filtered, epoch)
        self.ledger.commit(division.new_hashes)
        if self.stream_dir is not None:
            self._persist(registry)

    # -- per-epoch helpers ----------------------------------------------------

    def _epoch_config(self, epoch: EpochWindow) -> PipelineConfig:
        return replace(self.config,
                       windows=clamp_windows(self.config.windows,
                                             epoch.start, epoch.end))

    def _plan_for_epoch(self, epoch: EpochWindow) -> Optional[FaultPlan]:
        plan = self._survivable
        if self._crash_at is not None and epoch.index == self._crash_epoch:
            service, at_call = self._crash_at
            base = plan if plan is not None else FaultPlan(
                seed=self.world.config.seed)
            plan = base.extended(CrashPoint(service, at_call))
        return plan

    def _open_epoch_checkpoint(self, epoch: EpochWindow):
        if self.stream_dir is None:
            return NULL_CHECKPOINT
        epoch_dir = self.stream_dir / "epochs" / f"epoch-{epoch.index:04d}"
        if (epoch_dir / MANIFEST_NAME).is_file():
            return CheckpointSession.resume(epoch_dir)
        if epoch_dir.exists():
            # A directory without a manifest died before its first
            # barrier; nothing in it is durable, so start clean.
            shutil.rmtree(epoch_dir)
        epoch_dir.mkdir(parents=True, exist_ok=True)
        return CheckpointSession.record(epoch_dir)

    def _charged_now(self) -> Dict[str, int]:
        return {name: int(meter.snapshot()["used"])
                for name, meter in self.services.meters().items()}

    def _cache_reuse(self, delta: SmishingDataset) -> int:
        """Delta subjects already answered by a prior epoch's entries."""
        if self.cache is None:
            return 0
        texts = {record.text for record in delta}
        urls = {str(record.url) for record in delta if record.url}
        return (
            sum(1 for text in texts
                if self.cache.peek("openai", text) is not None)
            + sum(1 for url in urls
                  if self.cache.peek("virustotal", url) is not None)
        )

    def _accumulate_checkpoint(self, stats: Dict[str, Any]) -> None:
        totals = self._checkpoint_totals
        if not totals:
            totals.update({"mode": stats["mode"], "stages_restored": [],
                           "barriers_written": 0, "lookups_replayed": 0,
                           "lookups_recorded": 0, "journal_writes": 0,
                           "journal_recovered": False})
        totals["mode"] = stats["mode"]
        totals["stages_restored"].extend(stats["stages_restored"])
        for key in ("barriers_written", "lookups_replayed",
                    "lookups_recorded", "journal_writes"):
            totals[key] += stats[key]
        totals["journal_recovered"] = (totals["journal_recovered"]
                                       or stats["journal_recovered"])

    # -- persistence ----------------------------------------------------------

    @property
    def _last_state_ref(self) -> Optional[Dict[str, str]]:
        if self.stream_dir is None:
            return None
        manifest_path = self.stream_dir / STREAM_MANIFEST_NAME
        if not manifest_path.is_file():
            return None
        manifest = read_json(manifest_path)
        if not manifest.get("state_file"):
            return None
        return {"state_file": manifest["state_file"],
                "state_sha256": manifest.get("state_sha256", "")}

    def _persist(self, registry) -> None:
        registry_state = {key: value
                          for key, value in registry.capture().items()
                          if not key.startswith(PROXY_PREFIX)}
        payload = self.state.to_payload()
        payload["cache_entries"] = (self.cache.export_entries()
                                    if self.cache is not None else ())
        payload["registry_state"] = registry_state
        digest = atomic_write_pickle(self.stream_dir / STREAM_STATE_NAME,
                                     payload)
        self._persist_manifest(state_ref={"state_file": STREAM_STATE_NAME,
                                          "state_sha256": digest})

    def _persist_manifest(self, *, state_ref: Optional[Dict[str, str]]) -> None:
        faults = {"profile": (self._survivable.profile
                              if self._survivable is not None else None),
                  "seed": (self._survivable.seed
                           if self._survivable is not None
                           else self.world.config.seed)}
        manifest: Dict[str, Any] = {
            "version": STREAM_FORMAT_VERSION,
            "scenario": _scenario_to_dict(self.world.config),
            "faults": faults,
            "execution": {"workers": self.policy.workers,
                          "cache": self.policy.cache,
                          "cache_max_entries": self.policy.cache_max_entries},
            "plan": [[w.start.isoformat(), w.end.isoformat()]
                     for w in self.scheduler.plan],
            "idle_seconds": self.scheduler.idle_seconds,
            "target_epochs": self.scheduler.target,
            "committed": self.state.committed_epochs,
            "next_record_index": self.state.next_record_index,
            "watermarks": self.watermarks.to_dict(),
            "ledger": self.ledger.to_dict(),
            "epoch_stats": [stats.to_dict()
                            for stats in self.state.epoch_stats],
            "state_file": state_ref["state_file"] if state_ref else None,
            "state_sha256": state_ref["state_sha256"] if state_ref else None,
            "cli": self._cli,
        }
        atomic_write_json(self.stream_dir / STREAM_MANIFEST_NAME, manifest)

    # -- reporting ------------------------------------------------------------

    @property
    def fault_profile(self) -> str:
        """The named chaos profile this session runs under."""
        if self._survivable is None or self._survivable.is_empty:
            return "none"
        return self._survivable.profile or "custom"

    def stats(self) -> Dict[str, Any]:
        return self.state.stats(
            target_epochs=self.scheduler.target,
            ledger_stats=self.ledger.stats(),
            watermark_stats=self.watermarks.stats(),
            cache_seeded=self._cache_seeded,
        )

    def _finalise_telemetry(self) -> None:
        self.telemetry.tracer.abandon_open()
        for breaker in self.breakers.values():
            self.telemetry.capture_breaker(breaker)
        if self.cache is not None:
            self.telemetry.capture_cache(self.cache)
        if self._checkpoint_totals:
            self.telemetry.capture_checkpoint(dict(self._checkpoint_totals))
        self.telemetry.capture_exec(self._engine.stats())
        self.telemetry.capture_stream(self.stats())

    def as_pipeline_run(self):
        """The merged state viewed as a batch-style run (for reports)."""
        return self.state.as_pipeline_run(self.world, self.config,
                                          self.telemetry)
