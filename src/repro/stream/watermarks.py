"""Per-forum ingest watermarks: how epoch N pages forward from N−1.

Each forum keeps a :class:`ForumCursor` — the highest ``posted_at`` it
has durably ingested, the post id that carried it, and a running ingest
count — plus the set of post ids already consumed. Most forums never
need the seen sets (their searches are half-open in ``posted_at``, so
the epoch plan's window clamp already partitions them exactly), but two
sources re-surface old material every visit: Smishing.eu scrapes are
cumulative (every Monday returns *all* posts to date) and the Pastebin
listing is unwindowed. For those, the watermark is what turns a
re-sighting into a no-op instead of a duplicate record.

The store follows the same two-phase discipline as the dedup ledger:
:meth:`filter_epoch` is a pure query that partitions a collection into
fresh/seen/deferred, and :meth:`commit` adopts the fresh posts only once
their epoch is durable. Deferral handles the unwindowed sources' *other*
direction: a paste dated after the epoch's end is left for the epoch
whose window actually covers it, so per-epoch merges remain exactly the
batch multiset.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..core.collection import CollectionResult, RawReport
from ..types import Forum
from .epochs import EpochWindow


@dataclass
class ForumCursor:
    """One forum's high-water mark."""

    last_post_at: Optional[dt.datetime] = None
    last_post_id: str = ""
    ingested: int = 0

    def advance(self, report: RawReport) -> None:
        self.ingested += 1
        if self.last_post_at is None or report.posted_at >= self.last_post_at:
            self.last_post_at = report.posted_at
            self.last_post_id = report.post_id

    def to_dict(self) -> Dict[str, object]:
        return {
            "last_post_at": (self.last_post_at.isoformat()
                             if self.last_post_at else None),
            "last_post_id": self.last_post_id,
            "ingested": self.ingested,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ForumCursor":
        raw = payload.get("last_post_at")
        return cls(
            last_post_at=(dt.datetime.fromisoformat(str(raw)) if raw
                          else None),
            last_post_id=str(payload.get("last_post_id", "")),
            ingested=int(payload.get("ingested", 0)),
        )


@dataclass
class EpochFilter:
    """The outcome of one epoch's pure watermark query."""

    #: The epoch's fresh reports, in collection order, ready to curate.
    result: CollectionResult
    #: Post ids per forum to mark seen at commit time.
    fresh_ids: Dict[Forum, List[str]]
    #: Re-sightings of already-ingested posts (dropped).
    seen_dropped: int = 0
    #: Posts dated at/after the epoch's end (left for a later epoch).
    deferred: int = 0


class WatermarkStore:
    """Durable per-forum cursors + seen-id sets + the global frontier."""

    def __init__(self):
        self.cursors: Dict[Forum, ForumCursor] = {
            forum: ForumCursor() for forum in Forum
        }
        self._seen: Dict[Forum, Set[str]] = {forum: set() for forum in Forum}
        #: End of the last committed epoch (None before the first).
        self.frontier: Optional[dt.datetime] = None

    def seen(self, forum: Forum, post_id: str) -> bool:
        return post_id in self._seen[forum]

    def seen_count(self, forum: Forum) -> int:
        return len(self._seen[forum])

    # -- the two-phase protocol -----------------------------------------------

    def filter_epoch(self, collection: CollectionResult,
                     epoch: EpochWindow) -> EpochFilter:
        """Partition a collection into fresh / already-seen / deferred.

        Pure: the store is not mutated. A report survives when its post
        id is unseen *and* it is dated before the epoch's end. Posts
        dated before the epoch's *start* are kept — the cumulative
        sources legitimately deliver backlog material there, and windowed
        sources never produce any. Bookkeeping fields (``posts_seen``,
        ``api_errors``, ``limitations``) pass through untouched; they
        describe what collection *did*, not what curation keeps.
        """
        kept = CollectionResult(
            posts_seen=collection.posts_seen,
            api_errors=list(collection.api_errors),
            limitations=list(collection.limitations),
        )
        fresh_ids: Dict[Forum, List[str]] = {forum: [] for forum in Forum}
        filtered = EpochFilter(result=kept, fresh_ids=fresh_ids)
        pending: Dict[Forum, Set[str]] = {forum: set() for forum in Forum}
        for report in collection.reports:
            if (report.post_id in self._seen[report.forum]
                    or report.post_id in pending[report.forum]):
                filtered.seen_dropped += 1
                continue
            if report.posted_at >= epoch.end:
                filtered.deferred += 1
                continue
            pending[report.forum].add(report.post_id)
            fresh_ids[report.forum].append(report.post_id)
            kept.reports.append(report)
        return filtered

    def commit(self, filtered: EpochFilter, epoch: EpochWindow) -> None:
        """Adopt an epoch's fresh posts and advance the frontier."""
        by_forum: Dict[Forum, List[RawReport]] = {}
        for report in filtered.result.reports:
            by_forum.setdefault(report.forum, []).append(report)
        for forum, reports in by_forum.items():
            cursor = self.cursors[forum]
            seen = self._seen[forum]
            for report in reports:
                seen.add(report.post_id)
                cursor.advance(report)
        if self.frontier is None or epoch.end > self.frontier:
            self.frontier = epoch.end

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "frontier": self.frontier.isoformat() if self.frontier else None,
            "forums": {
                forum.value: {
                    "cursor": self.cursors[forum].to_dict(),
                    "seen": sorted(self._seen[forum]),
                }
                for forum in Forum
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WatermarkStore":
        store = cls()
        raw = payload.get("frontier")
        store.frontier = (dt.datetime.fromisoformat(str(raw)) if raw
                          else None)
        forums = payload.get("forums", {})
        for forum in Forum:
            entry = forums.get(forum.value)
            if not entry:
                continue
            store.cursors[forum] = ForumCursor.from_dict(entry["cursor"])
            store._seen[forum] = set(entry.get("seen", []))
        return store

    def stats(self) -> Dict[str, object]:
        return {
            "frontier": self.frontier.isoformat() if self.frontier else None,
            "forums": {forum.value: self.cursors[forum].to_dict()
                       for forum in Forum},
        }
