"""Crash-safe file writes for the stream layer's durable artefacts.

Every stream artefact — the ``STREAM.json`` session manifest, the
watermark/ledger JSON, the pickled merged state — is written with the
same discipline the run journal uses: write to a temp file in the same
directory, ``fsync`` the file, atomically rename over the target, then
``fsync`` the directory so the rename itself is durable. A crash at any
instant leaves either the old artefact or the new one, never a torn
mixture.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def atomic_write_json(path: Path, payload: Any) -> None:
    """Durably replace ``path`` with ``payload`` rendered as JSON."""
    rendered = json.dumps(payload, indent=2, sort_keys=True, default=str)
    _atomic_write_bytes(Path(path), rendered.encode("utf-8"))


def atomic_write_pickle(path: Path, payload: Any) -> str:
    """Durably replace ``path`` with pickled ``payload``.

    Returns the payload's SHA-256 hex digest so the caller can bind the
    pickle to its manifest (a half-written or swapped state file is
    detected at load time, not silently trusted).
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    _atomic_write_bytes(Path(path), blob)
    return hashlib.sha256(blob).hexdigest()


def read_json(path: Path) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def read_pickle(path: Path, *, expected_sha256: str = "") -> Any:
    """Load a pickled artefact, verifying its digest when one is given."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if expected_sha256:
        digest = hashlib.sha256(blob).hexdigest()
        if digest != expected_sha256:
            from ..errors import CheckpointError

            raise CheckpointError(
                f"stream state file {path} does not match its manifest "
                f"digest (expected {expected_sha256[:12]}…, got "
                f"{digest[:12]}…); the stream directory is corrupt"
            )
    return pickle.loads(blob)
