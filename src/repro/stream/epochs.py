"""Epoch planning: slicing the collection timeline into ingest windows.

A *stream plan* partitions the pipeline's global collection window — the
span from the earliest forum window start to the latest forum window end
— into half-open epochs ``[start, end)``. Because every collector's
search is itself half-open in ``posted_at`` (see
:mod:`repro.core.collection`), the union of the per-epoch collections is
exactly the batch collection: no post straddles an epoch boundary and no
boundary post is fetched twice.

:func:`clamp_windows` intersects the full :class:`CollectionWindows`
with one epoch. The clamp must preserve each window's internal ordering
invariants (historical ≤ realtime ≤ end, start ≤ end) so the collectors'
emptiness guards — not special cases here — decide which sources a given
epoch touches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import datetime, timedelta
from typing import List, Optional, Tuple

from ..core.config import CollectionWindows
from ..errors import ConfigurationError


def global_window(windows: CollectionWindows) -> Tuple[datetime, datetime]:
    """The full span covered by every forum window, as ``[start, end)``."""
    start = min(windows.twitter_historical_start, windows.reddit_start,
                windows.smishing_eu_backlog_start, windows.smishtank_start)
    end = max(windows.twitter_end, windows.reddit_end,
              windows.smishing_eu_end, windows.smishtank_end)
    return start, end


@dataclass(frozen=True)
class EpochWindow:
    """One half-open ingest window ``[start, end)``."""

    index: int
    start: datetime
    end: datetime

    @property
    def label(self) -> str:
        return f"{self.start:%Y-%m-%d}..{self.end:%Y-%m-%d}"

    def __str__(self) -> str:  # pragma: no cover - display sugar
        return self.label


def clamp_windows(windows: CollectionWindows, start: datetime,
                  end: datetime) -> CollectionWindows:
    """``windows`` intersected with ``[start, end)``.

    Collapsed (empty) windows come out with ``window_start ==
    window_end`` so the collectors' half-open searches fetch nothing;
    ordering invariants between twitter's three cursors are preserved by
    clamping each against its predecessor. ``smishing_eu_backlog_start``
    passes through unchanged: it marks where the forum's backlog begins,
    not when we scrape, and the weekly scrape dates are what the clamp
    partitions.
    """
    hs = min(max(windows.twitter_historical_start, start), end)
    rs = max(min(max(windows.twitter_realtime_start, start), end), hs)
    te = max(min(windows.twitter_end, end), rs)
    reddit_s = min(max(windows.reddit_start, start), end)
    reddit_e = max(min(windows.reddit_end, end), reddit_s)
    seu_s = min(max(windows.smishing_eu_scrape_start, start), end)
    seu_e = max(min(windows.smishing_eu_end, end), seu_s)
    st_s = min(max(windows.smishtank_start, start), end)
    st_e = max(min(windows.smishtank_end, end), st_s)
    return replace(
        windows,
        twitter_historical_start=hs,
        twitter_realtime_start=rs,
        twitter_end=te,
        reddit_start=reddit_s,
        reddit_end=reddit_e,
        smishing_eu_scrape_start=seu_s,
        smishing_eu_end=seu_e,
        smishtank_start=st_s,
        smishtank_end=st_e,
    )


def plan_epochs(windows: CollectionWindows, *, epochs: Optional[int] = None,
                epoch_hours: Optional[float] = None) -> List[EpochWindow]:
    """Partition the global window into epochs.

    Exactly one sizing knob applies: ``epoch_hours`` slices fixed-width
    windows from the global start (the last epoch absorbs the remainder),
    while ``epochs`` divides the span into that many equal windows. The
    returned list always covers the global window exactly — first start
    and last end are the global bounds, and consecutive windows share
    their boundary instant.
    """
    start, end = global_window(windows)
    if end <= start:
        raise ConfigurationError("collection windows span no time at all")
    plan: List[EpochWindow] = []
    if epoch_hours is not None:
        if epoch_hours <= 0:
            raise ConfigurationError("--epoch-hours must be positive")
        step = timedelta(hours=epoch_hours)
        cursor = start
        while cursor < end:
            upper = min(cursor + step, end)
            plan.append(EpochWindow(index=len(plan), start=cursor, end=upper))
            cursor = upper
        return plan
    if epochs is None or epochs < 1:
        raise ConfigurationError("an epoch plan needs --epochs >= 1 or "
                                 "--epoch-hours")
    span = end - start
    bounds = [start + span * i / epochs for i in range(epochs)] + [end]
    for index in range(epochs):
        plan.append(EpochWindow(index=index, start=bounds[index],
                                end=bounds[index + 1]))
    return plan


class EpochScheduler:
    """Drives a stream session through its planned epoch windows.

    The scheduler owns the plan (the full partition of the global
    window) and the *target* — how many of those epochs the session
    intends to run. ``repro watch --epochs N`` sets the target to N;
    ``repro ingest`` raises it one epoch at a time, paging forward from
    the committed high-water mark. The scheduler also carries the one
    clock policy the stream layer has: ``idle_seconds`` of simulated
    time elapse between epochs (default 0.0, which keeps an N-epoch run
    byte-comparable with a single batch run).
    """

    def __init__(self, plan: List[EpochWindow], *, target: int,
                 idle_seconds: float = 0.0):
        if not plan:
            raise ConfigurationError("epoch plan is empty")
        if not 1 <= target <= len(plan):
            raise ConfigurationError(
                f"target of {target} epochs does not fit a plan of "
                f"{len(plan)} windows")
        if idle_seconds < 0:
            raise ConfigurationError("idle_seconds must be >= 0")
        self.plan = list(plan)
        self.target = target
        self.idle_seconds = idle_seconds

    @property
    def capacity(self) -> int:
        """How many epochs the plan can ever serve."""
        return len(self.plan)

    def pending(self, committed: int) -> List[EpochWindow]:
        """The epochs still to run, given ``committed`` are durable."""
        return self.plan[committed:self.target]

    def extend(self, epochs: int = 1) -> int:
        """Raise the target by ``epochs`` (for ``repro ingest``)."""
        if self.target + epochs > len(self.plan):
            raise ConfigurationError(
                f"epoch plan exhausted: {len(self.plan)} windows planned, "
                f"{self.target} already targeted — replan with smaller "
                f"--epoch-hours to ingest further")
        self.target += epochs
        return self.target
