"""Continuous incremental ingestion (``repro watch`` / ``repro ingest``).

The batch pipeline answers "what did the full collection window hold?";
this package answers it *incrementally*: a :class:`StreamSession` pages
the same simulated forums epoch by epoch, deduplicates across epochs
with per-forum watermarks and a durable content-hash ledger, enriches
only each epoch's delta, and merges everything into a growing
:class:`StreamState` whose final contents are provably equivalent to a
single full-window batch run (``tests/test_stream_equivalence.py``) at
a fraction of the charged service calls.
"""

from .epochs import (
    EpochScheduler,
    EpochWindow,
    clamp_windows,
    global_window,
    plan_epochs,
)
from .ledger import DedupDivision, DedupLedger, content_hash
from .runner import (
    STREAM_MANIFEST_NAME,
    STREAM_STATE_NAME,
    StreamSession,
)
from .state import EpochStats, StreamState
from .watermarks import ForumCursor, WatermarkStore

__all__ = [
    "DedupDivision",
    "DedupLedger",
    "EpochScheduler",
    "EpochStats",
    "EpochWindow",
    "ForumCursor",
    "STREAM_MANIFEST_NAME",
    "STREAM_STATE_NAME",
    "StreamSession",
    "StreamState",
    "WatermarkStore",
    "clamp_windows",
    "content_hash",
    "global_window",
    "plan_epochs",
]
