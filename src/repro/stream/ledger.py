"""Cross-run content dedup: the durable ledger of curated messages.

Public user reports repeat themselves: the same scam text gets posted to
multiple forums, re-posted weeks later, quoted by other users. The batch
pipeline tolerates this (duplicate records flow through enrichment and
are collapsed downstream by the memo cache), but a *continuous* ingester
would pay the annotation charge for every re-sighting across every
epoch. The :class:`DedupLedger` stops that at the curation boundary: a
curated record whose *content hash* — normalised SMS text + normalised
sender + canonical URL — matches a prior sighting is dropped from the
enrichment delta and instead inherits its canonical twin's annotation.

The ledger is two-phase on purpose. :meth:`divide` is a pure query —
given an epoch's curated records it partitions them into the enrichment
delta and the duplicates, *without* mutating the ledger — and
:meth:`commit` applies the epoch's new hashes only once the epoch is
durably committed. A crash mid-epoch therefore replays against exactly
the ledger state the first attempt saw.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..core.dataset import SmishingRecord, normalise_message_key


def content_hash(record: SmishingRecord) -> str:
    """The curation-stage identity of one record's *content*.

    Normalised text (casefolded, whitespace-collapsed), normalised
    sender id, and canonical URL — the three fields enrichment actually
    keys on. Forum, post id, and timestamps are deliberately excluded:
    the whole point is to recognise the same message re-posted elsewhere
    or later.
    """
    sender = record.sender.normalized if record.sender else ""
    url = str(record.url) if record.url else ""
    basis = "\x1f".join((normalise_message_key(record.text), sender or "",
                         url))
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


@dataclass
class DedupDivision:
    """The outcome of one epoch's pure dedup query."""

    #: Records that need enrichment (first sighting of their content).
    delta: List[SmishingRecord]
    #: duplicate record id -> canonical record id whose annotation it
    #: inherits. Canonicals from *this* epoch appear here too (within-
    #: epoch re-posts dedup exactly like cross-epoch ones).
    duplicate_of: Dict[str, str]
    #: content hash -> canonical record id, for the commit phase.
    new_hashes: Dict[str, str]


class DedupLedger:
    """Durable map of content hash → canonical record id."""

    def __init__(self):
        self._entries: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def canonical_id(self, digest: str) -> str:
        return self._entries[digest]

    # -- the two-phase dedup protocol -----------------------------------------

    def divide(self, records: Iterable[SmishingRecord]) -> DedupDivision:
        """Partition an epoch's records into delta and duplicates.

        Pure with respect to the ledger's entries: only the hit/miss
        counters move (they describe queries, not state). Within the
        epoch the *first* record of a given hash is canonical and later
        ones point at it, so the division is stable under replay.
        """
        delta: List[SmishingRecord] = []
        duplicate_of: Dict[str, str] = {}
        new_hashes: Dict[str, str] = {}
        for record in records:
            digest = content_hash(record)
            prior = self._entries.get(digest)
            if prior is None:
                prior = new_hashes.get(digest)
            if prior is not None:
                self.hits += 1
                duplicate_of[record.record_id] = prior
                continue
            self.misses += 1
            new_hashes[digest] = record.record_id
            delta.append(record)
        return DedupDivision(delta=delta, duplicate_of=duplicate_of,
                             new_hashes=new_hashes)

    def commit(self, new_hashes: Dict[str, str]) -> None:
        """Adopt an epoch's first-sighting hashes as durable entries."""
        self._entries.update(new_hashes)

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "entries": dict(sorted(self._entries.items())),
            "hits": self.hits,
            "misses": self.misses,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DedupLedger":
        ledger = cls()
        ledger._entries = dict(payload.get("entries", {}))
        ledger.hits = int(payload.get("hits", 0))
        ledger.misses = int(payload.get("misses", 0))
        return ledger

    def stats(self) -> Dict[str, object]:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }
