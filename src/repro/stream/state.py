"""The growing product of a stream session: merged epochs + accounting.

A :class:`StreamState` is what N committed epochs add up to — the merged
collection, the merged curated dataset (duplicates included, pointing at
their canonical twins' annotations), the merged enrichment maps, and one
:class:`EpochStats` per committed epoch. The state is the thing
``repro.stream`` persists between runs and the thing the analysis
surfaces consume: :meth:`as_pipeline_run` wraps it in an ordinary
:class:`~repro.core.pipeline.PipelineRun` so every table, report, and
stats view works on a stream exactly as it does on a batch run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..core.collection import CollectionResult
from ..core.config import PipelineConfig
from ..core.curation import CurationStats
from ..core.dataset import SmishingDataset, SmishingRecord
from ..core.enrichment import EnrichedDataset
from ..core.pipeline import PipelineRun
from ..obs import NULL_TELEMETRY, Telemetry
from ..world.scenario import World


@dataclass
class EpochStats:
    """What one committed epoch contributed, and what it cost."""

    index: int
    window: str
    start: str
    end: str
    #: Raw collection volume (pages walked), before any filtering.
    posts_seen: int = 0
    collected: int = 0
    #: Reports surviving the watermark filter (first sightings).
    new_reports: int = 0
    seen_dropped: int = 0
    deferred: int = 0
    #: Curated records, including content duplicates.
    records: int = 0
    #: Reports the sanitizer diverted this epoch (hostile input).
    quarantined: int = 0
    #: Records dropped from the enrichment delta by the dedup ledger.
    deduped: int = 0
    delta_records: int = 0
    gaps: int = 0
    limitations: int = 0
    #: Delta-enrichment reuse: curation-stage subjects already answered
    #: by a prior epoch's cache entries.
    cache_reuse: int = 0
    ledger_hits: int = 0
    ledger_misses: int = 0
    #: Per-service charged calls this epoch (meter deltas).
    charged: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EpochStats":
        return cls(**payload)


@dataclass
class StreamState:
    """Everything N committed epochs produced, merged."""

    collection: CollectionResult = field(default_factory=CollectionResult)
    dataset: SmishingDataset = field(default_factory=SmishingDataset)
    urls: Dict[str, Any] = field(default_factory=dict)
    senders: Dict[str, Any] = field(default_factory=dict)
    annotations: Dict[str, Any] = field(default_factory=dict)
    raw_annotations: Dict[str, Any] = field(default_factory=dict)
    gaps: List[Any] = field(default_factory=list)
    curation_stats: CurationStats = field(default_factory=CurationStats)
    #: Next free curation record index — epoch N+1's ``Curator`` starts
    #: numbering here so record ids stay unique across epochs.
    next_record_index: int = 0
    epoch_stats: List[EpochStats] = field(default_factory=list)

    @property
    def committed_epochs(self) -> int:
        return len(self.epoch_stats)

    def merge_epoch(
        self,
        *,
        stats: EpochStats,
        collection: CollectionResult,
        dataset: SmishingDataset,
        curation_stats: CurationStats,
        enriched: EnrichedDataset,
        annotations: Dict[str, Any],
        raw_annotations: Dict[str, Any],
        next_record_index: int,
    ) -> None:
        """Fold one completed epoch into the growing state.

        ``annotations``/``raw_annotations`` are the *full* epoch maps —
        delta records' fresh annotations plus duplicates' rebound copies
        — while ``enriched`` carries the delta's url/sender maps and
        gaps (already epoch-stamped by the runner). Every merge is
        additive: nothing committed by an earlier epoch is revisited.
        """
        self.collection.extend(collection)
        self.dataset.extend(dataset)
        self.urls.update(enriched.urls)
        self.senders.update(enriched.senders)
        self.annotations.update(annotations)
        self.raw_annotations.update(raw_annotations)
        self.gaps.extend(enriched.gaps)
        self.curation_stats.merge(curation_stats)
        self.next_record_index = next_record_index
        self.epoch_stats.append(stats)

    # -- analysis surfaces ----------------------------------------------------

    def as_enriched(self) -> EnrichedDataset:
        return EnrichedDataset(
            dataset=self.dataset,
            urls=dict(self.urls),
            senders=dict(self.senders),
            annotations=dict(self.annotations),
            raw_annotations=dict(self.raw_annotations),
            gaps=list(self.gaps),
        )

    def as_pipeline_run(self, world: World, config: PipelineConfig,
                        telemetry: Optional[Telemetry] = None) -> PipelineRun:
        """The merged state viewed as an ordinary pipeline run.

        This is the bridge to every batch-era surface: ``repro stats``
        tables, the paper report, dataset export — all take a
        :class:`PipelineRun` and none of them can tell (nor should they)
        that this one grew epoch by epoch.
        """
        return PipelineRun(
            world=world,
            config=config,
            collection=self.collection,
            curation_stats=self.curation_stats,
            dataset=self.dataset,
            enriched=self.as_enriched(),
            telemetry=telemetry if telemetry is not None else NULL_TELEMETRY,
        )

    def fingerprint(self) -> str:
        """SHA-256 of the merged, annotated dataset plus gap accounting.

        Stable across crash/resume of the same session (record ids and
        epoch stamps are deterministic), so two stream runs over the
        same plan can be compared by one hex line — which is exactly
        what the CI crash-drill does with ``repro watch`` output.
        """
        annotated = self.dataset.with_annotations(self.annotations)
        payload = {
            "rows": sorted(
                json.dumps(record.to_json_dict(), sort_keys=True,
                           default=str)
                for record in annotated
            ),
            "gaps": sorted(
                json.dumps(asdict(gap), sort_keys=True, default=str)
                for gap in self.gaps
            ),
            "limitations": sorted(
                json.dumps(asdict(lim), sort_keys=True, default=str)
                for lim in self.collection.limitations
            ),
        }
        rendered = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    # -- telemetry ------------------------------------------------------------

    def stats(self, *, target_epochs: Optional[int] = None,
              ledger_stats: Optional[Dict[str, Any]] = None,
              watermark_stats: Optional[Dict[str, Any]] = None,
              cache_seeded: int = 0) -> Dict[str, Any]:
        """The dict :meth:`repro.obs.Telemetry.capture_stream` consumes."""
        epochs = [stats.to_dict() for stats in self.epoch_stats]
        ledger = dict(ledger_stats or {})
        if not ledger:
            hits = sum(s.ledger_hits for s in self.epoch_stats)
            misses = sum(s.ledger_misses for s in self.epoch_stats)
            total = hits + misses
            ledger = {"entries": misses, "hits": hits, "misses": misses,
                      "hit_rate": hits / total if total else 0.0}
        return {
            "epochs_run": self.committed_epochs,
            "target_epochs": (target_epochs if target_epochs is not None
                              else self.committed_epochs),
            "records": len(self.dataset),
            "quarantined": self.curation_stats.quarantined,
            "epochs": epochs,
            "ledger": ledger,
            "watermarks": dict(watermark_stats or {}),
            "cache_reuse": sum(s.cache_reuse for s in self.epoch_stats),
            "cache_seeded": cache_seeded,
        }

    # -- persistence (heavyweight half; JSON half lives in STREAM.json) -------

    def to_payload(self) -> Dict[str, Any]:
        """The picklable payload for ``state.pkl``."""
        return {
            "collection": self.collection,
            "records": self.dataset.records,
            "urls": self.urls,
            "senders": self.senders,
            "annotations": self.annotations,
            "raw_annotations": self.raw_annotations,
            "gaps": self.gaps,
            "curation_stats": self.curation_stats,
            "next_record_index": self.next_record_index,
            "epoch_stats": [stats.to_dict() for stats in self.epoch_stats],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "StreamState":
        records: List[SmishingRecord] = list(payload["records"])
        return cls(
            collection=payload["collection"],
            dataset=SmishingDataset(records),
            urls=dict(payload["urls"]),
            senders=dict(payload["senders"]),
            annotations=dict(payload["annotations"]),
            raw_annotations=dict(payload["raw_annotations"]),
            gaps=list(payload["gaps"]),
            curation_stats=payload["curation_stats"],
            next_record_index=int(payload["next_record_index"]),
            epoch_stats=[EpochStats.from_dict(entry)
                         for entry in payload["epoch_stats"]],
        )
