"""Restorable run state: capture, diff, and restore as flat dicts.

Everything that mutates between two enrichment lookups — the sim clock,
service and forum meters, fault-proxy call counters, circuit breakers —
exposes ``state_dict()`` / ``restore_state()``. A :class:`StateRegistry`
aggregates them under stable string keys so the journal can write one
flat ``{key: state}`` mapping per barrier and a *changed-keys-only*
delta per lookup record, and a resume can put every piece back exactly.

Restores are silent by design: no observer fires, no telemetry counter
increments. The charges and transitions being restored already happened
(and were already counted) in the crashed run; the resumed run's
telemetry counts only the work *it* performs — which is exactly what
the zero-duplicate-charge acceptance check measures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import CheckpointError
from ..faults.proxy import FaultProxy

#: State keys use ``<kind>:<name>`` so a restore can route by prefix.
CLOCK_KEY = "clock"
METER_PREFIX = "meter:"
FORUM_METER_PREFIX = "forum-meter:"
PROXY_PREFIX = "proxy:"
BREAKER_PREFIX = "breaker:"


class StateRegistry:
    """Keyed capture/restore over every restorable object in one run.

    Breakers are special: :class:`~repro.core.enrichment.Enricher`
    creates them lazily per service, so they are registered as a pair of
    callables — ``live()`` returning the current ``{service: breaker}``
    dict (for capture) and ``provider(service)`` creating-or-returning
    one (for restore).
    """

    def __init__(self) -> None:
        self._objects: Dict[str, Any] = {}
        self._breaker_provider: Optional[Callable[[str], Any]] = None
        self._breakers_live: Optional[Callable[[], Dict[str, Any]]] = None

    def register(self, key: str, obj: Any) -> None:
        if not hasattr(obj, "state_dict") or not hasattr(obj, "restore_state"):
            raise CheckpointError(
                f"object for state key {key!r} is not restorable "
                f"(needs state_dict/restore_state): {obj!r}"
            )
        self._objects[key] = obj

    def register_breakers(self, provider: Callable[[str], Any],
                          live: Callable[[], Dict[str, Any]]) -> None:
        self._breaker_provider = provider
        self._breakers_live = live

    # -- capture / diff -------------------------------------------------------

    def capture(self) -> Dict[str, Dict[str, Any]]:
        state = {key: obj.state_dict()
                 for key, obj in self._objects.items()}
        if self._breakers_live is not None:
            for name, breaker in self._breakers_live().items():
                state[BREAKER_PREFIX + name] = breaker.state_dict()
        return state

    @staticmethod
    def diff(previous: Dict[str, Dict[str, Any]],
             current: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
        """The keys whose state changed between two captures."""
        return {key: value for key, value in current.items()
                if previous.get(key) != value}

    # -- restore --------------------------------------------------------------

    def restore(self, state: Dict[str, Dict[str, Any]]) -> None:
        for key, value in state.items():
            obj = self._objects.get(key)
            if obj is not None:
                obj.restore_state(value)
            elif key.startswith(BREAKER_PREFIX):
                if self._breaker_provider is None:
                    raise CheckpointError(
                        f"cannot restore {key!r}: no breaker provider "
                        f"registered"
                    )
                self._breaker_provider(
                    key[len(BREAKER_PREFIX):]).restore_state(value)
            elif key.startswith(PROXY_PREFIX):
                # A journaled proxy with no live counterpart: the crashed
                # run had a CrashPoint forcing a proxy onto a service the
                # resumed (crash-stripped) plan leaves unwrapped. The
                # counter only feeds call-indexed rules, and that service
                # has none left — dropping the key is exact, not lossy.
                continue
            else:
                raise CheckpointError(
                    f"journal carries state for unknown key {key!r}; "
                    f"the journal does not match this run"
                )


def build_state_registry(world, services, forums, enricher) -> StateRegistry:
    """Wire one run's restorable objects into a registry.

    ``services``/``forums`` must be the *post-fault-injection* containers
    the pipeline actually calls through, so proxy call counters are seen.
    """
    registry = StateRegistry()
    registry.register(CLOCK_KEY, world.clock)
    for name, meter in services.meters().items():
        registry.register(METER_PREFIX + name, meter)
    for forum, forum_service in forums.items():
        registry.register(FORUM_METER_PREFIX + forum.value,
                          forum_service.meter)
        if isinstance(forum_service, FaultProxy):
            registry.register(PROXY_PREFIX + forum.value, forum_service)
    for field_name in ("hlr", "whois", "crtsh", "passivedns", "ipinfo",
                       "virustotal", "gsb", "openai"):
        service_obj = getattr(services, field_name)
        if isinstance(service_obj, FaultProxy):
            registry.register(
                PROXY_PREFIX + service_obj.meter.service, service_obj)
    registry.register_breakers(enricher._breaker,
                               lambda: dict(enricher.breakers))
    return registry
