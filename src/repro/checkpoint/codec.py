"""Serialisation for the run journal: values, exceptions, fingerprints.

The journal stores three shapes of data and each gets the narrowest
codec that round-trips it exactly:

* **Lookup values** — arbitrary service results (records, scan reports,
  enums, dataclasses). Pickled and base64-wrapped so they embed in a
  JSONL record. Pickle is safe here because a journal is a local file
  the same code version wrote (the manifest's code fingerprint rejects
  anything else before a value is ever decoded).
* **Service exceptions** — stored *structurally* as ``(type, message,
  service, flags)`` records rather than pickled, so a journal remains
  greppable and a restored exception is rebuilt through the real
  :mod:`repro.errors` constructors (equivalent, not merely equal-ish).
* **Fingerprints** — SHA-256 over canonical JSON; used by the manifest
  to detect config drift between a crashed run and its resume.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from typing import Any, Dict

from .. import errors
from ..errors import (
    CheckpointError,
    CircuitOpen,
    RateLimitExceeded,
    ServiceError,
    ServiceUnavailable,
)

# -- canonical JSON + fingerprints --------------------------------------------


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, str() fallback
    for non-JSON leaves (dates, paths, enums)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# -- lookup values ------------------------------------------------------------


def encode_value(value: Any) -> Dict[str, str]:
    """A JSON-embeddable envelope for one lookup result."""
    raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return {"pickle": base64.b64encode(raw).decode("ascii")}


def decode_value(envelope: Dict[str, str]) -> Any:
    try:
        raw = base64.b64decode(envelope["pickle"])
        return pickle.loads(raw)
    except (KeyError, TypeError, ValueError, pickle.UnpicklingError) as exc:
        raise CheckpointError(f"journal value cannot be decoded: {exc}")


# -- service exceptions -------------------------------------------------------


def encode_exception(exc: ServiceError) -> Dict[str, Any]:
    """Structured ``(type, message, ...)`` record for one failure."""
    record: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "service": exc.service,
        "retryable": exc.retryable,
    }
    if isinstance(exc, ServiceUnavailable):
        record["permanent"] = exc.permanent
    if isinstance(exc, RateLimitExceeded):
        record["retry_after"] = exc.retry_after
    return record


def decode_exception(record: Dict[str, Any]) -> ServiceError:
    """Rebuild an equivalent exception through the real constructors.

    An unknown type name degrades to plain :class:`ServiceError` (same
    message/service/retryable) rather than failing the resume: the
    exception's *classification* is what downstream gap handling keys
    on, and that is carried by the flags.
    """
    cls = getattr(errors, str(record.get("type", "")), None)
    if not (isinstance(cls, type) and issubclass(cls, ServiceError)):
        cls = ServiceError
    message = str(record.get("message", ""))
    service = str(record.get("service", ""))
    try:
        if issubclass(cls, RateLimitExceeded):
            return cls(message, service=service,
                       retry_after=float(record.get("retry_after", 1.0)))
        if issubclass(cls, ServiceUnavailable):
            return cls(message, service=service,
                       permanent=bool(record.get("permanent", False)))
        if issubclass(cls, CircuitOpen):
            return cls(message, service=service)
        return cls(message, service=service,
                   retryable=bool(record.get("retryable", False)))
    except TypeError:
        return ServiceError(message, service=service,
                            retryable=bool(record.get("retryable", False)))
