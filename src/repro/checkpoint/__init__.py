"""Durable checkpoint/resume: crash-safe pipeline runs.

A checkpointed run writes a **run journal** — an fsync'd append-only
JSONL write-ahead log plus per-stage snapshot files — under a
``--checkpoint-dir``. After a hard process death (a real one, or a
:class:`~repro.faults.CrashPoint` / journal kill-point injecting
:class:`~repro.errors.SimulatedCrash`), ``repro resume`` /
:func:`resume_pipeline` completes the run with **byte-identical**
results to a never-crashed run, performing zero duplicate charged
service calls: completed stages come back from snapshots, completed
enrichment lookups are replayed from the journal, and all effectful
state (sim clock, meters, breakers, fault-proxy call counters) is
restored from journaled state deltas rather than re-executed.

Layers, bottom-up:

* :mod:`repro.checkpoint.codec` — value/exception serialisation and
  config fingerprints.
* :mod:`repro.checkpoint.state` — :class:`StateRegistry`: capture /
  diff / restore of every restorable run object under stable keys.
* :mod:`repro.checkpoint.journal` — :class:`RunJournal`: the durable
  manifest + WAL + snapshots, with truncate-to-valid-prefix recovery.
* :mod:`repro.checkpoint.session` — :class:`CheckpointSession`: the
  record/resume orchestration the pipeline talks to.
* :mod:`repro.checkpoint.resume` — :func:`resume_pipeline`: rebuild a
  run from its manifest and finish it.
"""

from .codec import (
    canonical_json,
    decode_exception,
    decode_value,
    encode_exception,
    encode_value,
    fingerprint,
)
from .journal import (
    JOURNAL_FORMAT,
    JOURNAL_NAME,
    MANIFEST_NAME,
    CheckpointWarning,
    RunJournal,
    code_fingerprint,
)
from .session import (
    NULL_CHECKPOINT,
    CheckpointSession,
    NullCheckpoint,
    ReplayedLookup,
    build_manifest,
)
from .state import StateRegistry, build_state_registry
from .resume import (
    plan_from_manifest,
    policy_from_manifest,
    resume_pipeline,
    scenario_from_manifest,
)

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "NULL_CHECKPOINT",
    "CheckpointSession",
    "CheckpointWarning",
    "NullCheckpoint",
    "ReplayedLookup",
    "RunJournal",
    "StateRegistry",
    "build_manifest",
    "build_state_registry",
    "canonical_json",
    "code_fingerprint",
    "decode_exception",
    "decode_value",
    "encode_exception",
    "encode_value",
    "fingerprint",
    "plan_from_manifest",
    "policy_from_manifest",
    "resume_pipeline",
    "scenario_from_manifest",
]
