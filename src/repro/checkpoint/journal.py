"""The durable run journal: manifest + JSONL write-ahead log + snapshots.

Layout of a ``--checkpoint-dir``::

    MANIFEST.json     run identity: format, scenario, config/fault/code
                      fingerprints, execution policy, CLI argv
    journal.jsonl     the WAL: one JSON record per line, fsync'd per
                      append — ``barrier`` (stage done, snapshot ref +
                      full state), ``lookup`` (one enrichment outcome +
                      changed-state delta), ``complete``
    collection.pkl    pickled CollectionResult (referenced by a barrier)
    curation.pkl      pickled (SmishingDataset, CurationStats)

Write-ahead discipline: a snapshot file is written and fsync'd *before*
the journal record that references it, so the record's presence in the
log is the commit point — a crash between the two leaves an orphaned
snapshot the next resume ignores, never a dangling reference.

Recovery reads the longest valid prefix: the scan stops at the first
partial line, malformed record, or barrier whose snapshot is missing or
checksum-mismatched, warns (:class:`CheckpointWarning`), and truncates
the file there so subsequent appends extend a consistent log. Dropping
a suffix is always safe — it is exactly equivalent to having crashed a
few writes earlier.

``kill_after_writes`` is the test harness's kill switch: the journal
raises :class:`~repro.errors.SimulatedCrash` immediately after its Nth
durable append, letting the differential harness park a crash at every
write boundary a real ``kill -9`` could land on.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import repro

from ..errors import CheckpointError, ConfigurationError, SimulatedCrash
from .codec import canonical_json

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"
JOURNAL_FORMAT = 1

#: Record types a valid journal line may carry.
RECORD_TYPES = ("barrier", "lookup", "complete")


class CheckpointWarning(UserWarning):
    """A journal needed recovery (tail dropped) — resume is still exact."""


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + bytes).

    A journal written by different code must not be resumed: replay
    equivalence assumes the resumed process computes exactly what the
    crashed one would have. Computed once per process.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(directory: Path) -> None:
    # Directory fsync makes freshly-created files durable; not all
    # platforms allow opening a directory — best-effort there.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _validate_record(record: Any) -> bool:
    if not isinstance(record, dict):
        return False
    kind = record.get("type")
    if kind not in RECORD_TYPES:
        return False
    if kind == "barrier":
        return all(key in record for key in ("stage", "file", "sha256",
                                             "state"))
    if kind == "lookup":
        return (all(key in record for key in ("service", "field", "subject",
                                              "outcome", "effects"))
                and record["outcome"] in ("value", "gap"))
    return True


class RunJournal:
    """Append-only, fsync'd journal for one checkpointed pipeline run."""

    def __init__(self, directory: Path, *, sync: bool = True,
                 kill_after_writes: Optional[int] = None):
        self.directory = Path(directory)
        self.sync = sync
        self.kill_after_writes = kill_after_writes
        self.manifest: Optional[Dict[str, Any]] = None
        #: Records recovered from disk (resume mode); [] for a fresh run.
        self.records: List[Dict[str, Any]] = []
        #: Appends performed by *this* process (the kill counter).
        self.writes = 0
        #: Whether load-time recovery dropped a corrupt tail.
        self.recovered = False
        self._handle = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, directory, *, sync: bool = True,
               kill_after_writes: Optional[int] = None) -> "RunJournal":
        """Start a fresh journal in an empty (or new) directory."""
        path = Path(directory)
        if path.exists() and not path.is_dir():
            raise ConfigurationError(
                f"checkpoint dir {path} exists and is not a directory"
            )
        path.mkdir(parents=True, exist_ok=True)
        if not os.access(path, os.W_OK):
            raise ConfigurationError(f"checkpoint dir {path} is not writable")
        existing = sorted(p.name for p in path.iterdir())
        if existing:
            if MANIFEST_NAME in existing:
                raise ConfigurationError(
                    f"checkpoint dir {path} already contains a run journal; "
                    f"resume it with `repro resume --checkpoint-dir {path}` "
                    f"or choose an empty directory"
                )
            raise ConfigurationError(
                f"checkpoint dir {path} is not empty "
                f"(found {', '.join(existing[:5])}); refusing to mix a run "
                f"journal into unrelated files"
            )
        return cls(path, sync=sync, kill_after_writes=kill_after_writes)

    @classmethod
    def load(cls, directory, *, sync: bool = True) -> "RunJournal":
        """Open an existing journal, recovering its longest valid prefix."""
        path = Path(directory)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise CheckpointError(
                f"no run journal at {path}: {MANIFEST_NAME} is missing"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable manifest at {manifest_path}: "
                                  f"{exc}")
        if not isinstance(manifest, dict) \
                or manifest.get("format") != JOURNAL_FORMAT:
            raise CheckpointError(
                f"unsupported journal format "
                f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r} "
                f"(this code writes format {JOURNAL_FORMAT})"
            )
        journal = cls(path, sync=sync)
        journal.manifest = manifest
        journal.records, valid_bytes, dropped = journal._scan()
        journal_path = path / JOURNAL_NAME
        if dropped:
            warnings.warn(
                f"run journal {journal_path} needed recovery ({dropped}); "
                f"resuming from the last valid record — equivalent to a "
                f"crash a few writes earlier, results are unaffected",
                CheckpointWarning,
                stacklevel=2,
            )
            with open(journal_path, "r+b") as handle:
                handle.truncate(valid_bytes)
                _fsync_file(handle)
            journal.recovered = True
        return journal

    def _scan(self) -> Tuple[List[Dict[str, Any]], int, str]:
        """The longest valid record prefix, its byte length, and why the
        scan stopped early ('' when the whole file is valid)."""
        journal_path = self.directory / JOURNAL_NAME
        records: List[Dict[str, Any]] = []
        valid_bytes = 0
        if not journal_path.exists():
            return records, valid_bytes, ""
        with open(journal_path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    return records, valid_bytes, "partial final record"
                try:
                    record = json.loads(line)
                except ValueError:
                    return records, valid_bytes, "malformed record"
                if not _validate_record(record):
                    return records, valid_bytes, "unrecognised record"
                if record["type"] == "barrier":
                    snapshot = self.directory / record["file"]
                    if not snapshot.is_file():
                        return (records, valid_bytes,
                                f"missing snapshot {record['file']}")
                    digest = hashlib.sha256(
                        snapshot.read_bytes()).hexdigest()
                    if digest != record["sha256"]:
                        return (records, valid_bytes,
                                f"corrupt snapshot {record['file']}")
                records.append(record)
                valid_bytes += len(line)
        return records, valid_bytes, ""

    # -- writes ---------------------------------------------------------------

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        payload = dict(manifest)
        payload["format"] = JOURNAL_FORMAT
        path = self.directory / MANIFEST_NAME
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
            if self.sync:
                _fsync_file(handle)
        if self.sync:
            _fsync_dir(self.directory)
        self.manifest = payload

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record; the harness's kill switch fires
        *after* the write completes (a real crash between fsync and the
        next instruction)."""
        if self._handle is None:
            self._handle = open(self.directory / JOURNAL_NAME, "ab")
        self._handle.write(canonical_json(record).encode("utf-8") + b"\n")
        if self.sync:
            _fsync_file(self._handle)
        self.writes += 1
        if (self.kill_after_writes is not None
                and self.writes >= self.kill_after_writes):
            raise SimulatedCrash(
                f"journal kill-point: process death after write "
                f"{self.writes}",
                service="journal",
                at_call=self.writes,
            )

    def write_snapshot(self, name: str, payload: Any) -> Dict[str, Any]:
        """Durably write one pickled stage snapshot; returns the
        ``{file, sha256, bytes}`` reference its barrier record embeds."""
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        path = self.directory / name
        with open(path, "wb") as handle:
            handle.write(raw)
            if self.sync:
                _fsync_file(handle)
        if self.sync:
            _fsync_dir(self.directory)
        return {"file": name, "sha256": hashlib.sha256(raw).hexdigest(),
                "bytes": len(raw)}

    def load_snapshot(self, record: Dict[str, Any]) -> Any:
        path = self.directory / record["file"]
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read snapshot {path}: {exc}")
        if hashlib.sha256(raw).hexdigest() != record["sha256"]:
            raise CheckpointError(
                f"snapshot {path} does not match its journaled checksum"
            )
        return pickle.loads(raw)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read_manifest(directory) -> Dict[str, Any]:
        """The manifest alone (for `repro resume`'s argv reconstruction)."""
        manifest_path = Path(directory) / MANIFEST_NAME
        if not manifest_path.is_file():
            raise CheckpointError(
                f"no run journal at {directory}: {MANIFEST_NAME} is missing"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable manifest at {manifest_path}: "
                                  f"{exc}")
        if not isinstance(manifest, dict):
            raise CheckpointError(f"malformed manifest at {manifest_path}")
        return manifest
