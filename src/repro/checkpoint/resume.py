"""Resuming a crashed run from its journal: ``resume_pipeline``.

A resume rebuilds the run's inputs *from the manifest* — the world from
its scenario (world construction is a pure function of the scenario
config), the fault plan from its recorded profile, the execution policy
from its recorded knobs — then hands a resume-mode
:class:`~repro.checkpoint.session.CheckpointSession` to the ordinary
:func:`~repro.core.pipeline.run_pipeline`. Nothing about the pipeline's
control flow is forked for resumption; the session supplies restored
stage payloads and replayed lookups where the journal has them and lets
the run continue live where it does not.

Crash points are deliberately stripped: the resumed plan is the crashed
plan minus :class:`~repro.faults.CrashPoint` rules, so the run does not
re-crash at the same call index (and the manifest fingerprint, computed
over the crash-free plan, still matches).
"""

from __future__ import annotations

import datetime as dt
from typing import Any, Callable, Dict, Optional

from ..errors import CheckpointError
from ..exec import ExecutionPolicy
from ..faults import FaultPlan, build_fault_plan
from ..world.scenario import ScenarioConfig, build_world
from .session import CheckpointSession


def scenario_from_manifest(scenario: Dict[str, Any]) -> ScenarioConfig:
    """Rebuild the exact scenario the crashed run was measuring."""
    try:
        return ScenarioConfig(
            seed=int(scenario["seed"]),
            n_campaigns=int(scenario["n_campaigns"]),
            mean_campaign_volume=float(scenario["mean_campaign_volume"]),
            timeline_start=dt.date.fromisoformat(scenario["timeline_start"]),
            timeline_end=dt.date.fromisoformat(scenario["timeline_end"]),
            include_sbi_burst=bool(scenario["include_sbi_burst"]),
            sbi_burst_volume=int(scenario["sbi_burst_volume"]),
            apk_campaign_fraction=float(scenario["apk_campaign_fraction"]),
            androzoo_corpus_size=int(scenario["androzoo_corpus_size"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"manifest scenario is unusable: {exc}")


def plan_from_manifest(manifest: Dict[str, Any],
                       fault_plan: Optional[FaultPlan]) -> FaultPlan:
    """The survivable fault plan the resumed run must replay under."""
    if fault_plan is not None:
        return fault_plan.without_crash_points()
    faults = manifest.get("faults", {})
    profile = faults.get("profile")
    if profile is None:
        raise CheckpointError(
            "the crashed run used a hand-built fault plan the manifest "
            "cannot reconstruct; pass the same plan via fault_plan="
        )
    return build_fault_plan(profile, seed=int(faults.get("seed", 0)))


def policy_from_manifest(manifest: Dict[str, Any]) -> ExecutionPolicy:
    execution = manifest.get("execution", {})
    max_entries = execution.get("cache_max_entries")
    return ExecutionPolicy(
        workers=int(execution.get("workers", 1)),
        cache=bool(execution.get("cache", True)),
        cache_max_entries=None if max_entries is None else int(max_entries),
        # Manifests written before the pool axis carry no "pool" key;
        # they were all thread-pooled.
        pool=str(execution.get("pool", "thread")),
    )


def resume_pipeline(
    checkpoint_dir,
    *,
    config=None,
    telemetry=None,
    telemetry_factory: Optional[Callable[[Any], Any]] = None,
    fault_plan: Optional[FaultPlan] = None,
    execution: Optional[ExecutionPolicy] = None,
):
    """Resume a crashed checkpointed run; returns the completed
    :class:`~repro.core.pipeline.PipelineRun`.

    ``config``/``fault_plan``/``execution`` default to the manifest's
    own values and, when passed explicitly, are still validated against
    the manifest fingerprints (a mismatch raises
    :class:`~repro.errors.CheckpointMismatch`). ``telemetry_factory``
    lets a caller build telemetry against the *rebuilt* world's clock
    (the CLI does); it is ignored when ``telemetry`` is given directly.
    """
    from ..core.pipeline import run_pipeline  # local: breaks import cycle

    session = CheckpointSession.resume(checkpoint_dir)
    manifest = session.manifest
    world = build_world(scenario_from_manifest(manifest.get("scenario", {})))
    plan = plan_from_manifest(manifest, fault_plan)
    policy = execution if execution is not None \
        else policy_from_manifest(manifest)
    if telemetry is None and telemetry_factory is not None:
        telemetry = telemetry_factory(world)
    return run_pipeline(
        world,
        config=config,
        telemetry=telemetry,
        fault_plan=plan,
        execution=policy,
        checkpoint=session,
    )
