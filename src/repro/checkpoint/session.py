"""Checkpoint sessions: what the pipeline talks to.

A :class:`CheckpointSession` is the single object
:func:`~repro.core.pipeline.run_pipeline` interacts with. In **record**
mode it writes the manifest, appends a barrier after each completed
stage, and appends one lookup record (outcome + changed-state delta)
per enrichment service call. In **resume** mode it restores the journal
in three steps:

1. *Stage barriers* — collection/curation results come back from their
   pickled snapshots and the barrier's full state dict is applied, so
   skipped stages cost nothing and leave the world exactly as the
   crashed run left it.
2. *Effect fast-forward* — the journaled lookups' state deltas are
   merged (later records win) and applied once, jumping meters, clock,
   breakers, and fault-proxy counters to the crash instant *without*
   re-executing anything: zero duplicate charges, by construction.
3. *Ordered replay* — the enricher consults :meth:`replay_lookup`
   before every guarded call; journaled outcomes (values and gaps) are
   returned verbatim in order. The pipeline's call order is
   deterministic, so a sequence mismatch means the journal belongs to a
   different run and raises :class:`~repro.errors.CheckpointError`.
   When the cursor runs dry the run continues live, appending new
   records to the same journal.

:data:`NULL_CHECKPOINT` is the no-op twin for un-checkpointed runs, so
the pipeline carries no conditionals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import CheckpointError, CheckpointMismatch
from .codec import decode_value, encode_value, fingerprint
from .journal import RunJournal, code_fingerprint
from .state import StateRegistry

#: Barrier stage names in pipeline order, mapped to snapshot filenames.
STAGE_SNAPSHOTS = {"collection": "collection.pkl",
                   "curation": "curation.pkl"}

#: Manifest keys that must match between a journal and a resume.
_MANIFEST_IDENTITY = ("scenario", "pipeline_config", "faults", "execution",
                      "code")


@dataclass(frozen=True)
class ReplayedLookup:
    """One journaled enrichment outcome handed back to the enricher."""

    outcome: str  # "value" | "gap"
    value: Any = None
    gap: Optional[Dict[str, Any]] = None


def build_manifest(scenario, config, fault_plan, policy,
                   *, cli: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The identity record binding a journal to exactly one run.

    The fault section fingerprints the plan *minus crash points*: a
    crashed run and its resume intentionally differ only in where the
    injected crash lands, and that difference must not reject the
    journal.
    """
    scenario_dict = {
        "seed": scenario.seed,
        "n_campaigns": scenario.n_campaigns,
        "mean_campaign_volume": scenario.mean_campaign_volume,
        "timeline_start": scenario.timeline_start.isoformat(),
        "timeline_end": scenario.timeline_end.isoformat(),
        "include_sbi_burst": scenario.include_sbi_burst,
        "sbi_burst_volume": scenario.sbi_burst_volume,
        "apk_campaign_fraction": scenario.apk_campaign_fraction,
        "androzoo_corpus_size": scenario.androzoo_corpus_size,
    }
    survivable = fault_plan.without_crash_points() if fault_plan is not None \
        else None
    manifest: Dict[str, Any] = {
        "scenario": scenario_dict,
        "pipeline_config": fingerprint({
            "keywords": list(config.keywords),
            "windows": str(config.windows),
            "vision_miss_rate": config.vision_miss_rate,
            "evaluation_sample_size": config.evaluation_sample_size,
            "case_study_posts": config.case_study_posts,
        }),
        "faults": {
            "profile": survivable.profile if survivable is not None else None,
            "seed": survivable.seed if survivable is not None else 0,
            "rules": survivable.describe() if survivable is not None
            else "none",
        },
        "execution": {
            "workers": policy.workers,
            "cache": policy.cache,
            "cache_max_entries": policy.cache_max_entries,
            "pool": policy.pool,
        },
        "code": code_fingerprint(),
    }
    if cli is not None:
        manifest["cli"] = cli
    return manifest


def _manifest_mismatches(stored: Dict[str, Any],
                         current: Dict[str, Any]) -> List[str]:
    problems = []
    for key in _MANIFEST_IDENTITY:
        if stored.get(key) != current.get(key):
            problems.append(
                f"{key}: journal has {stored.get(key)!r}, "
                f"this run has {current.get(key)!r}"
            )
    return problems


class NullCheckpoint:
    """The do-nothing session an un-checkpointed run carries."""

    active = False
    mode = "off"

    def bind(self, **kwargs) -> None:
        pass

    def restore_stage(self, stage: str) -> None:
        return None

    def stage_barrier(self, stage: str, payload: Any) -> None:
        pass

    def begin_enrichment(self) -> None:
        pass

    def enrichment_journal(self) -> None:
        """The enricher's hook; None keeps its hot path branch-free."""
        return None

    def complete(self) -> None:
        pass

    def close(self) -> None:
        pass

    def stats(self) -> None:
        return None


NULL_CHECKPOINT = NullCheckpoint()


class CheckpointSession:
    """One run's live connection to its journal (record or resume)."""

    active = True

    def __init__(self, journal: RunJournal, mode: str):
        if mode not in ("record", "resume"):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        self.journal = journal
        self.mode = mode
        self._registry: Optional[StateRegistry] = None
        self._cli: Optional[Dict[str, Any]] = None
        self._last_state: Dict[str, Dict[str, Any]] = {}
        self._restored_stages: List[str] = []
        self._barriers_written = 0
        self._replayed = 0
        self._recorded = 0
        # Resume-mode partitions of the recovered records.
        self._barriers: Dict[str, Dict[str, Any]] = {}
        self._lookups: List[Dict[str, Any]] = []
        self._completed = False
        self._cursor = 0
        for record in journal.records:
            if record["type"] == "barrier":
                self._barriers[record["stage"]] = record
            elif record["type"] == "lookup":
                self._lookups.append(record)
            elif record["type"] == "complete":
                self._completed = True

    # -- construction ---------------------------------------------------------

    @classmethod
    def record(cls, directory, *, sync: bool = True,
               kill_after_writes: Optional[int] = None,
               cli: Optional[Dict[str, Any]] = None) -> "CheckpointSession":
        session = cls(RunJournal.create(directory, sync=sync,
                                        kill_after_writes=kill_after_writes),
                      "record")
        session._cli = cli
        return session

    @classmethod
    def resume(cls, directory, *, sync: bool = True) -> "CheckpointSession":
        return cls(RunJournal.load(directory, sync=sync), "resume")

    @property
    def manifest(self) -> Dict[str, Any]:
        if self.journal.manifest is None:
            raise CheckpointError("session has no manifest yet")
        return self.journal.manifest

    # -- pipeline integration -------------------------------------------------

    def bind(self, *, registry: StateRegistry, scenario, config, fault_plan,
             policy) -> None:
        """Couple the session to one concrete run: write the manifest
        (record) or verify the journal belongs to this run (resume)."""
        self._registry = registry
        manifest = build_manifest(scenario, config, fault_plan, policy,
                                  cli=self._cli)
        if self.mode == "record":
            self.journal.write_manifest(manifest)
            return
        problems = _manifest_mismatches(self.journal.manifest, manifest)
        if problems:
            raise CheckpointMismatch(
                "refusing to resume: the journal was written by a "
                "different run — " + "; ".join(problems)
            )

    def restore_stage(self, stage: str) -> Optional[Any]:
        """The stage's snapshotted payload, or None when it must run."""
        record = self._barriers.get(stage)
        if self.mode != "resume" or record is None:
            return None
        payload = self.journal.load_snapshot(record)
        assert self._registry is not None
        self._registry.restore(record["state"])
        self._restored_stages.append(stage)
        return payload

    def stage_barrier(self, stage: str, payload: Any) -> None:
        """Journal one freshly-completed stage (snapshot first, then the
        barrier record — the record is the commit point)."""
        if stage in self._barriers:  # resumed past it; already durable
            return
        assert self._registry is not None
        reference = self.journal.write_snapshot(
            STAGE_SNAPSHOTS.get(stage, f"{stage}.pkl"), payload)
        self.journal.append({"type": "barrier", "stage": stage,
                             "state": self._registry.capture(), **reference})
        self._barriers_written += 1

    def begin_enrichment(self) -> None:
        """Arm lookup journaling: fast-forward journaled effects (resume)
        and seed the delta baseline for subsequent records."""
        assert self._registry is not None
        if self.mode == "resume" and self._lookups:
            merged: Dict[str, Dict[str, Any]] = {}
            for record in self._lookups:
                merged.update(record["effects"])
            if merged:
                self._registry.restore(merged)
        self._last_state = self._registry.capture()

    def enrichment_journal(self) -> "CheckpointSession":
        return self

    # -- the enricher-facing journal interface --------------------------------

    def replay_lookup(self, service: str, field_name: str,
                      subject: str) -> Optional[ReplayedLookup]:
        """The next journaled outcome, or None once the journal is spent.

        The enricher's call order is deterministic, so the journal must
        agree record-by-record; disagreement means the journal was
        written by a different run (or the code changed under it) and
        continuing would silently produce wrong results.
        """
        if self.mode != "resume" or self._cursor >= len(self._lookups):
            return None
        record = self._lookups[self._cursor]
        expected = (record["service"], record["field"], record["subject"])
        if expected != (service, field_name, subject):
            raise CheckpointError(
                f"journal out of sync at lookup {self._cursor}: journal "
                f"has {expected!r}, the pipeline asked for "
                f"{(service, field_name, subject)!r}"
            )
        self._cursor += 1
        self._replayed += 1
        if record["outcome"] == "gap":
            return ReplayedLookup(outcome="gap", gap=dict(record["gap"]))
        return ReplayedLookup(outcome="value",
                              value=decode_value(record["value"]))

    def record_lookup(self, service: str, field_name: str, subject: str, *,
                      value: Any = None,
                      gap: Optional[Dict[str, Any]] = None) -> None:
        """Journal one live lookup outcome with its state delta."""
        assert self._registry is not None
        current = self._registry.capture()
        effects = StateRegistry.diff(self._last_state, current)
        self._last_state = current
        record: Dict[str, Any] = {
            "type": "lookup", "service": service, "field": field_name,
            "subject": subject, "effects": effects,
        }
        if gap is not None:
            record["outcome"] = "gap"
            record["gap"] = gap
        else:
            record["outcome"] = "value"
            record["value"] = encode_value(value)
        self.journal.append(record)
        self._recorded += 1

    # -- completion / reporting -----------------------------------------------

    def complete(self) -> None:
        if not self._completed:
            self.journal.append({"type": "complete"})

    def close(self) -> None:
        self.journal.close()

    def stats(self) -> Dict[str, Any]:
        """Checkpoint accounting for the telemetry layer."""
        return {
            "mode": self.mode,
            "stages_restored": list(self._restored_stages),
            "barriers_written": self._barriers_written,
            "lookups_replayed": self._replayed,
            "lookups_recorded": self._recorded,
            "journal_writes": self.journal.writes,
            "journal_recovered": self.journal.recovered,
        }
