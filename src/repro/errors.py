"""Exception hierarchy for the smishing reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at pipeline boundaries while still
being able to distinguish failure modes (service throttling vs. malformed
input vs. configuration problems) when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A scenario or pipeline configuration is inconsistent or incomplete."""


class ValidationError(ReproError):
    """An input value failed validation (bad phone number, URL, enum...)."""


class ServiceError(ReproError):
    """Base class for simulated external-service failures."""

    def __init__(self, message: str, *, service: str = "", retryable: bool = False):
        super().__init__(message)
        self.service = service
        self.retryable = retryable


class RateLimitExceeded(ServiceError):
    """The caller exceeded a service's request budget.

    Mirrors HTTP 429 semantics: ``retry_after`` carries the number of
    seconds (simulated) the caller should back off before retrying.
    """

    def __init__(self, message: str, *, service: str = "", retry_after: float = 1.0):
        super().__init__(message, service=service, retryable=True)
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """The service is down or has been permanently shut off.

    Used, e.g., to model the Twitter academic API shutdown of June 2023
    (paper §3.1.1) and Smishing.eu ceasing operations in October 2023.
    """

    def __init__(self, message: str, *, service: str = "", permanent: bool = False):
        super().__init__(message, service=service, retryable=not permanent)
        self.permanent = permanent


class AuthenticationError(ServiceError):
    """The API credential was missing, malformed, or revoked."""


class CircuitOpen(ServiceError):
    """A circuit breaker rejected the call before it reached the service.

    Raised by :func:`repro.resilience.call_with_policy` when the
    service's breaker is open: the service failed repeatedly and the
    caller is in its cool-down window. The call never touched the
    service (no request was charged), so retrying immediately is
    pointless — hence ``retryable=False``.
    """

    def __init__(self, message: str, *, service: str = ""):
        super().__init__(message, service=service, retryable=False)


class QuotaExhausted(ServiceError):
    """A hard API quota was exhausted (no amount of waiting helps)."""


class DeadlineExceeded(ServiceError):
    """A caller's time budget ran out before the call could succeed.

    Raised by :func:`repro.resilience.call_with_policy` when a deadline
    is in force and either the deadline has already passed or the next
    backoff sleep would overshoot it. Waiting longer is exactly what the
    caller cannot afford, so ``retryable=False``. ``deadline`` is the
    absolute simulated instant the budget expired at; ``remaining`` is
    the (non-negative) budget left when the decision was made.
    """

    def __init__(self, message: str, *, service: str = "",
                 deadline: float = 0.0, remaining: float = 0.0):
        super().__init__(message, service=service, retryable=False)
        self.deadline = deadline
        self.remaining = remaining


class NotFound(ServiceError):
    """The requested entity does not exist in the service's records."""


class CheckpointError(ReproError):
    """A run journal is unusable: missing, malformed, or truncated in a
    way that recovery could not repair."""


class CheckpointMismatch(CheckpointError):
    """A run journal belongs to a *different* run than the one being
    resumed (seed, scenario, pipeline config, fault plan, execution
    policy, or code version changed). Resuming anyway could silently
    produce wrong results, so the mismatch is an error, never a
    warning."""


class SimulatedCrash(BaseException):
    """An injected hard process death (``repro.faults.CrashPoint`` or a
    journal kill-point in the checkpoint test harness).

    Deliberately **not** a :class:`ReproError` — not even an
    ``Exception``: a real ``kill -9`` cannot be caught, so the simulated
    one must sail straight through every ``except Exception`` /
    ``except ServiceError`` recovery path the resilience layer owns and
    abort the run. Only the outermost harness (the CLI entry point, the
    kill-harness tests) may catch it.
    """

    def __init__(self, message: str, *, service: str = "", at_call: int = -1):
        super().__init__(message)
        self.service = service
        self.at_call = at_call


class ExtractionError(ReproError):
    """An image/text extractor could not produce a usable record."""


class NotAScreenshot(ExtractionError):
    """The submitted image is not an SMS screenshot (per §3.2 the vision
    extractor is instructed to dismiss such images)."""


class ParseError(ReproError):
    """Free-form text (timestamp, paste, URL) could not be parsed."""
