"""Euphony-style AV label unification (§3.3.5).

VirusTotal's file scanners each use a private naming scheme and often
mislabel samples. Euphony (Hurier et al., MSR'17) parses the label corpus
and emits a single family per file. This reimplementation follows the
same recipe: tokenize every vendor label, strip platform/category
affixes, discard generic buckets, then majority-vote the remaining family
tokens across vendors.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .virustotal import FileScanReport

#: Tokens that describe platform or category, never a family.
_STOP_TOKENS = frozenset({
    "android", "androidos", "andr", "trojan", "trj", "malware", "riskware",
    "adware", "spyware", "banker", "agent", "generic", "variant", "of", "a",
    "win32", "apk", "app", "application", "heur", "susp", "suspicious",
    "gen", "genx", "artemis__placeholder",
})

_SPLIT_RE = re.compile(r"[^A-Za-z0-9]+")


def tokenize_label(label: str) -> List[str]:
    """Split a vendor label into candidate family tokens.

    ``'a variant of Android/SMSspy.C'`` → ``['smsspy']`` after stop-token
    and noise filtering. Purely numeric or single-letter tokens are
    version markers, not families.
    """
    tokens: List[str] = []
    for raw in _SPLIT_RE.split(label.lower()):
        if not raw or raw in _STOP_TOKENS:
            continue
        if raw.isdigit() or len(raw) <= 2:
            continue
        tokens.append(raw)
    return tokens


@dataclass(frozen=True)
class FamilyVerdict:
    """Unified family for one file."""

    sha256: str
    family: Optional[str]
    support: int  # vendors voting for the winning family
    total_labels: int

    @property
    def confident(self) -> bool:
        return self.family is not None and self.support >= 2


class EuphonyUnifier:
    """Majority-vote family inference over VT file reports."""

    def __init__(self, *, min_support: int = 2):
        self._min_support = min_support

    def unify(self, report: FileScanReport) -> FamilyVerdict:
        """Reduce one file's vendor labels to a single family name."""
        votes: Counter = Counter()
        for label in report.labels.values():
            seen_in_label = set()
            for token in tokenize_label(label):
                if token not in seen_in_label:
                    votes[token] += 1
                    seen_in_label.add(token)
        if not votes:
            return FamilyVerdict(report.sha256, None, 0, len(report.labels))
        family, support = max(votes.items(), key=lambda kv: (kv[1], kv[0]))
        if support < self._min_support:
            return FamilyVerdict(report.sha256, None, support,
                                 len(report.labels))
        return FamilyVerdict(
            sha256=report.sha256,
            family=_canonical_family(family),
            support=support,
            total_labels=len(report.labels),
        )

    def unify_batch(
        self, reports: List[FileScanReport]
    ) -> Dict[str, FamilyVerdict]:
        return {report.sha256: self.unify(report) for report in reports}


#: Canonical capitalisation for families we know about.
_CANONICAL = {
    "smsspy": "SMSspy",
    "hqwar": "HQWar",
    "rewardsteal": "Rewardsteal",
    "artemis": "Artemis",
    "flubot": "FluBot",
    "medusa": "Medusa",
}


def _canonical_family(token: str) -> str:
    return _CANONICAL.get(token, token.capitalize())
