"""crt.sh-style certificate-transparency log simulator (§3.3.3, Table 7).

The world's infrastructure builder logs every certificate it issues; this
service exposes the crt.sh query surface: all certificates whose common
name matches a domain (including subdomain matches with the ``%.domain``
wildcard semantics crt.sh uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..world.infrastructure import DomainAsset, TlsCertificate
from .base import ServiceMeter, SimClock, wait_and_charge


@dataclass(frozen=True)
class CertSummary:
    """Aggregate certificate view for one domain."""

    domain: str
    certificates: int
    issuers: Dict[str, int]

    @property
    def top_issuer(self) -> Optional[str]:
        if not self.issuers:
            return None
        return max(self.issuers.items(), key=lambda kv: (kv[1], kv[0]))[0]


class CrtShService:
    """Query TLS certificates by hostname."""

    def __init__(
        self,
        assets: Iterable[DomainAsset],
        *,
        clock: Optional[SimClock] = None,
        rate_per_second: float = 5.0,
    ):
        self._index: Dict[str, List[TlsCertificate]] = {}
        for asset in assets:
            if asset.certificates:
                self._index.setdefault(asset.fqdn, []).extend(asset.certificates)
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="crtsh", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 3,
        )

    def certificates_for(self, host: str) -> List[TlsCertificate]:
        """All logged certificates for ``host`` and its subdomains."""
        wait_and_charge(self.meter)
        key = host.lower().strip(".")
        results: List[TlsCertificate] = list(self._index.get(key, []))
        suffix = "." + key
        for fqdn, certs in self._index.items():
            if fqdn.endswith(suffix):
                results.extend(certs)
        return sorted(results, key=lambda c: (c.issued_at, c.serial))

    def summary_for(self, host: str) -> CertSummary:
        """Count certificates per issuing CA for one domain."""
        certs = self.certificates_for(host)
        issuers: Dict[str, int] = {}
        for cert in certs:
            issuers[cert.issuer] = issuers.get(cert.issuer, 0) + 1
        return CertSummary(domain=host, certificates=len(certs), issuers=issuers)

    def logged_hosts(self) -> List[str]:
        return sorted(self._index)
