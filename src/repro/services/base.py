"""Common machinery for simulated external services.

Every service the paper queries (HLR, WHOIS, crt.sh, VirusTotal, GSB,
passive DNS, ipinfo) meters requests. :class:`ServiceMeter` provides a
simulated-time token bucket plus an optional hard quota, so collectors
must implement the same batching/backoff logic the real pipeline needed.
:class:`SimClock` is a shared monotonic clock the caller advances —
nothing in the library sleeps on wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import ConfigurationError, QuotaExhausted, RateLimitExceeded

#: Observer signature: ``(service, event, value)`` where event is one of
#: ``request`` / ``throttle`` / ``backoff`` / ``quota``.
MeterObserver = Callable[[str, str, float], None]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += seconds
        return self._now

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {"now": self._now}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Reset to a journaled instant. Unlike :meth:`advance` this may
        move the clock backwards: a resume rebuilds a fresh world (clock
        at 0) and jumps it to the crash-time instant."""
        self._now = float(state["now"])


@dataclass
class ServiceMeter:
    """Token-bucket rate limiter with an optional lifetime quota.

    ``rate`` tokens refill per second up to ``burst``. ``quota`` of None
    means unmetered total usage. Raises the same exception types the
    collectors' retry logic handles for real services.
    """

    service: str
    clock: SimClock
    rate: float = 10.0
    burst: float = 20.0
    quota: Optional[int] = None
    _tokens: float = field(default=0.0, init=False)
    _last_refill: float = field(default=0.0, init=False)
    _used: int = field(default=0, init=False)
    _throttle_events: int = field(default=0, init=False)
    _backoff_seconds: float = field(default=0.0, init=False)
    _last_charge_at: Optional[float] = field(default=None, init=False)
    #: Optional telemetry hook; see :data:`MeterObserver`. Set by the
    #: pipeline when observability is enabled, left None otherwise.
    observer: Optional[MeterObserver] = field(default=None, init=False,
                                              repr=False, compare=False)

    def __post_init__(self) -> None:
        self._tokens = self.burst
        self._last_refill = self.clock.now

    @property
    def used(self) -> int:
        return self._used

    @property
    def throttle_events(self) -> int:
        return self._throttle_events

    @property
    def backoff_seconds(self) -> float:
        return self._backoff_seconds

    @property
    def last_charge_at(self) -> Optional[float]:
        return self._last_charge_at

    @property
    def remaining_quota(self) -> Optional[int]:
        if self.quota is None:
            return None
        return max(0, self.quota - self._used)

    def _emit(self, event: str, value: float = 1.0) -> None:
        if self.observer is not None:
            self.observer(self.service, event, value)

    def note_backoff(self, seconds: float) -> None:
        """Record simulated seconds a client slept before retrying."""
        self._backoff_seconds += seconds
        self._emit("backoff", seconds)

    def snapshot(self) -> Dict[str, Any]:
        """Uniform budget-consumption report (shared with ForumMeter)."""
        return {
            "used": self._used,
            "remaining": self.remaining_quota,
            "throttle_events": self._throttle_events,
            "last_charge_at": self._last_charge_at,
            "backoff_seconds": self._backoff_seconds,
        }

    def state_dict(self) -> Dict[str, Any]:
        """Complete internal state for the run journal (unlike
        :meth:`snapshot`, includes the token bucket so a restored meter
        throttles at exactly the same future calls)."""
        return {
            "tokens": self._tokens,
            "last_refill": self._last_refill,
            "used": self._used,
            "throttle_events": self._throttle_events,
            "backoff_seconds": self._backoff_seconds,
            "last_charge_at": self._last_charge_at,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore journaled state without emitting observer events —
        the charges already happened (and were already counted) in the
        crashed run; replaying them into telemetry would double-count."""
        self._tokens = float(state["tokens"])
        self._last_refill = float(state["last_refill"])
        self._used = int(state["used"])
        self._throttle_events = int(state["throttle_events"])
        self._backoff_seconds = float(state["backoff_seconds"])
        last = state["last_charge_at"]
        self._last_charge_at = None if last is None else float(last)

    def _refill(self) -> None:
        elapsed = self.clock.now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last_refill = self.clock.now

    def charge(self, cost: float = 1.0) -> None:
        """Consume tokens or raise RateLimitExceeded / QuotaExhausted."""
        if self.quota is not None and self._used >= self.quota:
            self._emit("quota")
            raise QuotaExhausted(
                f"{self.service}: quota of {self.quota} requests exhausted",
                service=self.service,
            )
        self._refill()
        if self._tokens + 1e-9 < cost:
            if self.rate <= 0:
                # A zero/negative rate can never refill the deficit;
                # waiting would loop forever (and divide by zero below).
                raise ConfigurationError(
                    f"{self.service}: meter rate {self.rate} cannot refill "
                    f"a deficit of {cost - self._tokens:.3f} tokens"
                )
            deficit = cost - self._tokens
            self._throttle_events += 1
            self._emit("throttle")
            # Floor the backoff so repeated waits always move the clock by
            # a representable amount (guards against float absorption when
            # the simulated clock has grown large).
            raise RateLimitExceeded(
                f"{self.service}: rate limited",
                service=self.service,
                retry_after=max(deficit / self.rate, 1e-3),
            )
        self._tokens = max(0.0, self._tokens - cost)
        self._used += 1
        self._last_charge_at = self.clock.now
        self._emit("request", cost)


def wait_and_charge(meter: ServiceMeter, cost: float = 1.0,
                    max_total_wait: float = 3600.0) -> float:
    """Helper for well-behaved clients: advance the clock past any rate
    limit, then charge. Returns simulated seconds waited.

    ``max_total_wait`` bounds the cumulative simulated wait for one
    charge; a meter that still throttles after that long cannot be
    satisfied by waiting (in practice: a mis-configured rate/burst) and
    raises :class:`~repro.errors.ConfigurationError` instead of looping
    forever.
    """
    waited = 0.0
    while True:
        try:
            meter.charge(cost)
            return waited
        except RateLimitExceeded as exc:
            if waited + exc.retry_after > max_total_wait:
                raise ConfigurationError(
                    f"{meter.service}: waited {waited:.1f}s (sim) without "
                    f"satisfying a charge of {cost}; check the meter's "
                    f"rate ({meter.rate}/s) and burst ({meter.burst})"
                )
            meter.clock.advance(exc.retry_after)
            meter.note_backoff(exc.retry_after)
            waited += exc.retry_after


class RequestLog:
    """Per-service request counters, for tests and bench reporting."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def record(self, service: str) -> None:
        self._counts[service] = self._counts.get(service, 0) + 1

    def count(self, service: str) -> int:
        return self._counts.get(service, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)
