"""VirusTotal simulator: URL scans and file (APK) scans.

URL verdicts reproduce the dispersion of Table 9: different AV vendors
build blocklists differently (§4.7), so agreement is poor — about 45% of
smishing URLs carry no flag at all, half are flagged by at least one
vendor, and almost none by more than 15 of the ~70 scanners.

Per-URL results are *deterministic*: they derive from a stable hash of
the URL and the scan's vendor set, so repeated queries agree (VirusTotal
caches scans) and the whole pipeline stays reproducible.

File scans return per-vendor malware labels in each vendor's private
naming scheme; the :mod:`repro.services.euphony` unifier reduces them to
a single family, as the paper does for the §6 case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..types import Verdict
from ..utils.rng import stable_hash
from .base import ServiceMeter, SimClock, wait_and_charge

#: The scanner roster (a representative subset of VT's ~70 URL scanners).
VENDORS: Tuple[str, ...] = (
    "Fortinet", "Kaspersky", "Sophos", "ESET", "BitDefender", "Avira",
    "McAfee", "Symantec", "TrendMicro", "Webroot", "CRDF", "PhishLabs",
    "Netcraft", "OpenPhish", "PhishTank", "Spamhaus", "SURBL", "URLhaus",
    "GData", "DrWeb", "Rising", "Tencent", "Baidu", "Yandex Safebrowsing",
    "Google Safebrowsing", "CyRadar", "Quttera", "SCUMWARE", "StopBadware",
    "Sucuri", "ThreatHive", "VX Vault", "ZCloudsec", "ZeroCERT", "Abusix",
    "ADMINUSLabs", "AegisLab", "AlienVault", "Antiy-AVL", "AutoShun",
    "BADWARE", "Blueliv", "Certego", "CINS Army", "CleanMX", "Comodo Site",
    "CyberCrime", "Emsisoft", "EonScope", "Forcepoint", "Fraudscore",
    "FraudSense", "G-Data", "K7AntiVirus", "Lionic", "Lumu", "MalBeacon",
    "Malc0de", "MalSilo", "Malware Domain List", "MalwarePatrol",
    "Malwared", "Nucleon", "Phishing Database", "PREBYTES", "Sangfor",
    "SecureBrain", "Segasec", "SafeToOpen", "Trustwave",
)

#: Vendors with a real mobile/phishing focus flag more often.
_VENDOR_SENSITIVITY: Dict[str, float] = {
    "Fortinet": 0.85, "Kaspersky": 0.8, "Netcraft": 0.75, "OpenPhish": 0.7,
    "PhishTank": 0.6, "CRDF": 0.65, "Sophos": 0.6, "ESET": 0.6,
    "BitDefender": 0.55, "Avira": 0.5, "Webroot": 0.5, "PhishLabs": 0.5,
    "Google Safebrowsing": 0.28, "Spamhaus": 0.45, "URLhaus": 0.35,
}
_DEFAULT_SENSITIVITY = 0.12


@dataclass(frozen=True)
class UrlScanReport:
    """One URL scan: per-vendor verdicts plus the aggregate counts."""

    url: str
    verdicts: Dict[str, Verdict]

    @property
    def malicious(self) -> int:
        return sum(1 for v in self.verdicts.values() if v is Verdict.MALICIOUS)

    @property
    def suspicious(self) -> int:
        return sum(1 for v in self.verdicts.values() if v is Verdict.SUSPICIOUS)

    @property
    def undetected(self) -> bool:
        return self.malicious == 0 and self.suspicious == 0

    def vendor_verdict(self, vendor: str) -> Verdict:
        return self.verdicts.get(vendor, Verdict.CLEAN)


@dataclass(frozen=True)
class FileScanReport:
    """One file scan: per-vendor detection labels (vendor naming schemes)."""

    sha256: str
    labels: Dict[str, str]

    @property
    def positives(self) -> int:
        return len(self.labels)


#: Cumulative bands of the malicious-count distribution *among detected
#: URLs*, calibrated so the overall thresholds land on Table 9 (45% of
#: URLs are detected by nobody at all).
_MALICIOUS_BANDS: Tuple[Tuple[float, int, int], ...] = (
    (0.098, 0, 0),
    (0.529, 1, 2),
    (0.704, 3, 4),
    (0.933, 5, 9),
    (0.9945, 10, 14),
    (1.0001, 15, 25),
)
#: Same for suspicious counts among detected URLs (Table 9: 18%
#: overall have >=1 suspicious; >=5 never happens).
_SUSPICIOUS_BANDS: Tuple[Tuple[float, int, int], ...] = (
    (0.673, 0, 0),
    (0.9964, 1, 2),
    (1.0001, 3, 4),
)
#: Share of URLs no scanner flags at all (Table 9: 44.9%).
_UNDETECTED_SHARE = 0.45


def _band_count(u: float, bands) -> int:
    previous = 0.0
    for ceiling, low, high in bands:
        if u < ceiling:
            if high == low:
                return low
            span = ceiling - previous
            within = (u - previous) / span
            return low + int(within * (high - low + 1))
        previous = ceiling
    return bands[-1][2]


def scan_url_uncharged(url: str,
                       known_bad_hosts: frozenset = frozenset()) -> UrlScanReport:
    """The pure half of a URL scan: verdicts from stable hashes only.

    A module-level function of ``(url, known_bad_hosts)`` so the
    execution engine's process workers can compute scans without
    pickling a live service (meters hold telemetry hooks and a shared
    clock that must stay in the parent). :class:`VirusTotalService`
    delegates here; the two paths are the same code by construction.
    """
    verdicts: Dict[str, Verdict] = {}
    gate = stable_hash("detectability:" + url) / 2**32
    host = url.split("://", 1)[-1].split("/", 1)[0]
    if host in known_bad_hosts:
        gate = min(1.0, gate * 1.25)  # widely-reported hosts detected more
    if gate < _UNDETECTED_SHARE:
        return UrlScanReport(url=url, verdicts=verdicts)
    u_mal = stable_hash("vt-mal:" + url) / 2**32
    u_susp = stable_hash("vt-susp:" + url) / 2**32
    malicious_n = _band_count(u_mal, _MALICIOUS_BANDS)
    suspicious_n = _band_count(u_susp, _SUSPICIOUS_BANDS)
    # Which vendors flag: rank by a per-(vendor, URL) priority scaled
    # by vendor sensitivity, so phishing-focused feeds flag most
    # often across the corpus while disagreement stays deterministic.
    ranked = sorted(
        VENDORS,
        key=lambda vendor: (
            (stable_hash(f"{vendor}:{url}") / 2**32)
            / _VENDOR_SENSITIVITY.get(vendor, _DEFAULT_SENSITIVITY)
        ),
    )
    for vendor in ranked[:malicious_n]:
        verdicts[vendor] = Verdict.MALICIOUS
    for vendor in ranked[malicious_n:malicious_n + suspicious_n]:
        verdicts[vendor] = Verdict.SUSPICIOUS
    return UrlScanReport(url=url, verdicts=verdicts)


class VirusTotalService:
    """URL and file scanning with deterministic per-URL dispersion."""

    def __init__(
        self,
        *,
        clock: Optional[SimClock] = None,
        rate_per_second: float = 4.0,  # public API: 4 req/min in reality
        quota: Optional[int] = None,
        apk_ground_truth: Optional[Dict[str, str]] = None,
        known_bad_hosts: Optional[Iterable[str]] = None,
    ):
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="virustotal", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 4, quota=quota,
        )
        #: sha256 -> true malware family, fed by the world's webhost.
        self._apk_truth = dict(apk_ground_truth or {})
        self._known_bad_hosts = set(known_bad_hosts or ())

    # -- URL scanning --------------------------------------------------------

    def scan_url(self, url: str,
                 precomputed: Optional[UrlScanReport] = None) -> UrlScanReport:
        """Scan one URL (charges one request; results cached by nature).

        ``precomputed`` lets a caller supply a report it already derived
        for this URL via :meth:`_scan_url_uncharged` (scans are pure in
        the URL): the request is metered exactly as usual — only the
        verdict compute is skipped. The replay half of
        :class:`repro.exec.EnrichmentCache`.
        """
        wait_and_charge(self.meter)
        if precomputed is not None:
            return precomputed
        return self._scan_url_uncharged(url)

    def _scan_url_uncharged(self, url: str) -> UrlScanReport:
        return scan_url_uncharged(url, frozenset(self._known_bad_hosts))

    def scan_urls(self, urls: Iterable[str]) -> List[UrlScanReport]:
        """Scan many URLs (deduplicated)."""
        reports: List[UrlScanReport] = []
        seen: set = set()
        for url in urls:
            if url in seen:
                continue
            seen.add(url)
            reports.append(self.scan_url(url))
        return reports

    # -- file scanning ---------------------------------------------------------

    def register_apk(self, sha256: str, family: str) -> None:
        """World hook: record an APK's true family for later scans."""
        self._apk_truth[sha256] = family

    def scan_file(self, sha256: str) -> FileScanReport:
        """Scan a file hash; labels reflect vendors' naming chaos (§3.3.5)."""
        wait_and_charge(self.meter)
        family = self._apk_truth.get(sha256)
        labels: Dict[str, str] = {}
        if family is None:
            return FileScanReport(sha256=sha256, labels=labels)
        for vendor in VENDORS[:40]:  # file scanners subset
            roll = stable_hash(f"file:{vendor}:{sha256}") / 2**32
            if roll < 0.62:
                labels[vendor] = _vendor_label(vendor, family, sha256)
        return FileScanReport(sha256=sha256, labels=labels)


def _vendor_label(vendor: str, family: str, sha256: str) -> str:
    """Compose a vendor-specific label string for a family.

    Mirrors the mislabelling chaos Euphony untangles: platform prefixes,
    generic buckets, and occasional outright wrong family names.
    """
    noise = stable_hash(f"label:{vendor}:{sha256}") % 100
    if noise < 12:
        return f"Android/Generic.Malware.{noise}"
    if noise < 18:
        return f"Trojan.AndroidOS.Agent.{chr(97 + noise % 26)}"
    style = stable_hash("style:" + vendor) % 4
    if style == 0:
        return f"Android/{family}.{chr(65 + noise % 26)}"
    if style == 1:
        return f"Trojan.AndroidOS.{family}.{noise}"
    if style == 2:
        return f"Andr.{family.lower()}-{noise}"
    return f"a variant of Android/{family}.{chr(97 + noise % 26)}"
