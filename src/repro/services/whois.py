"""WHOIS API simulator (the paper partners with WhoisXMLAPI, §3.3.3).

Answers registrar, creation date and registrant-privacy status for
registered domains. Free-hosting subdomains (web.app, ngrok.io...) have no
WHOIS record of their own — the query resolves to the platform operator,
which the paper's registrar table therefore excludes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import datetime as dt

from ..errors import NotFound
from ..world.infrastructure import DomainAsset
from .base import ServiceMeter, SimClock, wait_and_charge

#: Platform suffix -> operator shown for free-hosting WHOIS queries.
_PLATFORM_OPERATORS = {
    "web.app": "Google LLC",
    "firebaseapp.com": "Google LLC",
    "ngrok.io": "ngrok Inc.",
    "herokuapp.com": "Salesforce (Heroku)",
    "vercel.app": "Vercel Inc.",
    "netlify.app": "Netlify Inc.",
}


@dataclass(frozen=True)
class WhoisRecord:
    """One WHOIS API response."""

    domain: str
    registrar: Optional[str]
    created: Optional[dt.date]
    privacy_protected: bool
    platform_operator: Optional[str] = None

    @property
    def is_platform_subdomain(self) -> bool:
        return self.platform_operator is not None


class WhoisService:
    """Registrar lookups over the world's registered domains."""

    def __init__(
        self,
        assets: Iterable[DomainAsset],
        *,
        clock: Optional[SimClock] = None,
        rate_per_second: float = 20.0,
        quota: Optional[int] = None,
        privacy_rate: float = 0.55,
    ):
        self._by_domain: Dict[str, DomainAsset] = {}
        for asset in assets:
            self._by_domain[asset.registered_domain] = asset
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="whois", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 2, quota=quota,
        )
        self._privacy_rate = privacy_rate

    def query(self, domain: str) -> WhoisRecord:
        """WHOIS for a registered domain (charges one request)."""
        wait_and_charge(self.meter)
        key = domain.lower().strip(".")
        for suffix, operator in _PLATFORM_OPERATORS.items():
            if key == suffix or key.endswith("." + suffix):
                return WhoisRecord(
                    domain=key, registrar=None, created=None,
                    privacy_protected=True, platform_operator=operator,
                )
        asset = self._by_domain.get(key)
        if asset is None:
            raise NotFound(f"no WHOIS record for {domain!r}", service="whois")
        # Deterministic pseudo-randomness keyed on the name so repeated
        # queries agree on privacy status.
        privacy = (hash(key) % 1000) / 1000.0 < self._privacy_rate
        return WhoisRecord(
            domain=key,
            registrar=asset.registrar,
            created=asset.created_at,
            privacy_protected=privacy,
        )

    def query_batch(self, domains: Iterable[str]) -> List[WhoisRecord]:
        """Query many domains, skipping unknowns (returns found records)."""
        records: List[WhoisRecord] = []
        seen: set = set()
        for domain in domains:
            key = domain.lower().strip(".")
            if key in seen:
                continue
            seen.add(key)
            try:
                records.append(self.query(key))
            except NotFound:
                continue
        return records
