"""Google Safe Browsing simulator: API, transparency report, VT mirror.

§4.7 / Table 18 document three *disagreeing* views of GSB:

* the public v4 API (1.0% of URLs flagged),
* the GSB row on VirusTotal (1.6% — stale submissions),
* the transparency-report website, which blocks bulk automation (half the
  URLs could not be queried) but, where it answers, reports unsafe /
  partially-unsafe / undetected / no-data states.

Each view is deterministic per URL, derived from a shared per-URL badness
score plus view-specific lag/coverage, so the three surfaces disagree the
way the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import ServiceUnavailable
from ..types import GsbStatus
from ..utils.rng import stable_hash
from .base import ServiceMeter, SimClock, wait_and_charge


@dataclass(frozen=True)
class GsbApiResult:
    """Public API answer: flagged or not, with the threat type."""

    url: str
    flagged: bool
    threat_type: Optional[str] = None


class GoogleSafeBrowsingService:
    """The three GSB query surfaces."""

    #: Fraction of transparency-report queries the site's anti-automation
    #: measures reject (§3.3.4: 9,948 of ~19.9k URLs not queryable).
    AUTOMATION_BLOCK_RATE = 0.50

    def __init__(
        self,
        *,
        clock: Optional[SimClock] = None,
        rate_per_second: float = 10.0,
        quota: Optional[int] = None,
    ):
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="gsb", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 2, quota=quota,
        )

    # -- shared scoring ----------------------------------------------------------

    @staticmethod
    def _badness(url: str) -> float:
        """Shared per-URL score in [0,1); higher = more visibly bad."""
        return stable_hash("gsb-badness:" + url) / 2**32

    # -- public API -----------------------------------------------------------------

    def query_api(self, url: str) -> GsbApiResult:
        """The v4 Lookup API: small, fresh blocklist (≈1% of our URLs)."""
        wait_and_charge(self.meter)
        badness = self._badness(url)
        flagged = badness > 0.990
        return GsbApiResult(
            url=url,
            flagged=flagged,
            threat_type="SOCIAL_ENGINEERING" if flagged else None,
        )

    def query_api_batch(self, urls: Iterable[str]) -> List[GsbApiResult]:
        results: List[GsbApiResult] = []
        seen: set = set()
        for url in urls:
            if url in seen:
                continue
            seen.add(url)
            results.append(self.query_api(url))
        return results

    # -- VirusTotal mirror -------------------------------------------------------------

    def verdict_on_virustotal(self, url: str) -> bool:
        """GSB's row on VT: stale snapshot — flags a *different* ≈1.6%.

        Overlaps the API list partially: VT keeps old submissions the API
        has since delisted, and misses some fresh API entries.
        """
        badness = self._badness(url)
        lag = stable_hash("gsb-vt-lag:" + url) / 2**32
        # Stale window: very bad URLs that VT saw (most of the API list)
        # plus formerly-bad ones the live API already delisted.
        return (badness > 0.992 and lag > 0.25) or (0.976 < badness <= 0.988 and lag > 0.45)

    # -- transparency report -------------------------------------------------------------

    def query_transparency(self, url: str) -> GsbStatus:
        """The transparency-report website.

        Raises :class:`ServiceUnavailable` when anti-automation blocks the
        query (deterministically per URL, ≈50% of them).
        """
        wait_and_charge(self.meter)
        gate = stable_hash("gsb-automation:" + url) / 2**32
        if gate < self.AUTOMATION_BLOCK_RATE:
            # The block is deterministic per URL: waiting and retrying
            # never helps, so mark it permanent (non-retryable).
            raise ServiceUnavailable(
                "transparency report blocked automated query",
                service="gsb-transparency",
                permanent=True,
            )
        badness = self._badness(url)
        if badness > 0.92:
            return GsbStatus.UNSAFE
        if badness > 0.875:
            return GsbStatus.PARTIALLY_UNSAFE
        if badness < 0.285:
            return GsbStatus.NO_DATA
        return GsbStatus.UNDETECTED

    def transparency_sweep(
        self, urls: Iterable[str]
    ) -> Dict[str, GsbStatus]:
        """Query every URL, recording NOT_QUERIED where automation fails."""
        results: Dict[str, GsbStatus] = {}
        for url in urls:
            if url in results:
                continue
            try:
                results[url] = self.query_transparency(url)
            except ServiceUnavailable:
                results[url] = GsbStatus.NOT_QUERIED
        return results
