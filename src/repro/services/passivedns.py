"""Spamhaus-style passive DNS simulator plus the ipinfo.io mapping client.

§3.3.3: the paper queries Spamhaus passive DNS for every domain, getting
the IP addresses each resolved to over the past year, then maps IPs to
ASNs and countries with ipinfo.io. Passive DNS coverage is partial — a
sensor network only sees resolutions it happened to observe — which is
why §4.6 reports only 466 of ~10k domains resolving. The world marks
observed domains with ``pdns_observed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.asn import AsRegistry
from ..net.ipaddr import IPv4
from ..world.infrastructure import DomainAsset
from .base import ServiceMeter, SimClock, wait_and_charge


@dataclass(frozen=True)
class PdnsAnswer:
    """Passive DNS response: historical A records for a domain."""

    domain: str
    addresses: Tuple[IPv4, ...]

    @property
    def resolved(self) -> bool:
        return bool(self.addresses)


class PassiveDnsService:
    """Historical resolutions for the domains the sensors observed."""

    def __init__(
        self,
        assets: Iterable[DomainAsset],
        *,
        clock: Optional[SimClock] = None,
        rate_per_second: float = 15.0,
    ):
        self._records: Dict[str, Tuple[IPv4, ...]] = {}
        for asset in assets:
            if asset.pdns_observed and asset.hosting.addresses:
                self._records[asset.fqdn] = tuple(asset.hosting.addresses)
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="spamhaus-pdns", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 2,
        )

    def query(self, domain: str) -> PdnsAnswer:
        """Query one domain (empty answer when never observed)."""
        wait_and_charge(self.meter)
        key = domain.lower().strip(".")
        return PdnsAnswer(domain=key, addresses=self._records.get(key, ()))

    def query_batch(self, domains: Iterable[str]) -> List[PdnsAnswer]:
        answers: List[PdnsAnswer] = []
        seen: set = set()
        for domain in domains:
            key = domain.lower().strip(".")
            if key in seen:
                continue
            seen.add(key)
            answers.append(self.query(key))
        return answers

    @property
    def observed_domains(self) -> List[str]:
        return sorted(self._records)


@dataclass(frozen=True)
class IpInfoRecord:
    """ipinfo.io answer for one address."""

    address: IPv4
    asn: int
    organisation: str
    country: str


class IpInfoService:
    """IP → ASN / organisation / country lookups (thin client over the
    AS registry, metered like the real API)."""

    def __init__(
        self,
        registry: AsRegistry,
        *,
        clock: Optional[SimClock] = None,
        rate_per_second: float = 50.0,
        quota: Optional[int] = None,
    ):
        self._registry = registry
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="ipinfo", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 2, quota=quota,
        )

    def lookup(self, address: IPv4) -> IpInfoRecord:
        wait_and_charge(self.meter)
        record = self._registry.lookup(address)
        return IpInfoRecord(
            address=address,
            asn=record.asn,
            organisation=record.organisation,
            country=self._registry.country_of(address),
        )

    def lookup_batch(self, addresses: Iterable[IPv4]) -> List[IpInfoRecord]:
        results: List[IpInfoRecord] = []
        seen: set = set()
        for address in addresses:
            if address.value in seen:
                continue
            seen.add(address.value)
            results.append(self.lookup(address))
        return results
