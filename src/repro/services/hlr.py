"""Home Location Register (HLR) lookup service simulator.

Models the commercial HLR lookup the paper uses (§3.3.1): given a phone
number in international format, the service reports the number type, its
current live/inactive/dead status, the *original* mobile network operator
the number was issued by, the operator it is currently homed on (numbers
port and recycle), and the plan country.

Answers come from the world's :class:`~repro.world.numbering.NumberLedger`
ground truth; numbers the world never issued resolve purely syntactically
(bad format / unknown range), exactly like a real HLR that has no
subscriber record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..types import LineStatus, PhoneNumberType
from ..world.geography import CountryRegistry, default_countries
from ..world.numbering import NumberLedger
from .base import ServiceMeter, SimClock, wait_and_charge

#: E.164 upper bound; anything longer can never be valid.
_MAX_E164_DIGITS = 15


@dataclass(frozen=True)
class HlrRecord:
    """One HLR lookup response."""

    msisdn: str
    number_type: PhoneNumberType
    status: Optional[LineStatus]
    original_operator: Optional[str]
    current_operator: Optional[str]
    country_iso3: Optional[str]

    @property
    def is_live(self) -> bool:
        return self.status is LineStatus.LIVE

    @property
    def is_valid(self) -> bool:
        return self.number_type.is_valid


class HlrLookupService:
    """Batch HLR lookups against the world's number ledger."""

    def __init__(
        self,
        ledger: NumberLedger,
        *,
        clock: Optional[SimClock] = None,
        countries: Optional[CountryRegistry] = None,
        rate_per_second: float = 30.0,
        quota: Optional[int] = None,
    ):
        self._ledger = ledger
        self._countries = countries or default_countries()
        clock = clock or SimClock()
        self.meter = ServiceMeter(
            service="hlr", clock=clock, rate=rate_per_second,
            burst=rate_per_second * 2, quota=quota,
        )

    def lookup(self, msisdn: str) -> HlrRecord:
        """Look up a single number (charges one request)."""
        wait_and_charge(self.meter)
        return self._resolve(msisdn)

    def lookup_batch(self, msisdns: Iterable[str]) -> List[HlrRecord]:
        """Look up many numbers; deduplicates before querying, as the
        paper performs a one-time lookup over unique numbers."""
        seen: Dict[str, HlrRecord] = {}
        results: List[HlrRecord] = []
        for msisdn in msisdns:
            key = msisdn.lstrip("+")
            if key not in seen:
                seen[key] = self.lookup(msisdn)
            results.append(seen[key])
        return results

    def _resolve(self, msisdn: str) -> HlrRecord:
        digits = "".join(ch for ch in msisdn if ch.isdigit())
        if not digits:
            return HlrRecord(msisdn, PhoneNumberType.BAD_FORMAT, None, None,
                             None, None)
        issued = self._ledger.lookup(digits)
        if issued is not None:
            return HlrRecord(
                msisdn="+" + digits,
                number_type=issued.number_type,
                status=issued.status if issued.number_type.is_valid else None,
                original_operator=issued.original_operator,
                current_operator=issued.current_operator,
                country_iso3=issued.country_iso3,
            )
        # No subscriber record: classify syntactically.
        if len(digits) > _MAX_E164_DIGITS or len(digits) < 7:
            return HlrRecord("+" + digits, PhoneNumberType.BAD_FORMAT, None,
                             None, None, None)
        try:
            country = self._countries.by_dial_code(digits)
        except Exception:
            return HlrRecord("+" + digits, PhoneNumberType.BAD_FORMAT, None,
                             None, None, None)
        national = digits[len(country.dial_code):]
        if len(national) != country.national_length:
            return HlrRecord("+" + digits, PhoneNumberType.BAD_FORMAT, None,
                             None, None, country.iso3)
        if any(national.startswith(p) for p in country.landline_prefixes):
            return HlrRecord("+" + digits, PhoneNumberType.LANDLINE, None,
                             None, None, country.iso3)
        # Plausible mobile range but never issued: dead line.
        return HlrRecord(
            msisdn="+" + digits,
            number_type=PhoneNumberType.MOBILE,
            status=LineStatus.DEAD,
            original_operator=None,
            current_operator=None,
            country_iso3=country.iso3,
        )
