"""Scammer web hosting: device-dependent serving and APK drive-bys (§6).

The case study found landing pages that fingerprint the client: desktop
browsers get a credential-phishing page, Android devices get redirected to
``?d=s1`` and an automatic APK download. This module serves the world's
:class:`~repro.world.infrastructure.DomainAsset` hosts accordingly, with
page/host takedowns over time, and manufactures the APK payloads (hash +
true malware family) that the VirusTotal file scanner and Euphony label.
"""

from __future__ import annotations

import datetime as dt
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import NotFound
from ..net.url import RedirectChain, Url
from ..types import DeviceProfile
from ..utils.rng import WeightedSampler, stable_hash
from ..world.infrastructure import DomainAsset

#: Malware family mix for smishing APKs (Table 19: SMSspy dominates).
APK_FAMILY_WEIGHTS: Dict[str, float] = {
    "SMSspy": 15.0,
    "HQWar": 1.0,
    "Rewardsteal": 1.0,
    "Artemis": 1.0,
}

#: How long a smishing host stays up before takedown, days (heavy-tailed).
_MAX_HOST_LIFETIME_DAYS = 45


@dataclass(frozen=True)
class ApkPayload:
    """One Android package a dropper serves."""

    sha256: str
    family: str
    file_name: str
    size_bytes: int


@dataclass(frozen=True)
class FetchResult:
    """Outcome of fetching a URL with a given device profile."""

    chain: RedirectChain
    status: int
    content_kind: str  # "phishing_page" | "apk_download" | "dead"
    apk: Optional[ApkPayload] = None

    @property
    def is_apk_download(self) -> bool:
        return self.content_kind == "apk_download"


def _apk_for_host(fqdn: str) -> ApkPayload:
    """Deterministically derive the APK payload a dropper host serves."""
    sampler = WeightedSampler(APK_FAMILY_WEIGHTS)

    class _FixedRng:
        """Minimal Random-like shim driven by a stable hash."""

        def __init__(self, seed_text: str):
            self._value = stable_hash(seed_text) / 2**32

        def random(self) -> float:
            return self._value

    family = sampler.sample(_FixedRng("apk-family:" + fqdn))
    digest = hashlib.sha256(("apk:" + fqdn).encode("utf-8")).hexdigest()
    name_index = stable_hash("apk-name:" + fqdn) % 4
    file_name = ("s1.apk", "internet.apk", "PostaOnlineTracking.apk",
                 "update.apk")[name_index]
    size = 1_500_000 + stable_hash("apk-size:" + fqdn) % 6_000_000
    return ApkPayload(sha256=digest, family=family, file_name=file_name,
                      size_bytes=size)


class WebHostService:
    """Serves the smishing hosts the world stood up."""

    def __init__(self, assets: Iterable[DomainAsset]):
        self._by_fqdn: Dict[str, DomainAsset] = {}
        self._apk_by_fqdn: Dict[str, ApkPayload] = {}
        for asset in assets:
            self._by_fqdn[asset.fqdn] = asset
            if asset.serves_apk:
                self._apk_by_fqdn[asset.fqdn] = _apk_for_host(asset.fqdn)

    def host_alive_on(self, fqdn: str, day: dt.date) -> bool:
        asset = self._by_fqdn.get(fqdn)
        if asset is None:
            return False
        lifetime = stable_hash("host-life:" + fqdn) % _MAX_HOST_LIFETIME_DAYS
        return asset.created_at <= day <= asset.created_at + dt.timedelta(days=lifetime)

    def apk_payloads(self) -> List[ApkPayload]:
        """All payloads any dropper serves (world-side enumeration)."""
        return sorted(self._apk_by_fqdn.values(), key=lambda a: a.sha256)

    def apk_ground_truth(self) -> Dict[str, str]:
        """sha256 -> family, for seeding the VirusTotal file database."""
        return {apk.sha256: apk.family for apk in self._apk_by_fqdn.values()}

    def fetch(
        self, url: Url, device: DeviceProfile, on: dt.date
    ) -> FetchResult:
        """Fetch a (non-shortened) URL as a given device.

        Dropper hosts redirect Android clients to ``?d=s1`` and serve the
        APK; other devices see the phishing page. Dead hosts 404.
        """
        chain = RedirectChain(hops=[url])
        asset = self._by_fqdn.get(url.host)
        if asset is None or not self.host_alive_on(url.host, on):
            return FetchResult(chain=chain, status=404, content_kind="dead")
        apk = self._apk_by_fqdn.get(url.host)
        if apk is not None and device is DeviceProfile.ANDROID:
            drive_by = url.with_path(url.path or "/", query="d=s1")
            chain.append(drive_by)
            return FetchResult(
                chain=chain, status=200, content_kind="apk_download", apk=apk
            )
        if url.is_apk_download and apk is not None:
            return FetchResult(
                chain=chain, status=200, content_kind="apk_download", apk=apk
            )
        return FetchResult(chain=chain, status=200, content_kind="phishing_page")

    def __contains__(self, fqdn: str) -> bool:
        return fqdn in self._by_fqdn
