"""Scammer web hosting: device-dependent serving and APK drive-bys (§6).

The case study found landing pages that fingerprint the client: desktop
browsers get a credential-phishing page, Android devices get redirected to
``?d=s1`` and an automatic APK download. This module serves the world's
:class:`~repro.world.infrastructure.DomainAsset` hosts accordingly, with
page/host takedowns over time, and manufactures the APK payloads (hash +
true malware family) that the VirusTotal file scanner and Euphony label.
"""

from __future__ import annotations

import datetime as dt
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import NotFound
from ..net.url import RedirectChain, Url
from ..types import DeviceProfile
from ..utils.rng import WeightedSampler, stable_hash
from ..world.infrastructure import (
    FUNNEL_FORM_FIELDS,
    FUNNEL_PAGE_KINDS,
    FUNNEL_PAGE_PATHS,
    DomainAsset,
    funnel_blueprint,
)

#: Malware family mix for smishing APKs (Table 19: SMSspy dominates).
APK_FAMILY_WEIGHTS: Dict[str, float] = {
    "SMSspy": 15.0,
    "HQWar": 1.0,
    "Rewardsteal": 1.0,
    "Artemis": 1.0,
}

#: How long a smishing host stays up before takedown, days (heavy-tailed).
_MAX_HOST_LIFETIME_DAYS = 45


@dataclass(frozen=True)
class ApkPayload:
    """One Android package a dropper serves."""

    sha256: str
    family: str
    file_name: str
    size_bytes: int


@dataclass(frozen=True)
class FunnelPage:
    """One page of a multi-step scam funnel."""

    kind: str  # one of FUNNEL_PAGE_KINDS
    url: Url
    form_fields: tuple  # field names the page solicits

    @property
    def has_form(self) -> bool:
        return bool(self.form_fields)


@dataclass(frozen=True)
class FormSubmission:
    """Outcome of posting (synthetic) PII into a funnel page's form."""

    page_kind: str
    accepted: bool
    fields: tuple
    next_page: Optional[FunnelPage] = None

    @property
    def funnel_complete(self) -> bool:
        return self.accepted and self.next_page is None


@dataclass(frozen=True)
class FetchResult:
    """Outcome of fetching a URL with a given device profile."""

    chain: RedirectChain
    status: int
    content_kind: str  # "phishing_page" | "apk_download" | "dead"
    apk: Optional[ApkPayload] = None

    @property
    def is_apk_download(self) -> bool:
        return self.content_kind == "apk_download"


def _apk_for_host(fqdn: str) -> ApkPayload:
    """Deterministically derive the APK payload a dropper host serves."""
    sampler = WeightedSampler(APK_FAMILY_WEIGHTS)

    class _FixedRng:
        """Minimal Random-like shim driven by a stable hash."""

        def __init__(self, seed_text: str):
            self._value = stable_hash(seed_text) / 2**32

        def random(self) -> float:
            return self._value

    family = sampler.sample(_FixedRng("apk-family:" + fqdn))
    digest = hashlib.sha256(("apk:" + fqdn).encode("utf-8")).hexdigest()
    name_index = stable_hash("apk-name:" + fqdn) % 4
    file_name = ("s1.apk", "internet.apk", "PostaOnlineTracking.apk",
                 "update.apk")[name_index]
    size = 1_500_000 + stable_hash("apk-size:" + fqdn) % 6_000_000
    return ApkPayload(sha256=digest, family=family, file_name=file_name,
                      size_bytes=size)


class WebHostService:
    """Serves the smishing hosts the world stood up."""

    def __init__(self, assets: Iterable[DomainAsset]):
        self._by_fqdn: Dict[str, DomainAsset] = {}
        self._apk_by_fqdn: Dict[str, ApkPayload] = {}
        self._takedown_by_fqdn: Dict[str, dt.date] = {}
        for asset in assets:
            self._by_fqdn[asset.fqdn] = asset
            if asset.serves_apk:
                self._apk_by_fqdn[asset.fqdn] = _apk_for_host(asset.fqdn)
            lifetime = (stable_hash("host-life:" + asset.fqdn)
                        % _MAX_HOST_LIFETIME_DAYS)
            self._takedown_by_fqdn[asset.fqdn] = (
                asset.created_at + dt.timedelta(days=lifetime)
            )

    def host_alive_on(self, fqdn: str, day: dt.date) -> bool:
        asset = self._by_fqdn.get(fqdn)
        if asset is None:
            return False
        return asset.created_at <= day <= self._takedown_by_fqdn[fqdn]

    def asset(self, fqdn: str) -> Optional[DomainAsset]:
        """The ground-truth asset behind a hostname, if we host it."""
        return self._by_fqdn.get(fqdn)

    def apk_payloads(self) -> List[ApkPayload]:
        """All payloads any dropper serves (world-side enumeration)."""
        return sorted(self._apk_by_fqdn.values(), key=lambda a: a.sha256)

    def apk_ground_truth(self) -> Dict[str, str]:
        """sha256 -> family, for seeding the VirusTotal file database."""
        return {apk.sha256: apk.family for apk in self._apk_by_fqdn.values()}

    def fetch(
        self, url: Url, device: DeviceProfile, on: dt.date
    ) -> FetchResult:
        """Fetch a (non-shortened) URL as a given device.

        Dropper hosts redirect Android clients to ``?d=s1`` and serve the
        APK; other devices see the phishing page. Dead hosts 404.
        """
        chain = RedirectChain(hops=[url])
        asset = self._by_fqdn.get(url.host)
        if asset is None or not self.host_alive_on(url.host, on):
            return FetchResult(chain=chain, status=404, content_kind="dead")
        apk = self._apk_by_fqdn.get(url.host)
        if apk is not None and device is DeviceProfile.ANDROID:
            drive_by = url.with_path(url.path or "/", query="d=s1")
            chain.append(drive_by)
            return FetchResult(
                chain=chain, status=200, content_kind="apk_download", apk=apk
            )
        if url.is_apk_download and apk is not None:
            return FetchResult(
                chain=chain, status=200, content_kind="apk_download", apk=apk
            )
        return FetchResult(chain=chain, status=200, content_kind="phishing_page")

    # -- multi-step funnels (§6 active investigation) -------------------------

    def funnel_depth(self, fqdn: str) -> int:
        """How many pages this host's scam kit deploys (0 if unknown)."""
        if fqdn not in self._by_fqdn:
            return 0
        depth, _ = funnel_blueprint(fqdn)
        return depth

    def funnel_gate(self, fqdn: str) -> str:
        """Device class the pages beyond the landing are served to."""
        _, gate = funnel_blueprint(fqdn)
        return gate

    def funnel_page(self, fqdn: str, index: int) -> Optional[FunnelPage]:
        """The ``index``-th page of a host's funnel, or None past the end.

        Purely structural — liveness and device gating are the caller's
        (or :meth:`submit_form`'s) concern, like fetching a known path on
        a dead host still names a real page.
        """
        asset = self._by_fqdn.get(fqdn)
        if asset is None:
            return None
        depth, _ = funnel_blueprint(fqdn)
        if not 0 <= index < depth:
            return None
        kind = FUNNEL_PAGE_KINDS[index]
        if kind == "landing":
            url = asset.landing_url
        else:
            url = asset.landing_url.with_path(FUNNEL_PAGE_PATHS[kind])
        return FunnelPage(kind=kind, url=url,
                          form_fields=FUNNEL_FORM_FIELDS[kind])

    def submit_form(
        self,
        fqdn: str,
        page_index: int,
        fields: Dict[str, str],
        device: DeviceProfile,
        on: dt.date,
    ) -> FormSubmission:
        """Post (synthetic) PII into a funnel page's form.

        A live, un-gated host accepts the submission and serves the next
        funnel page — or nothing, when the victim just handed over the
        last thing the kit wanted. Dead hosts and device-gated clients
        are rejected, exactly like the fetch path.
        """
        page = self.funnel_page(fqdn, page_index)
        if page is None or not page.has_form:
            raise NotFound(
                f"{fqdn}: no form at funnel page {page_index}",
                service="webhost",
            )
        submitted = tuple(sorted(fields))
        if not self.host_alive_on(fqdn, on):
            return FormSubmission(page_kind=page.kind, accepted=False,
                                  fields=submitted)
        _, gate = funnel_blueprint(fqdn)
        if gate == "android" and device is not DeviceProfile.ANDROID:
            return FormSubmission(page_kind=page.kind, accepted=False,
                                  fields=submitted)
        if gate == "desktop" and device is not DeviceProfile.DESKTOP:
            return FormSubmission(page_kind=page.kind, accepted=False,
                                  fields=submitted)
        return FormSubmission(
            page_kind=page.kind,
            accepted=True,
            fields=submitted,
            next_page=self.funnel_page(fqdn, page_index + 1),
        )

    def __contains__(self, fqdn: str) -> bool:
        return fqdn in self._by_fqdn
