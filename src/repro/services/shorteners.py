"""URL shortener services: resolution, lifetimes, and takedowns.

§3.3.3 and §7: shorteners hide the phishing destination; once a shortened
URL is taken down (by the service or the scammer) the redirect is lost —
the paper could not recover destinations for dead short URLs, which is
exactly why its §6 case study resolved links in real time. The resolver
therefore answers relative to a query *date*.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import NotFound
from ..net.url import Url
from ..utils.rng import stable_hash
from ..world.infrastructure import SmishingLink

#: The paper's manually curated list of 33 shortening services (§3.3.3).
KNOWN_SHORTENERS: Tuple[str, ...] = (
    "bit.ly", "is.gd", "cutt.ly", "tinyurl.com", "bit.do", "shrtco.de",
    "rb.gy", "t.ly", "bitly.ws", "t.co", "ow.ly", "buff.ly", "rebrand.ly",
    "shorturl.at", "tiny.cc", "v.gd", "qr.ae", "s.id", "lnkd.in", "soo.gd",
    "clck.ru", "goo.su", "u.to", "x.gd", "me2.do", "han.gl", "zpr.io",
    "cli.re", "kutt.it", "t2m.io", "gg.gg", "rotf.lol", "chilp.it",
)

#: wa.me is a conversation starter, not a shortener (§4.2 counts it apart).
WHATSAPP_HOST = "wa.me"


def is_shortener_host(host: str) -> bool:
    """Whether a host belongs to a known shortening service."""
    return host.lower() in KNOWN_SHORTENERS


def shortener_for_url(url: Url) -> Optional[str]:
    """The shortening service a URL uses, if any."""
    return url.host if is_shortener_host(url.host) else None


@dataclass(frozen=True)
class ShortLinkRecord:
    """One shortened link's server-side state."""

    service: str
    token: str
    destination: Url
    created_at: dt.date
    dead_after: dt.date

    def alive_on(self, day: dt.date) -> bool:
        return self.created_at <= day <= self.dead_after


class ShortenerResolver:
    """Resolves short URLs to destinations, honouring takedowns.

    Lifetimes are short and heavy-tailed (minutes to a few days in the
    wild, §2); we model per-link lifetimes of 0-21 days with most links
    dead within a week, deterministic per token.
    """

    def __init__(self, links: Iterable[SmishingLink],
                 created_dates: Optional[Dict[str, dt.date]] = None):
        self._records: Dict[Tuple[str, str], ShortLinkRecord] = {}
        for link in links:
            if not link.is_shortened:
                continue
            created = (created_dates or {}).get(
                link.short_token or "", link.destination.created_at
            )
            lifetime_roll = stable_hash("lifetime:" + (link.short_token or "")) % 100
            if lifetime_roll < 55:
                lifetime = lifetime_roll % 3  # dead within days
            elif lifetime_roll < 90:
                lifetime = 3 + lifetime_roll % 5
            else:
                lifetime = 8 + lifetime_roll % 14
            destination = Url(
                scheme="https" if link.destination.certificates else "http",
                host=link.destination.fqdn,
                path="/",
            )
            record = ShortLinkRecord(
                service=link.shortener or "",
                token=link.short_token or "",
                destination=destination,
                created_at=created,
                dead_after=created + dt.timedelta(days=lifetime),
            )
            self._records[(record.service, record.token)] = record

    def __len__(self) -> int:
        return len(self._records)

    def resolve(self, url: Url, on: dt.date) -> Url:
        """Follow one shortened URL on a given date.

        Raises :class:`NotFound` for unknown tokens and for links already
        taken down — mirroring an HTTP 404/410 from the service.
        """
        service = shortener_for_url(url)
        if service is None:
            raise NotFound(f"{url.host} is not a known shortener",
                           service="shortener")
        token = url.path.lstrip("/")
        record = self._records.get((service, token))
        if record is None:
            raise NotFound(f"unknown short token: {token!r}",
                           service=service)
        if not record.alive_on(on):
            raise NotFound(f"short link {token!r} has been taken down",
                           service=service)
        return record.destination

    def try_resolve(self, url: Url, on: dt.date) -> Optional[Url]:
        try:
            return self.resolve(url, on)
        except NotFound:
            return None

    def records_for_service(self, service: str) -> List[ShortLinkRecord]:
        return [rec for (svc, _), rec in self._records.items() if svc == service]
