"""AndroZoo dataset simulator (§3.3.5).

AndroZoo is a research corpus of >25M Android apps with AV analyses. The
paper checks its 18 freshly collected APK hashes against the corpus and
finds none — smishing droppers are too new/targeted to have been crawled.
We model the corpus as a large membership set of *other* hashes so that
the case study's lookup path (check AndroZoo first, fall back to a live
VirusTotal submission) is exercised faithfully.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set


@dataclass(frozen=True)
class AndroZooEntry:
    """One corpus row: hash plus summary AV metadata."""

    sha256: str
    vt_detection: int
    market: str


class AndroZooService:
    """Hash-membership lookups against the simulated corpus."""

    def __init__(self, corpus_size: int = 50_000, *, extra: Optional[Dict[str, AndroZooEntry]] = None):
        # The corpus holds deterministic synthetic hashes; real dropper
        # hashes (derived from host names) never collide with these.
        self._entries: Dict[str, AndroZooEntry] = {}
        for index in range(corpus_size):
            digest = hashlib.sha256(f"androzoo-corpus-{index}".encode()).hexdigest()
            self._entries[digest] = AndroZooEntry(
                sha256=digest,
                vt_detection=index % 40,
                market=("play.google.com", "anzhi", "appchina")[index % 3],
            )
        if extra:
            self._entries.update(extra)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sha256: str) -> bool:
        return sha256 in self._entries

    def lookup(self, sha256: str) -> Optional[AndroZooEntry]:
        """Return the corpus entry or None when the hash is unknown."""
        return self._entries.get(sha256)

    def lookup_batch(self, hashes: Iterable[str]) -> Dict[str, Optional[AndroZooEntry]]:
        return {sha: self.lookup(sha) for sha in hashes}

    def known_hashes(self, limit: int = 100) -> Set[str]:
        """A sample of corpus hashes (for tests)."""
        result: Set[str] = set()
        for sha in self._entries:
            result.add(sha)
            if len(result) >= limit:
                break
        return result
