"""The bounded ingest queue: accepted-but-unprocessed reports.

A deliberately small structure with one non-negotiable invariant: depth
never exceeds capacity, ever (``tests/test_properties.py`` pins it).
Unbounded queues are how intake services die under load — memory grows
until the process is killed at the worst possible moment, taking every
queued report with it. Bounding the queue moves the overload decision to
the front door, where it can be *answered* (429/503 + retry-after)
instead of suffered.

Items are flat, picklable value objects: a durable commit persists the
whole queue so a killed server resumes with exactly the accepted-but-
unprocessed work it had, and loses nothing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class QueueItem:
    """One accepted report waiting for a processing batch.

    ``post_index`` references the world's deterministic post list (the
    load generator cycles it), not the Post object itself — the item
    must survive pickling and re-binding to a freshly rebuilt world.
    ``deadline`` is the absolute simulated instant the submitting
    reporter stops caring; a batch drops expired items at dequeue and
    propagates the tightest surviving deadline into enrichment retries.
    """

    index: int
    request_id: str
    reporter: str
    post_index: int
    enqueued_at: float
    deadline: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueueItem":
        return cls(**payload)


class BoundedQueue:
    """FIFO of :class:`QueueItem` with a hard capacity bound."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self._items: deque = deque()
        self.max_depth = 0
        self.offered = 0
        self.refused = 0

    @property
    def depth(self) -> int:
        return len(self._items)

    def offer(self, item: QueueItem) -> bool:
        """Enqueue unless full. Never grows past capacity."""
        self.offered += 1
        if len(self._items) >= self.capacity:
            self.refused += 1
            return False
        self._items.append(item)
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        return True

    def take(self, n: int) -> List[QueueItem]:
        """Dequeue up to ``n`` items in FIFO order."""
        taken: List[QueueItem] = []
        while self._items and len(taken) < n:
            taken.append(self._items.popleft())
        return taken

    def items(self) -> Tuple[QueueItem, ...]:
        return tuple(self._items)

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "items": [item.to_dict() for item in self._items],
            "max_depth": self.max_depth,
            "offered": self.offered,
            "refused": self.refused,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._items = deque(QueueItem.from_dict(payload)
                            for payload in state["items"])
        self.max_depth = int(state["max_depth"])
        self.offered = int(state["offered"])
        self.refused = int(state["refused"])
