"""The seeded load generator: tens of thousands of bursty reporters.

The paper's intake channels (7726 forwarding, forum posts, web forms)
see traffic that is anything but uniform: a flash campaign produces a
wall of near-simultaneous reports, then hours of quiet. The generator
reproduces that shape *deterministically*: the full arrival schedule —
who submits, when, with how much patience — is a pure function of
``(seed, profile, requests, reporters)``, so a killed server can rebuild
the exact remaining schedule at resume time, and two runs with the same
spec are byte-identical end to end.

Reporter identity follows a Pareto draw (a hot head of prolific
reporters over a long quiet tail), which is what gives the per-reporter
token buckets something to push back on. Submitted posts cycle the
world's reporter output with wrap-around, so a long run re-submits
content it has already seen — deliberate stress on the dedup ledger's
exactly-once-per-content guarantee.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..utils.rng import derive

#: The named arrival shapes behind ``repro serve --load-profile``.
LOAD_PROFILES = ("steady", "burst", "spike")


@dataclass(frozen=True)
class LoadSpec:
    """One deterministic load scenario (persisted in the serve manifest)."""

    profile: str = "burst"
    requests: int = 2000
    reporters: int = 500
    seed: int = 7726
    #: Reporter patience (min, max) in simulated seconds; a report not
    #: processed within its drawn budget times out in the queue.
    budget_range: Tuple[float, float] = (180.0, 900.0)

    def __post_init__(self) -> None:
        if self.profile not in LOAD_PROFILES:
            raise ConfigurationError(
                f"unknown load profile {self.profile!r}; choose from "
                f"{LOAD_PROFILES}"
            )
        if self.requests < 1 or self.reporters < 1:
            raise ConfigurationError(
                "load spec needs at least one request and one reporter"
            )
        low, high = self.budget_range
        if low <= 0 or high < low:
            raise ConfigurationError(
                f"budget_range wants 0 < min <= max, got {self.budget_range}"
            )

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["budget_range"] = list(self.budget_range)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LoadSpec":
        budget = payload.get("budget_range", (180.0, 900.0))
        return cls(profile=str(payload["profile"]),
                   requests=int(payload["requests"]),
                   reporters=int(payload["reporters"]),
                   seed=int(payload["seed"]),
                   budget_range=(float(budget[0]), float(budget[1])))


@dataclass(frozen=True)
class Arrival:
    """One scheduled submission."""

    index: int
    at: float  # absolute simulated seconds
    reporter: str
    post_index: int
    budget: Optional[float]  # reporter patience in simulated seconds

    @property
    def request_id(self) -> str:
        return f"q{self.index:07d}"


def _reporter_index(rng, reporters: int) -> int:
    """Pareto-shaped reporter choice: low indices are hot."""
    draw = int(rng.paretovariate(1.3)) - 1
    return draw % reporters


def generate_schedule(spec: LoadSpec, *, n_posts: int) -> List[Arrival]:
    """The full arrival schedule for one load spec.

    * ``steady`` — Poisson arrivals, mean 5 s apart: the calm baseline
      a healthy service never sheds under.
    * ``burst``  — alternating dense runs (50–200 arrivals ~0.05–0.2 s
      apart) and 40–90 s quiet gaps: sustained bursts outrun the drain
      rate and exercise the full shed-and-recover cycle.
    * ``spike``  — steady traffic with one wall of arrivals in the
      middle fifth of the run: a single flash campaign.
    """
    if n_posts < 1:
        raise ConfigurationError("cannot generate load over an empty world")
    rng = derive(spec.seed,
                 f"serve-load:{spec.profile}:{spec.requests}:{spec.reporters}")
    arrivals: List[Arrival] = []
    now = 0.0
    burst_left = 0
    spike_start = spec.requests * 2 // 5
    spike_end = spec.requests * 3 // 5
    for index in range(spec.requests):
        if spec.profile == "steady":
            now += rng.expovariate(1.0 / 5.0)
        elif spec.profile == "burst":
            if burst_left <= 0:
                now += rng.uniform(40.0, 90.0)
                burst_left = rng.randint(50, 200)
            else:
                now += rng.uniform(0.05, 0.2)
            burst_left -= 1
        else:  # spike
            if spike_start <= index < spike_end:
                now += rng.uniform(0.01, 0.05)
            else:
                now += rng.expovariate(1.0 / 8.0)
        reporter = f"rep-{_reporter_index(rng, spec.reporters):05d}"
        budget = round(rng.uniform(*spec.budget_range), 3)
        arrivals.append(Arrival(
            index=index,
            at=round(now, 3),
            reporter=reporter,
            post_index=index % n_posts,
            budget=budget,
        ))
    return arrivals
