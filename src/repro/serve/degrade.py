"""The degradation controller: the service's overload state machine.

Backpressure from the enrichment tier has to change the service's
*behaviour*, not just a dashboard colour. The controller folds four
signals into one mode:

* **queue watermarks** — depth at or above the high watermark latches
  ``shedding`` (reject new submissions with retry-after hints) until
  depth falls back to the low watermark. The hysteresis gap prevents
  mode flapping at the boundary.
* **circuit breakers** — any enrichment breaker not CLOSED means the
  tier is failing or still probing its way back; the service runs
  ``degraded`` (annotate-only: accepted reports get the cheap,
  cache-friendly annotation pass now and skip the expensive per-URL /
  per-sender battery). The half-open probe/success counters from
  :meth:`CircuitBreaker.snapshot` make the reason string distinguish
  "recovering" from "still failing".
* **meter budgets** — a metered service whose remaining lifetime quota
  falls under ``quota_floor`` would burn its last calls on a backlog;
  degrade before it hits zero.
* **quarantine pressure** — an optional hostile-input signal from the
  sanitizer (:mod:`repro.core.quarantine`): when a recent batch was
  mostly diverted, the intake is likely under a coordinated poisoning
  attempt and enrichment spend is throttled to annotate-only until the
  stream runs clean again.

Precedence: ``draining > shedding > degraded > healthy``. Every change
is a :class:`ModeTransition` with the simulated time and the reason —
the mode history is a research artefact (`repro stats` renders it), not
a log line.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional


class ServeMode(str, enum.Enum):
    """What the intake service is currently willing to do."""

    HEALTHY = "healthy"      # accept and fully enrich
    DEGRADED = "degraded"    # accept, annotate-only enrichment
    SHEDDING = "shedding"    # reject new work until backlog clears
    DRAINING = "draining"    # shutting down: reject new, finish queued


@dataclass(frozen=True)
class ModeTransition:
    """One mode change, with its cause, on the simulated clock."""

    at: float
    from_mode: str
    to_mode: str
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class DegradationController:
    """Derives the mode from queue depth, breakers, and meter budgets."""

    def __init__(self, clock, *, high_watermark: int, low_watermark: int,
                 breakers: Dict[str, Any], meters: Dict[str, Any],
                 quota_floor: float = 0.1,
                 quarantine_pressure: Optional[
                     Callable[[], Optional[str]]] = None):
        if low_watermark >= high_watermark:
            raise ValueError("low watermark must sit below the high one")
        self.clock = clock
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.quota_floor = quota_floor
        self._breakers = breakers
        self._meters = meters
        #: Optional hostile-input signal: returns a reason string while
        #: the sanitizer is diverting an abnormal share of accepted
        #: reports (a poisoning attempt in progress), None when calm.
        self._quarantine_pressure = quarantine_pressure
        self.mode = ServeMode.HEALTHY
        self.transitions: List[ModeTransition] = []
        self._shed_latched = False
        self._draining = False

    # -- signal evaluation ----------------------------------------------------

    def _pressure(self) -> Optional[str]:
        """A reason string when the enrichment tier is under pressure."""
        for name in sorted(self._breakers):
            breaker = self._breakers[name]
            snap = breaker.snapshot()
            if snap["state"] != "closed":
                return (f"breaker {name} {snap['state']} "
                        f"({snap['half_open_probes']} probes, "
                        f"{snap['half_open_successes']} ok)")
        for name in sorted(self._meters):
            meter = self._meters[name]
            if meter.quota is None:
                continue
            remaining = meter.remaining_quota
            if remaining / meter.quota < self.quota_floor:
                return (f"{name} quota nearly exhausted "
                        f"({remaining}/{meter.quota} left)")
        if self._quarantine_pressure is not None:
            reason = self._quarantine_pressure()
            if reason is not None:
                return reason
        return None

    def refresh(self, queue_depth: int) -> ServeMode:
        """Re-derive the mode; records a transition when it changes."""
        if queue_depth >= self.high_watermark:
            self._shed_latched = True
        elif queue_depth <= self.low_watermark:
            self._shed_latched = False
        if self._draining:
            target, reason = ServeMode.DRAINING, "drain requested"
        elif self._shed_latched:
            target = ServeMode.SHEDDING
            reason = (f"queue depth {queue_depth} breached high watermark "
                      f"{self.high_watermark}")
        else:
            pressure = self._pressure()
            if pressure is not None:
                target, reason = ServeMode.DEGRADED, pressure
            else:
                target = ServeMode.HEALTHY
                reason = (f"recovered: queue depth {queue_depth} at/below "
                          f"low watermark {self.low_watermark}, enrichment "
                          f"tier clear")
        if target is not self.mode:
            self.transitions.append(ModeTransition(
                at=round(self.clock.now, 3),
                from_mode=self.mode.value,
                to_mode=target.value,
                reason=reason,
            ))
            self.mode = target
        return self.mode

    # -- drain lifecycle ------------------------------------------------------

    def begin_drain(self, queue_depth: int) -> None:
        self._draining = True
        self.refresh(queue_depth)

    def end_drain(self) -> None:
        self._draining = False
        self.refresh(0)

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode.value,
            "shed_latched": self._shed_latched,
            "draining": self._draining,
            "transitions": [t.to_dict() for t in self.transitions],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.mode = ServeMode(state["mode"])
        self._shed_latched = bool(state["shed_latched"])
        self._draining = bool(state["draining"])
        self.transitions = [ModeTransition(**payload)
                            for payload in state["transitions"]]
