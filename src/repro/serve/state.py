"""The intake service's durable state: everything a resume needs.

One :class:`ServeState` accumulates the products of every processed
batch — the growing dataset, enrichment maps, structured gap/rejection
ledgers, per-request statuses, latency/queue-depth digests — plus the
progress cursor (``arrival_index``) a resume continues from. The commit
protocol in :mod:`repro.serve.service` pickles the whole thing (with the
admission/controller/queue/registry state alongside) under a sha-bound
manifest, exactly the discipline :mod:`repro.stream` uses: a crash at
any instant leaves either the previous commit or the new one, never a
torn mixture.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

from ..core.enrichment import (
    EnrichmentGap,
    SenderEnrichment,
    UrlEnrichment,
)
from ..core.dataset import SmishingRecord
from ..nlp.annotator import Annotation
from ..obs.profile import PercentileDigest
from ..sms.message import AnnotationLabels
from .admission import AdmissionRejection


@dataclass
class ServeState:
    """Accumulated products + progress cursor of one intake service."""

    records: List[SmishingRecord] = field(default_factory=list)
    urls: Dict[str, UrlEnrichment] = field(default_factory=dict)
    senders: Dict[str, SenderEnrichment] = field(default_factory=dict)
    annotations: Dict[str, AnnotationLabels] = field(default_factory=dict)
    raw_annotations: Dict[str, Annotation] = field(default_factory=dict)
    gaps: List[EnrichmentGap] = field(default_factory=list)
    rejections: List[AdmissionRejection] = field(default_factory=list)
    #: request id -> "queued" | "done" | "rejected" | "timed_out"
    statuses: Dict[str, str] = field(default_factory=dict)
    #: duplicate record id -> canonical record id (dedup inheritance)
    duplicate_of: Dict[str, str] = field(default_factory=dict)

    #: Progress cursor: the highest arrival index fully handled. A
    #: resume continues from ``arrival_index + 1``.
    arrival_index: int = -1
    next_record_index: int = 0

    submitted: int = 0
    processed: int = 0
    timed_out: int = 0
    #: Accepted reports the sanitizer diverted at curation time.
    quarantined: int = 0
    batches: int = 0
    degraded_batches: int = 0
    commits: int = 0

    #: Queue depth sampled after every handled arrival.
    queue_depths: PercentileDigest = field(default_factory=PercentileDigest)
    #: Submit-to-processed simulated seconds, one sample per report.
    latencies: PercentileDigest = field(default_factory=PercentileDigest)

    # -- persistence ----------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A picklable snapshot (rich objects ride the pickle whole —
        same trade the stream state makes; the manifest digest guards
        integrity)."""
        return {
            "records": self.records,
            "urls": self.urls,
            "senders": self.senders,
            "annotations": self.annotations,
            "raw_annotations": self.raw_annotations,
            "gaps": self.gaps,
            "rejections": self.rejections,
            "statuses": self.statuses,
            "duplicate_of": self.duplicate_of,
            "arrival_index": self.arrival_index,
            "next_record_index": self.next_record_index,
            "counters": {
                "submitted": self.submitted,
                "processed": self.processed,
                "timed_out": self.timed_out,
                "quarantined": self.quarantined,
                "batches": self.batches,
                "degraded_batches": self.degraded_batches,
                "commits": self.commits,
            },
            "queue_depths": list(self.queue_depths._values),
            "latencies": list(self.latencies._values),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ServeState":
        counters = payload["counters"]
        return cls(
            records=list(payload["records"]),
            urls=dict(payload["urls"]),
            senders=dict(payload["senders"]),
            annotations=dict(payload["annotations"]),
            raw_annotations=dict(payload["raw_annotations"]),
            gaps=list(payload["gaps"]),
            rejections=list(payload["rejections"]),
            statuses=dict(payload["statuses"]),
            duplicate_of=dict(payload["duplicate_of"]),
            arrival_index=int(payload["arrival_index"]),
            next_record_index=int(payload["next_record_index"]),
            submitted=int(counters["submitted"]),
            processed=int(counters["processed"]),
            timed_out=int(counters["timed_out"]),
            quarantined=int(counters.get("quarantined", 0)),
            batches=int(counters["batches"]),
            degraded_batches=int(counters["degraded_batches"]),
            commits=int(counters["commits"]),
            queue_depths=PercentileDigest(payload["queue_depths"]),
            latencies=PercentileDigest(payload["latencies"]),
        )

    # -- reporting ------------------------------------------------------------

    def rejection_rows(self) -> List[Dict[str, Any]]:
        return [asdict(rejection) for rejection in self.rejections]
