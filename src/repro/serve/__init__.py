"""repro.serve — the overload-safe report-intake service.

Turns the batch/stream pipeline into a long-running, request-driven
system: an HTTP-shaped submit/status/query surface, a bounded ingest
queue behind token-bucket admission control, a degradation controller
fed by the enrichment tier's breakers and meter budgets, deadline
propagation into every retried service call, and a commit/resume
protocol that keeps processing exactly-once across kills.
"""

from .admission import (
    REJECTION_REASONS,
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejection,
    ReporterBucket,
)
from .degrade import DegradationController, ModeTransition, ServeMode
from .harness import (
    charged_calls,
    run_killed_then_resumed,
    run_to_completion,
    serve_fingerprint,
)
from .load import LOAD_PROFILES, Arrival, LoadSpec, generate_schedule
from .queue import BoundedQueue, QueueItem
from .service import (
    FRONT_DOOR_REASONS,
    SERVE_MANIFEST_NAME,
    IntakeService,
    Request,
    Response,
    ServeConfig,
)
from .state import ServeState

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejection",
    "Arrival",
    "BoundedQueue",
    "DegradationController",
    "FRONT_DOOR_REASONS",
    "IntakeService",
    "LOAD_PROFILES",
    "LoadSpec",
    "ModeTransition",
    "QueueItem",
    "REJECTION_REASONS",
    "ReporterBucket",
    "Request",
    "Response",
    "SERVE_MANIFEST_NAME",
    "ServeConfig",
    "ServeMode",
    "ServeState",
    "charged_calls",
    "generate_schedule",
    "run_killed_then_resumed",
    "run_to_completion",
    "serve_fingerprint",
]
