"""The intake service: a long-running, request-driven pipeline front end.

:class:`IntakeService` turns the batch/stream machinery into a server
that stays correct when demand exceeds capacity. The request surface is
HTTP-shaped (method + path + JSON body, 202/404/429/503 + Retry-After)
but driven deterministically in-process: the seeded load generator
builds :class:`~repro.serve.load.Arrival` schedules and pushes them
through :meth:`dispatch`, so tens of thousands of bursty reporters cost
no sockets and reproduce byte-for-byte.

The lifecycle of one submission::

    POST /v1/reports ── admission ──> bounded queue ── batch drain ──>
      curate -> dedup ledger -> enrich (deadline-capped, mode-aware)
        -> ServeState (records, annotations, gaps, statuses, digests)

Overload changes behaviour through the
:class:`~repro.serve.degrade.DegradationController`: open breakers or
near-exhausted meter quotas put the service in *degraded* (annotate-only
enrichment); queue watermarks latch *shedding* (reject + retry-after)
until the backlog clears; *draining* finishes queued work and rejects
everything new.

Durability follows the stream layer's commit discipline: every
``commit_every`` arrivals (and at drain), the full service state —
dataset, queue contents, admission buckets, controller history, dedup
ledger, and the clock/meter/breaker/fault-proxy registry — is pickled
under a sha-bound ``SERVE.json`` manifest. A killed server resumes from
the last commit and *replays* the deterministic schedule from there:
in-memory effects past the commit died with the process, the restored
meters re-charge identically, and the final state is byte-equal to an
uninterrupted run — no accepted report lost, none double-processed,
zero duplicate charges (``tests/test_serve_equivalence.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..checkpoint.state import (
    BREAKER_PREFIX,
    CLOCK_KEY,
    METER_PREFIX,
    PROXY_PREFIX,
)
from ..core.collection import _report_from_post
from ..core.config import PipelineConfig
from ..core.curation import Curator
from ..core.dataset import SmishingDataset
from ..core.quarantine import Sanitizer
from ..core.enrichment import Enricher, EnrichedDataset
from ..core.pipeline import _observed_meters, build_enrichment_services
from ..errors import CheckpointError, ConfigurationError, SimulatedCrash
from ..exec import ExecutionEngine, ExecutionPolicy
from ..faults import FaultPlan, FaultProxy, build_fault_plan, inject_faults
from ..imaging.vision_openai import OpenAiVisionExtractor
from ..obs import Telemetry, ensure_telemetry
from ..resilience import CircuitBreaker, RetryPolicy
from ..stream.ledger import DedupLedger
from ..stream.persist import atomic_write_json, atomic_write_pickle, \
    read_json, read_pickle
from ..stream.runner import _scenario_from_dict, _scenario_to_dict
from ..utils.rng import derive
from ..world.scenario import ScenarioConfig, World, build_world
from .admission import AdmissionController, AdmissionPolicy
from .degrade import DegradationController, ServeMode
from .load import Arrival, LoadSpec, generate_schedule
from .queue import BoundedQueue, QueueItem
from .state import ServeState

#: The serve directory's manifest file name.
SERVE_MANIFEST_NAME = "SERVE.json"
SERVE_STATE_NAME = "state.pkl"
SERVE_FORMAT_VERSION = 1

#: Front-door rejection reasons (vs ``deadline``, which is post-accept).
FRONT_DOOR_REASONS = ("rate_limited", "queue_full", "shedding", "draining")


@dataclass(frozen=True)
class ServeConfig:
    """The service's capacity and cadence knobs."""

    queue_capacity: int = 512
    batch_size: int = 32
    #: Simulated seconds between batch drains.
    drain_interval: float = 20.0
    #: Shed latch engages at ``high`` × capacity, releases at ``low`` ×.
    shed_high_fraction: float = 0.9
    shed_low_fraction: float = 0.5
    #: Arrivals between durable commits (with a ``serve_dir``).
    commit_every: int = 500
    #: Degrade when a metered service's remaining quota fraction dips
    #: under this floor.
    quota_floor: float = 0.1
    #: Per-reporter token bucket (see AdmissionPolicy).
    reporter_rate: float = 1.0 / 30.0
    reporter_burst: float = 4.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch size must be at least 1")
        if self.drain_interval <= 0:
            raise ConfigurationError("drain interval must be positive")
        if not 0.0 < self.shed_low_fraction < self.shed_high_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 < shed_low_fraction < shed_high_fraction <= 1"
            )
        if self.commit_every < 1:
            raise ConfigurationError("commit_every must be at least 1")

    @property
    def high_watermark(self) -> int:
        return max(2, int(self.queue_capacity * self.shed_high_fraction))

    @property
    def low_watermark(self) -> int:
        return max(1, min(self.high_watermark - 1,
                          int(self.queue_capacity * self.shed_low_fraction)))

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServeConfig":
        return cls(**payload)


@dataclass(frozen=True)
class Request:
    """One HTTP-shaped request (no sockets; the load generator builds
    these in-process)."""

    method: str
    path: str
    body: Optional[Dict[str, Any]] = None


@dataclass
class Response:
    """The service's answer: status code, JSON body, headers."""

    status: int
    body: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)


class IntakeService:
    """One overload-safe report-intake service over one world."""

    def __init__(self, world: World, *, load: LoadSpec,
                 config: Optional[ServeConfig] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 execution: Optional[ExecutionPolicy] = None,
                 telemetry: Optional[Telemetry] = None,
                 serve_dir: Optional[Path] = None,
                 kill_at: Optional[int] = None,
                 cli: Optional[Dict[str, Any]] = None):
        self.world = world
        self.clock = world.clock
        self.load = load
        self.config = config or ServeConfig()
        self.policy = execution or ExecutionPolicy()
        self.telemetry = ensure_telemetry(telemetry)
        self.telemetry.tracer.bind_clock(world.clock)
        self.serve_dir = Path(serve_dir) if serve_dir is not None else None
        self._kill_at = kill_at
        self._cli = dict(cli) if cli else {}
        self._plan = (fault_plan.without_crash_points()
                      if fault_plan is not None else None)
        if (self.serve_dir is not None and self._plan is not None
                and not self._plan.is_empty and self._plan.profile is None):
            raise ConfigurationError(
                "a durable serve session needs a *named* fault profile "
                "(hand-built plans cannot be rebuilt at resume time)"
            )

        #: Session-wide resources (one battery, one cache, one breaker
        #: set), fault-wrapped once for the whole service lifetime so
        #: call-indexed fault rules see a single continuous counter.
        services = build_enrichment_services(world)
        if self._plan is not None and not self._plan.is_empty:
            services, _ = inject_faults(services, world.forums, self._plan,
                                        clock=world.clock)
        self.services = services
        self._engine = ExecutionEngine(self.policy)
        self.cache = self._engine.build_cache()
        self.breakers: Dict[str, CircuitBreaker] = {}

        #: Deterministic submission material: the world's posts in their
        #: canonical order, cycled by the load schedule.
        self._posts = world.reporter_output.all_posts()
        self._schedule: List[Arrival] = generate_schedule(
            load, n_posts=len(self._posts))

        self.state = ServeState()
        self.ledger = DedupLedger()
        self.queue = BoundedQueue(self.config.queue_capacity)
        self.admission = AdmissionController(
            AdmissionPolicy(reporter_rate=self.config.reporter_rate,
                            reporter_burst=self.config.reporter_burst),
            self.clock,
        )
        # Single source of truth for the rejection ledger: the durable
        # state owns the list, the admission controller appends to it.
        self.admission.rejections = self.state.rejections
        #: One session-lifetime sanitizer: its flood/cluster counters
        #: latch *across* batches (a reporter cannot dodge flood
        #: detection by spreading copies over drains) and survive a
        #: resume via the commit payload.
        self._sanitizer = Sanitizer(stage="serve")
        #: Sanitizer share of the most recent processed batch — the
        #: quarantine-pressure signal the controller reads.
        self._last_batch_quarantine_rate = 0.0
        self.controller = DegradationController(
            self.clock,
            high_watermark=self.config.high_watermark,
            low_watermark=self.config.low_watermark,
            breakers=self.breakers,
            meters=self.services.meters(),
            quota_floor=self.config.quota_floor,
            quarantine_pressure=self._quarantine_pressure,
        )
        seed = world.config.seed
        self._vision = OpenAiVisionExtractor(
            derive(seed, "pipeline-vision"),
            miss_rate=PipelineConfig().vision_miss_rate,
            stable_seed=seed,
        )
        self._retry_policy = RetryPolicy(seed=seed)
        #: Absolute sim time of the next scheduled batch drain (None
        #: while the queue is empty). Part of the committed state.
        self._next_due: Optional[float] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, scenario: Optional[ScenarioConfig] = None, *,
               load: Optional[LoadSpec] = None,
               config: Optional[ServeConfig] = None,
               fault_plan: Optional[FaultPlan] = None,
               execution: Optional[ExecutionPolicy] = None,
               telemetry_factory=None,
               serve_dir: Optional[Path] = None,
               kill_at: Optional[int] = None,
               cli: Optional[Dict[str, Any]] = None) -> "IntakeService":
        """Start a fresh service (``repro serve``).

        With a ``serve_dir`` the directory must not already hold a
        session; the manifest is persisted before the first arrival so
        even an immediate crash leaves a resumable directory.
        """
        scenario = scenario or ScenarioConfig()
        world = build_world(scenario)
        spec = load or LoadSpec(seed=scenario.seed)
        telemetry = (telemetry_factory(world) if telemetry_factory is not None
                     else None)
        service = cls(world, load=spec, config=config, fault_plan=fault_plan,
                      execution=execution, telemetry=telemetry,
                      serve_dir=serve_dir, kill_at=kill_at, cli=cli)
        if service.serve_dir is not None:
            manifest = service.serve_dir / SERVE_MANIFEST_NAME
            if manifest.exists():
                raise ConfigurationError(
                    f"{service.serve_dir} already holds a serve session; "
                    f"continue it with `repro serve --resume --serve-dir "
                    f"{service.serve_dir}`"
                )
            service.serve_dir.mkdir(parents=True, exist_ok=True)
            service._persist_manifest(state_ref=None)
        return service

    @classmethod
    def load(cls, serve_dir: Path, *, telemetry_factory=None,
             kill_at: Optional[int] = None) -> "IntakeService":
        """Reopen a killed (or drained) service from its last commit.

        Rebuilds the world and the deterministic load schedule from the
        manifest, restores the committed state — queue contents,
        admission buckets, controller history, dedup ledger, and the
        clock/meter/breaker/fault-proxy registry — and is then ready to
        continue from ``arrival_index + 1``. Injected kills are never
        inherited: a resume only crashes again if *this* call asks to.
        """
        serve_dir = Path(serve_dir)
        manifest_path = serve_dir / SERVE_MANIFEST_NAME
        if not manifest_path.is_file():
            raise ConfigurationError(
                f"{serve_dir} holds no {SERVE_MANIFEST_NAME}; nothing to "
                f"resume"
            )
        manifest = read_json(manifest_path)
        if manifest.get("version") != SERVE_FORMAT_VERSION:
            raise CheckpointError(
                f"serve manifest version {manifest.get('version')!r} is "
                f"not supported (want {SERVE_FORMAT_VERSION})"
            )
        scenario = _scenario_from_dict(manifest["scenario"])
        world = build_world(scenario)
        faults = manifest.get("faults") or {}
        fault_plan = None
        if faults.get("profile"):
            fault_plan = build_fault_plan(faults["profile"],
                                          seed=int(faults["seed"]))
        telemetry = (telemetry_factory(world) if telemetry_factory is not None
                     else None)
        service = cls(
            world,
            load=LoadSpec.from_dict(manifest["load"]),
            config=ServeConfig.from_dict(manifest["config"]),
            fault_plan=fault_plan,
            execution=ExecutionPolicy(**manifest["execution"]),
            telemetry=telemetry,
            serve_dir=serve_dir,
            kill_at=kill_at,
            cli=manifest.get("cli") or {},
        )
        if manifest.get("state_file"):
            payload = read_pickle(
                serve_dir / manifest["state_file"],
                expected_sha256=manifest.get("state_sha256", ""),
            )
            service.state = ServeState.from_payload(payload["state"])
            service.admission.rejections = service.state.rejections
            service.admission.restore_state(payload["admission"])
            service.controller.restore_state(payload["controller"])
            service.queue.restore_state(payload["queue"])
            service.ledger = DedupLedger.from_dict(payload["ledger"])
            if payload.get("sanitizer"):
                service._sanitizer.restore_state(payload["sanitizer"])
            service._next_due = payload["next_due"]
            if service.cache is not None:
                service.cache.seed(payload.get("cache_entries", ()))
            service._restore_registry(payload.get("registry_state", {}))
        return service

    # -- the registry: clock, meters, breakers, fault proxies -----------------

    def _registry_objects(self) -> Dict[str, Any]:
        objects: Dict[str, Any] = {CLOCK_KEY: self.clock}
        for name, meter in self.services.meters().items():
            objects[METER_PREFIX + name] = meter
        for name, breaker in self.breakers.items():
            objects[BREAKER_PREFIX + name] = breaker
        # Serve wraps services once for its whole lifetime, so proxy
        # call counters are continuous session state (unlike stream's
        # per-epoch proxies) and must survive a resume for call-indexed
        # fault rules to fire at the same calls.
        for field_name in ("hlr", "whois", "crtsh", "passivedns", "ipinfo",
                           "virustotal", "gsb", "openai"):
            service_obj = getattr(self.services, field_name)
            if isinstance(service_obj, FaultProxy):
                objects[PROXY_PREFIX + service_obj.meter.service] = service_obj
        return objects

    def _capture_registry(self) -> Dict[str, Dict[str, Any]]:
        return {key: obj.state_dict()
                for key, obj in self._registry_objects().items()}

    def _restore_registry(self, state: Dict[str, Dict[str, Any]]) -> None:
        objects = self._registry_objects()
        for key, value in state.items():
            obj = objects.get(key)
            if obj is not None:
                obj.restore_state(value)
            elif key.startswith(BREAKER_PREFIX):
                name = key[len(BREAKER_PREFIX):]
                breaker = CircuitBreaker(
                    name, self.clock,
                    observer=self.telemetry.breaker_hook(),
                )
                breaker.restore_state(value)
                self.breakers[name] = breaker
            else:
                raise CheckpointError(
                    f"serve state carries unknown registry key {key!r}")

    # -- the HTTP-shaped surface ----------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Route one request. Unknown paths get a 404, like any server."""
        if request.method == "POST" and request.path == "/v1/reports":
            return self._submit(request.body or {})
        if request.method == "GET" and request.path.startswith("/v1/reports/"):
            request_id = request.path[len("/v1/reports/"):]
            status = self.state.statuses.get(request_id)
            if status is None:
                return Response(404, {"error": "unknown request id",
                                      "request_id": request_id})
            return Response(200, {"request_id": request_id,
                                  "status": status})
        if request.method == "GET" and request.path == "/v1/stats":
            return Response(200, self.stats())
        if request.method == "GET" and request.path == "/v1/health":
            degraded = self.controller.mode is not ServeMode.HEALTHY
            return Response(503 if degraded else 200, {
                "mode": self.controller.mode.value,
                "queue_depth": self.queue.depth,
                "queue_capacity": self.queue.capacity,
            })
        return Response(404, {"error": f"no route for "
                                       f"{request.method} {request.path}"})

    def _shed_retry_after(self) -> float:
        """How long until the backlog has drained to the low watermark."""
        drain_rate = self.config.batch_size / self.config.drain_interval
        backlog = max(0, self.queue.depth - self.config.low_watermark)
        return round(max(self.config.drain_interval, backlog / drain_rate), 3)

    def _rejected(self, request_id: str, reporter: str, reason: str,
                  detail: str, *, status: int,
                  retry_after: Optional[float]) -> Response:
        rejection = self.admission.reject(
            request_id, reporter, reason, detail,
            mode=self.controller.mode.value, retry_after=retry_after)
        self.state.statuses[request_id] = "rejected"
        headers = {}
        if rejection.retry_after is not None:
            headers["Retry-After"] = f"{rejection.retry_after:g}"
        return Response(status, {"error": reason, "detail": detail,
                                 "request_id": request_id}, headers)

    def _submit(self, body: Dict[str, Any]) -> Response:
        self.state.submitted += 1
        request_id = str(body["request_id"])
        reporter = str(body["reporter"])
        mode = self.controller.refresh(self.queue.depth)
        if mode is ServeMode.DRAINING:
            return self._rejected(
                request_id, reporter, "draining",
                "service is draining; submissions are closed",
                status=503, retry_after=None)
        if mode is ServeMode.SHEDDING:
            return self._rejected(
                request_id, reporter, "shedding",
                f"backlog at {self.queue.depth}/{self.queue.capacity}; "
                f"shedding until it clears {self.controller.low_watermark}",
                status=503, retry_after=self._shed_retry_after())
        hint = self.admission.admit_reporter(reporter)
        if hint is not None:
            return self._rejected(
                request_id, reporter, "rate_limited",
                f"reporter {reporter} exceeded "
                f"{self.admission.policy.reporter_rate:g}/s "
                f"(burst {self.admission.policy.reporter_burst:g})",
                status=429, retry_after=hint)
        budget = body.get("budget")
        item = QueueItem(
            index=int(body["index"]),
            request_id=request_id,
            reporter=reporter,
            post_index=int(body["post_index"]),
            enqueued_at=self.clock.now,
            deadline=(self.clock.now + float(budget)
                      if budget is not None else None),
        )
        if not self.queue.offer(item):
            return self._rejected(
                request_id, reporter, "queue_full",
                f"queue at capacity {self.queue.capacity}",
                status=503, retry_after=self._shed_retry_after())
        self.admission.record_accept()
        self.state.statuses[request_id] = "queued"
        if self._next_due is None:
            self._next_due = self.clock.now + self.config.drain_interval
        # The enqueue itself may breach the high watermark.
        self.controller.refresh(self.queue.depth)
        return Response(202, {"request_id": request_id, "status": "queued"},
                        {"Location": f"/v1/reports/{request_id}"})

    # -- the run loop ---------------------------------------------------------

    def run(self) -> ServeState:
        """Play the load schedule, then drain gracefully."""
        meters = list(self.services.meters().values())
        try:
            with self._engine, _observed_meters(self.telemetry, meters):
                with self.telemetry.tracer.span(
                    "serve", requests=self.load.requests,
                    profile=self.load.profile,
                ):
                    self._play_schedule()
                    self._drain()
        finally:
            self._finalise_telemetry()
        return self.state

    def _play_schedule(self) -> None:
        for arrival in self._schedule:
            if arrival.index <= self.state.arrival_index:
                continue  # committed by a previous life of this service
            if self._kill_at is not None and arrival.index == self._kill_at:
                raise SimulatedCrash(
                    f"serve: injected kill before arrival {arrival.index}",
                    service="serve", at_call=arrival.index)
            if arrival.at > self.clock.now:
                self.clock.advance(arrival.at - self.clock.now)
            self._drain_due()
            self.dispatch(Request("POST", "/v1/reports", {
                "index": arrival.index,
                "request_id": arrival.request_id,
                "reporter": arrival.reporter,
                "post_index": arrival.post_index,
                "budget": arrival.budget,
            }))
            self.state.arrival_index = arrival.index
            self.state.queue_depths.add(self.queue.depth)
            if (self.serve_dir is not None
                    and (arrival.index + 1) % self.config.commit_every == 0):
                self._commit()
        if self.serve_dir is not None:
            self._commit()

    def _drain_due(self) -> None:
        """Catch-up batch processing on an absolute drain schedule.

        The next-due instant advances by fixed intervals rather than
        resetting from "now", so a long quiet gap drains as many batches
        as the elapsed time owes — the queue empties during lulls
        instead of leaking one batch per arrival.
        """
        if self.queue.depth == 0:
            self._next_due = None
            return
        while (self.queue.depth and self._next_due is not None
               and self._next_due <= self.clock.now):
            self._process_batch()
            self._next_due += self.config.drain_interval
        if self.queue.depth == 0:
            self._next_due = None

    def _drain(self) -> None:
        """Graceful shutdown: reject new work, finish everything queued."""
        self.controller.begin_drain(self.queue.depth)
        while self.queue.depth:
            self.clock.advance(self.config.drain_interval)
            self._process_batch()
        self.controller.end_drain()
        self._next_due = None
        if self.serve_dir is not None:
            self._commit()

    # -- batch processing -----------------------------------------------------

    def _process_batch(self) -> None:
        items = self.queue.take(self.config.batch_size)
        batch: List[QueueItem] = []
        for item in items:
            if item.deadline is not None and self.clock.now > item.deadline:
                waited = self.clock.now - item.enqueued_at
                self.admission.reject(
                    item.request_id, item.reporter, "deadline",
                    f"expired in queue after {waited:.0f}s (budget "
                    f"{item.deadline - item.enqueued_at:.0f}s)",
                    mode=self.controller.mode.value, retry_after=None)
                self.state.statuses[item.request_id] = "timed_out"
                self.state.timed_out += 1
                continue
            batch.append(item)
        self.controller.refresh(self.queue.depth)
        if not batch:
            return
        mode = self.controller.mode
        annotate_only = mode in (ServeMode.DEGRADED, ServeMode.SHEDDING)
        with self.telemetry.tracer.span(
            "serve/batch", items=len(batch), mode=mode.value,
        ):
            reports = [
                _report_from_post(self._posts[item.post_index], None)
                for item in batch
            ]
            curator = Curator(self._vision, self.telemetry,
                              record_id_start=self.state.next_record_index,
                              sanitizer=self._sanitizer)
            dataset = curator.curate(reports)
            self.state.next_record_index = curator.record_counter
            self.state.quarantined += curator.stats.quarantined
            self._last_batch_quarantine_rate = (
                curator.stats.quarantined / len(reports) if reports else 0.0)
            division = self.ledger.divide(dataset)
            delta = SmishingDataset(division.delta)
            deadlines = [item.deadline for item in batch
                         if item.deadline is not None]
            enricher = Enricher(
                self.services, self.telemetry,
                retry_policy=self._retry_policy,
                breakers=self.breakers,
                cache=self.cache,
                pool=self._engine.enrichment_pool(),
                known_senders=set(self.state.senders),
                known_urls=set(self.state.urls),
                # The oldest queued request's patience caps every retry
                # in the batch: backlogged work must not back off past
                # the deadline of the caller still waiting on it.
                deadline=min(deadlines) if deadlines else None,
            )
            enriched = enricher.run(delta, annotate_only=annotate_only)
        self.ledger.commit(division.new_hashes)
        self._merge_batch(dataset, division, enriched)
        for item in batch:
            self.state.statuses[item.request_id] = "done"
            self.state.latencies.add(
                round(self.clock.now - item.enqueued_at, 6))
        self.state.processed += len(batch)
        self.state.batches += 1
        if annotate_only:
            self.state.degraded_batches += 1

    #: A batch more than half-diverted reads as an active poisoning
    #: attempt, not background noise.
    QUARANTINE_PRESSURE_THRESHOLD = 0.5

    def _quarantine_pressure(self) -> Optional[str]:
        """Degradation-controller signal: hostile-input spike in the
        most recent batch. Returns None while the intake runs clean."""
        rate = self._last_batch_quarantine_rate
        if rate >= self.QUARANTINE_PRESSURE_THRESHOLD:
            return (f"sanitizer quarantined {rate:.0%} of the last "
                    f"batch (hostile-input spike)")
        return None

    def _merge_batch(self, dataset: SmishingDataset, division,
                     enriched: EnrichedDataset) -> None:
        state = self.state
        state.records.extend(dataset)
        state.urls.update(enriched.urls)
        state.senders.update(enriched.senders)
        annotations = dict(enriched.annotations)
        raw = dict(enriched.raw_annotations)
        # Duplicates inherit their canonical twin's annotation, rebound
        # to their own record id — the annotation service's own echo
        # semantics for a repeated text.
        lookup = {**state.raw_annotations, **raw}
        for dup_id, canon_id in division.duplicate_of.items():
            canonical = lookup.get(canon_id)
            if canonical is None:  # canonical's annotation gapped
                continue
            rebound = dataclasses.replace(canonical, message_id=dup_id)
            raw[dup_id] = rebound
            annotations[dup_id] = rebound.labels
        state.annotations.update(annotations)
        state.raw_annotations.update(raw)
        state.duplicate_of.update(division.duplicate_of)
        state.gaps.extend(enriched.gaps)

    # -- durability -----------------------------------------------------------

    def _commit(self) -> None:
        """Make everything up to the last handled arrival durable."""
        self.state.commits += 1
        payload = {
            "state": self.state.to_payload(),
            "admission": self.admission.state_dict(),
            "controller": self.controller.state_dict(),
            "queue": self.queue.state_dict(),
            "ledger": self.ledger.to_dict(),
            "sanitizer": self._sanitizer.state_dict(),
            "next_due": self._next_due,
            "registry_state": self._capture_registry(),
            "cache_entries": (self.cache.export_entries()
                              if self.cache is not None else ()),
        }
        digest = atomic_write_pickle(self.serve_dir / SERVE_STATE_NAME,
                                     payload)
        self._persist_manifest(state_ref={"state_file": SERVE_STATE_NAME,
                                          "state_sha256": digest})

    def _persist_manifest(self, *,
                          state_ref: Optional[Dict[str, str]]) -> None:
        faults = {"profile": (self._plan.profile
                              if self._plan is not None else None),
                  "seed": (self._plan.seed if self._plan is not None
                           else self.world.config.seed)}
        manifest: Dict[str, Any] = {
            "version": SERVE_FORMAT_VERSION,
            "scenario": _scenario_to_dict(self.world.config),
            "load": self.load.to_dict(),
            "config": self.config.to_dict(),
            "faults": faults,
            "execution": {"workers": self.policy.workers,
                          "cache": self.policy.cache,
                          "cache_max_entries": self.policy.cache_max_entries},
            "committed_arrival": self.state.arrival_index,
            "commits": self.state.commits,
            "state_file": state_ref["state_file"] if state_ref else None,
            "state_sha256": state_ref["state_sha256"] if state_ref else None,
            "cli": self._cli,
        }
        atomic_write_json(self.serve_dir / SERVE_MANIFEST_NAME, manifest)

    # -- reporting ------------------------------------------------------------

    @property
    def fault_profile(self) -> str:
        if self._plan is None or self._plan.is_empty:
            return "none"
        return self._plan.profile or "custom"

    def shed_total(self) -> int:
        """Front-door rejections (excludes post-accept deadline drops)."""
        return sum(self.admission.rejected_by_reason.get(reason, 0)
                   for reason in FRONT_DOOR_REASONS)

    def stats(self) -> Dict[str, Any]:
        state = self.state
        return {
            "load": self.load.to_dict(),
            "fault_profile": self.fault_profile,
            "mode": self.controller.mode.value,
            "submitted": state.submitted,
            "accepted": self.admission.accepted,
            "shed": self.shed_total(),
            "rejected_by_reason": dict(sorted(
                self.admission.rejected_by_reason.items())),
            "processed": state.processed,
            "timed_out": state.timed_out,
            "quarantined": state.quarantined,
            "records": len(state.records),
            "deduped": len(state.duplicate_of),
            "gaps": len(state.gaps),
            "batches": state.batches,
            "degraded_batches": state.degraded_batches,
            "commits": state.commits,
            "queue": {
                "capacity": self.queue.capacity,
                "max_depth": self.queue.max_depth,
                **state.queue_depths.to_dict(),
            },
            "latency": state.latencies.to_dict(),
            "transitions": [t.to_dict()
                            for t in self.controller.transitions],
        }

    def _finalise_telemetry(self) -> None:
        self.telemetry.tracer.abandon_open()
        for breaker in self.breakers.values():
            self.telemetry.capture_breaker(breaker)
        if self.cache is not None:
            self.telemetry.capture_cache(self.cache)
        self.telemetry.capture_exec(self._engine.stats())
        self.telemetry.capture_serve(self.stats())
