"""Admission control: who gets into the intake queue, and who is told
to come back later.

Overload safety starts at the front door. Every submission passes three
gates, in order:

1. **Service mode** — a draining or shedding service rejects new work
   outright (with a retry-after hint sized from the queue backlog), so
   backlog can never grow without bound.
2. **Per-reporter rate limit** — a :class:`ReporterBucket` token bucket
   per reporter id, refilled on simulated time. A single hyperactive
   reporter (or a spamming script) cannot crowd out the long tail.
3. **Queue capacity** — the bounded queue itself; a full queue is a
   hard reject even below the shedding watermark (belt and braces: the
   shed watermark normally fires first).

Every rejection is a structured :class:`AdmissionRejection` — the serve
analogue of :class:`~repro.core.collection.CollectionLimitation` and
:class:`~repro.core.enrichment.EnrichmentGap`: shed load is a research
result, not a log line. Accepted + rejected always equals submitted
(``tests/test_properties.py`` pins it), and every decision is a pure
function of (seed, arrival order, simulated clock), so two identical
runs — or a killed run and its resume — decide identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Rejection reasons, mirroring the gap/limitation ``kind`` vocabulary.
REJECTION_REASONS = ("rate_limited", "queue_full", "shedding", "draining",
                    "deadline")


@dataclass(frozen=True)
class AdmissionRejection:
    """One submission the service refused (or abandoned) — structurally.

    ``reason`` is one of :data:`REJECTION_REASONS`; the first four are
    front-door rejections, ``deadline`` marks an *accepted* request
    whose time budget expired while it waited in the queue (dropped at
    dequeue, before any service was charged for it). ``retry_after`` is
    the hint surfaced to the caller: simulated seconds until a retry has
    a realistic chance (None when retrying is pointless, e.g. drain).
    """

    request_id: str
    reporter: str
    reason: str
    detail: str
    mode: str
    simulated_at: float
    retry_after: Optional[float] = None


class ReporterBucket:
    """A per-reporter token bucket on simulated time.

    Deliberately simpler than :class:`~repro.services.base.ServiceMeter`
    (no quota, no observer): tens of thousands of reporters each get one
    of these, so it stays two floats and refills lazily on read.
    """

    __slots__ = ("rate", "burst", "_tokens", "_refilled_at")

    def __init__(self, rate: float, burst: float,
                 *, now: float = 0.0, tokens: Optional[float] = None):
        self.rate = rate
        self.burst = burst
        self._tokens = burst if tokens is None else tokens
        self._refilled_at = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def try_take(self, now: float) -> bool:
        """Spend one token if available; never blocks, never throttles."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Simulated seconds until the next token exists."""
        self._refill(now)
        missing = max(0.0, 1.0 - self._tokens)
        return missing / self.rate if self.rate > 0 else float("inf")

    def state_dict(self) -> Dict[str, float]:
        return {"tokens": self._tokens, "refilled_at": self._refilled_at}


@dataclass
class AdmissionPolicy:
    """The front door's knobs (one immutable bundle per service run)."""

    #: Per-reporter refill rate (tokens per simulated second).
    reporter_rate: float = 1.0 / 30.0
    #: Per-reporter burst allowance.
    reporter_burst: float = 4.0


class AdmissionController:
    """Applies the admission gates and keeps the structured ledger."""

    def __init__(self, policy: AdmissionPolicy, clock):
        self.policy = policy
        self.clock = clock
        self.buckets: Dict[str, ReporterBucket] = {}
        self.rejections: List[AdmissionRejection] = []
        self.accepted = 0
        self.rejected_by_reason: Dict[str, int] = {}

    # -- the decision ---------------------------------------------------------

    def bucket_for(self, reporter: str) -> ReporterBucket:
        bucket = self.buckets.get(reporter)
        if bucket is None:
            bucket = ReporterBucket(self.policy.reporter_rate,
                                    self.policy.reporter_burst,
                                    now=self.clock.now)
            self.buckets[reporter] = bucket
        return bucket

    def reject(self, request_id: str, reporter: str, reason: str,
               detail: str, *, mode: str,
               retry_after: Optional[float] = None) -> AdmissionRejection:
        """File one structured rejection and return it."""
        rejection = AdmissionRejection(
            request_id=request_id,
            reporter=reporter,
            reason=reason,
            detail=detail,
            mode=mode,
            simulated_at=self.clock.now,
            retry_after=(round(retry_after, 3)
                         if retry_after is not None else None),
        )
        self.rejections.append(rejection)
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1)
        return rejection

    def admit_reporter(self, reporter: str) -> Optional[float]:
        """None when the reporter's bucket has a token; otherwise the
        retry-after hint for the rate-limit rejection."""
        bucket = self.bucket_for(reporter)
        if bucket.try_take(self.clock.now):
            return None
        return bucket.retry_after(self.clock.now)

    def record_accept(self) -> None:
        self.accepted += 1

    # -- bookkeeping ----------------------------------------------------------

    @property
    def rejected(self) -> int:
        return len(self.rejections)

    def stats(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "rejected_by_reason": dict(sorted(
                self.rejected_by_reason.items())),
        }

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "buckets": {name: bucket.state_dict()
                        for name, bucket in self.buckets.items()},
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Put a committed snapshot's bucket/counter state back. The
        rejection *records* are restored separately (they live in the
        durable serve state, not here)."""
        self.accepted = int(state["accepted"])
        self.rejected_by_reason = {
            str(k): int(v)
            for k, v in state["rejected_by_reason"].items()
        }
        self.buckets = {
            name: ReporterBucket(
                self.policy.reporter_rate, self.policy.reporter_burst,
                now=payload["refilled_at"], tokens=payload["tokens"],
            )
            for name, payload in state["buckets"].items()
        }
