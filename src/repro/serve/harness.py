"""Differential chaos-under-load helpers: the exactly-once proof kit.

The serve layer's core guarantee is that a killed server, resumed from
its last commit, converges on *byte-identical* observable state to a
server that was never killed — same dataset rows, same annotations,
same gap/rejection ledgers, same per-service charged-call totals, same
final clock. :func:`serve_fingerprint` serialises all of that down to
one canonical JSON string; :func:`run_killed_then_resumed` drives the
kill/resume choreography the equivalence suite and the CI smoke leg
share. Faults, worker counts, and kill points are all parameters, so
the matrix in ``tests/test_serve_equivalence.py`` is a few lines per
cell.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import SimulatedCrash
from .service import IntakeService


def charged_calls(service: IntakeService) -> Dict[str, int]:
    """Per-service charged-call totals off the live service battery."""
    return {name: int(meter.snapshot()["used"])
            for name, meter in service.services.meters().items()}


def _canon(value: Any) -> Any:
    """Make a value JSON-stable: sets (whose *iteration* order follows
    the per-process hash seed, even when the sets are equal) become
    sorted string lists; containers recurse."""
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    if isinstance(value, dict):
        return {key: _canon(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    return value


def serve_fingerprint(service: IntakeService) -> str:
    """Every observable byte of a finished serve run, as canonical JSON.

    Two runs are equivalent iff these strings are equal: dataset rows,
    annotation maps, the structured gap and rejection ledgers, request
    statuses, dedup lineage, meter charges, mode-transition history, the
    latency/queue digests, and the final simulated clock.
    """
    state = service.state
    payload = {
        "rows": [record.to_json_dict() for record in state.records],
        "annotations": {rid: _canon(asdict(labels))
                        for rid, labels in sorted(state.annotations.items())},
        "gaps": [asdict(gap) for gap in state.gaps],
        "rejections": state.rejection_rows(),
        "statuses": dict(sorted(state.statuses.items())),
        "duplicate_of": dict(sorted(state.duplicate_of.items())),
        "charged": charged_calls(service),
        "transitions": [t.to_dict() for t in service.controller.transitions],
        "latency": state.latencies.to_dict(),
        "queue_depths": state.queue_depths.to_dict(),
        "counters": {
            "submitted": state.submitted,
            "accepted": service.admission.accepted,
            "shed": service.shed_total(),
            "processed": state.processed,
            "timed_out": state.timed_out,
            "batches": state.batches,
            "degraded_batches": state.degraded_batches,
        },
        "clock_now": service.clock.now,
    }
    return json.dumps(payload, sort_keys=True, default=str)


def run_to_completion(**create_kwargs: Any) -> IntakeService:
    """Build a service, play its whole schedule, drain, return it."""
    service = IntakeService.create(**create_kwargs)
    service.run()
    return service


def run_killed_then_resumed(serve_dir: Path, *, kill_at: int,
                            **create_kwargs: Any) -> IntakeService:
    """The differential harness's crashed arm.

    Starts a durable service with an injected kill before arrival
    ``kill_at``, lets it die, then reopens the directory and runs the
    resumed service to completion. Raises if the kill never fired (a
    harness that silently ran uninterrupted proves nothing).
    """
    first = IntakeService.create(serve_dir=serve_dir, kill_at=kill_at,
                                 **create_kwargs)
    try:
        first.run()
    except SimulatedCrash:
        pass
    else:
        raise AssertionError(
            f"kill point at arrival {kill_at} never fired "
            f"(schedule has {len(first._schedule)} arrivals)")
    resumed = IntakeService.load(serve_dir)
    resumed.run()
    return resumed
