"""Shared enumerations and small value types used across the package.

These mirror the taxonomies fixed by the paper:

* :class:`ScamType` — the eight categories of §3.3.6 / Table 10 (seven scam
  types plus spam), following Agarwal et al.'s SMS scam categorisation.
* :class:`LurePrinciple` — the seven Stajano–Wilson lure principles
  (§5.5, Table 13).
* :class:`SenderIdKind` — phone number vs. email vs. alphanumeric shortcode
  (§3.3.1 / §4.1).
* :class:`PhoneNumberType` — HLR lookup number classes (Table 3).
* :class:`Forum` — the five collection forums (§3.1, Table 1).
"""

from __future__ import annotations

import enum


class ScamType(str, enum.Enum):
    """Scam categories used to label smishing texts (Table 10)."""

    BANKING = "banking"
    DELIVERY = "delivery"
    GOVERNMENT = "government"
    TELECOM = "telecom"
    WRONG_NUMBER = "wrong number"
    HEY_MUM_DAD = "hey mum/dad"
    OTHERS = "others"
    SPAM = "spam"

    @property
    def is_conversational(self) -> bool:
        """Conversation scams open a dialogue instead of pushing a URL."""
        return self in (ScamType.WRONG_NUMBER, ScamType.HEY_MUM_DAD)

    @property
    def short_code(self) -> str:
        """Single-letter code used in the paper's Tables 5 and 13."""
        return _SCAM_SHORT_CODES[self]


_SCAM_SHORT_CODES = {
    ScamType.BANKING: "B",
    ScamType.DELIVERY: "D",
    ScamType.GOVERNMENT: "G",
    ScamType.TELECOM: "T",
    ScamType.WRONG_NUMBER: "W",
    ScamType.HEY_MUM_DAD: "H",
    ScamType.OTHERS: "O",
    ScamType.SPAM: "S",
}


class LurePrinciple(str, enum.Enum):
    """Stajano & Wilson's seven principles of scam persuasion (Table 13)."""

    AUTHORITY = "authority"
    DISHONESTY = "dishonesty"
    DISTRACTION = "distraction"
    NEED_AND_GREED = "need and greed"
    HERD = "herd"
    KINDNESS = "kindness"
    TIME_URGENCY = "time/urgency"


class SenderIdKind(str, enum.Enum):
    """Sender-ID classes distinguished by the paper's regexes (§3.3.1)."""

    PHONE_NUMBER = "phone number"
    EMAIL = "email"
    ALPHANUMERIC = "alphanumeric"


class PhoneNumberType(str, enum.Enum):
    """HLR-reported number types (Table 3)."""

    MOBILE = "Mobile"
    MOBILE_OR_LANDLINE = "Mobile or Landline"
    VOIP = "VOIP"
    TOLL_FREE = "Toll Free"
    PAGER = "Pager"
    UNIVERSAL_ACCESS = "Universal Access Number"
    PERSONAL = "Personal number"
    OTHER = "Others"
    BAD_FORMAT = "Bad Format"
    LANDLINE = "Landline"
    VOICEMAIL_ONLY = "Voicemail Only"

    @property
    def is_valid(self) -> bool:
        """Whether HLR considers the number capable of originating SMS.

        The paper's Table 3 splits numbers into "Valid" and
        "Invalid/Suspicious" (bad format, landline, voicemail-only — all
        likely spoofed sender IDs).
        """
        return self not in (
            PhoneNumberType.BAD_FORMAT,
            PhoneNumberType.LANDLINE,
            PhoneNumberType.VOICEMAIL_ONLY,
        )


class LineStatus(str, enum.Enum):
    """Current HLR status of a subscriber line (§3.3.1)."""

    LIVE = "live"
    INACTIVE = "inactive"
    DEAD = "dead"


class Forum(str, enum.Enum):
    """The five public forums mined for smishing reports (Table 1)."""

    TWITTER = "Twitter"
    REDDIT = "Reddit"
    SMISHTANK = "Smishtank"
    SMISHING_EU = "Smishing.eu"
    PASTEBIN = "Pastebin"


class TldClass(str, enum.Enum):
    """IANA root-zone TLD classification (Table 16)."""

    GENERIC = "Generic (gTLD)"
    COUNTRY_CODE = "Country-Code (ccTLD)"
    GENERIC_RESTRICTED = "Generic-restricted (grTLD)"
    SPONSORED = "Sponsored (sTLD)"
    INFRASTRUCTURE = "Infra (iTLD)"
    TEST = "Test (tTLD)"


class Verdict(str, enum.Enum):
    """A single AV scanner's verdict for a URL or file."""

    CLEAN = "clean"
    SUSPICIOUS = "suspicious"
    MALICIOUS = "malicious"


class GsbStatus(str, enum.Enum):
    """Google Safe Browsing transparency-report statuses (Table 18)."""

    UNSAFE = "unsafe"
    PARTIALLY_UNSAFE = "partially unsafe"
    UNDETECTED = "undetected"
    NO_DATA = "no available data"
    NOT_QUERIED = "not queried"


class DeviceProfile(str, enum.Enum):
    """Client device presented to a smishing landing page (§6).

    Droppers serve different payloads by user agent: Android devices get a
    drive-by APK download, everything else gets a credential-phishing page.
    """

    ANDROID = "android"
    IOS = "ios"
    DESKTOP = "desktop"


#: Scam types that, per Table 1 of Agarwal et al. 2024 and Table 13 of this
#: paper, carry a URL payload rather than soliciting a reply.
URL_BEARING_SCAM_TYPES = frozenset(
    {
        ScamType.BANKING,
        ScamType.DELIVERY,
        ScamType.GOVERNMENT,
        ScamType.TELECOM,
        ScamType.OTHERS,
        ScamType.SPAM,
    }
)
