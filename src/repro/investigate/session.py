"""Durable investigation sessions: kill a fleet, resume without re-charging.

The charged half of a fleet run — one VirusTotal file submission per
unique payload hash — is the only part worth journaling: probes are pure
and free to recompute. A session directory holds:

* ``INVESTIGATE.json`` — the manifest: scenario, playbook, sample,
  fault profile, and (once the first commit lands) a digest-bound
  reference to the state file. Written atomically before any charged
  work, so a kill at any instant leaves a resumable directory.
* ``state.pkl`` — the pickled state: completed scan results (hash,
  verdict, simulated completion time) plus the restorable-state registry
  (clock, VirusTotal meter, circuit breaker, fault-proxy counter).

Resume rebuilds the world and pipeline from the manifest's scenario
(deterministic), re-runs the free probe phase, restores the registry to
the crash-time instant, and continues scanning from the cursor — so the
total charges across crash + resume equal an uninterrupted run's.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..checkpoint.state import (
    BREAKER_PREFIX,
    CLOCK_KEY,
    METER_PREFIX,
    PROXY_PREFIX,
)
from ..errors import CheckpointError, ConfigurationError
from ..services.euphony import FamilyVerdict
from ..stream.persist import (
    atomic_write_json,
    atomic_write_pickle,
    read_json,
    read_pickle,
)

INVESTIGATE_MANIFEST_NAME = "INVESTIGATE.json"
INVESTIGATE_STATE_NAME = "state.pkl"
INVESTIGATE_FORMAT_VERSION = 1

#: One completed charged scan: ``(sha256, verdict-or-None, sim_time)``.
#: ``verdict`` of None records a scan gap (the service never answered).
ScanResult = Tuple[str, Optional[FamilyVerdict], float]


class InvestigationSession:
    """Create/commit/load the durable state of one fleet's charged phase."""

    def __init__(
        self,
        directory: Path,
        *,
        scenario: Dict[str, Any],
        playbook: str,
        sample: Optional[int],
        commit_every: int,
        fault_profile: Optional[str],
        fault_seed: int,
    ):
        self.directory = Path(directory)
        self.scenario = scenario
        self.playbook = playbook
        self.sample = sample
        self.commit_every = max(1, int(commit_every))
        self.fault_profile = fault_profile or "none"
        self.fault_seed = int(fault_seed)
        self.resuming = False
        #: Committed charged work, restored on load.
        self.scan_results: List[ScanResult] = []
        self._registry_state: Dict[str, Dict[str, Any]] = {}
        self._commits = 0

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Path,
        *,
        scenario: Dict[str, Any],
        playbook: str,
        sample: Optional[int],
        commit_every: int = 1,
        fault_profile: Optional[str] = None,
        fault_seed: int = 0,
    ) -> "InvestigationSession":
        directory = Path(directory)
        manifest = directory / INVESTIGATE_MANIFEST_NAME
        if manifest.exists():
            raise ConfigurationError(
                f"{directory} already holds an investigation session; "
                f"pass --resume to continue it"
            )
        session = cls(
            directory,
            scenario=scenario,
            playbook=playbook,
            sample=sample,
            commit_every=commit_every,
            fault_profile=fault_profile,
            fault_seed=fault_seed,
        )
        directory.mkdir(parents=True, exist_ok=True)
        # Persist before any charged work: a kill during the very first
        # scan must still leave a loadable session behind.
        session._persist_manifest(state_ref=None)
        return session

    @classmethod
    def load(cls, directory: Path) -> "InvestigationSession":
        directory = Path(directory)
        manifest_path = directory / INVESTIGATE_MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointError(
                f"{directory} holds no {INVESTIGATE_MANIFEST_NAME}; "
                f"nothing to resume"
            )
        manifest = read_json(manifest_path)
        version = manifest.get("format_version")
        if version != INVESTIGATE_FORMAT_VERSION:
            raise CheckpointError(
                f"investigation session format {version!r} is not "
                f"supported (expected {INVESTIGATE_FORMAT_VERSION})"
            )
        faults = manifest.get("faults") or {}
        session = cls(
            directory,
            scenario=manifest["scenario"],
            playbook=manifest["playbook"],
            sample=manifest.get("sample"),
            commit_every=manifest.get("commit_every", 1),
            fault_profile=faults.get("profile"),
            fault_seed=faults.get("seed", 0),
        )
        session.resuming = True
        state_ref = manifest.get("state_ref")
        if state_ref:
            payload = read_pickle(
                directory / state_ref["state_file"],
                expected_sha256=state_ref["state_sha256"],
            )
            session.scan_results = list(payload["scan_results"])
            session._registry_state = dict(payload["registry"])
        return session

    # -- state ----------------------------------------------------------------

    @property
    def scan_cursor(self) -> int:
        """How many sorted payload hashes are already committed."""
        return len(self.scan_results)

    def restore(self, registry: Dict[str, Any]) -> None:
        """Put every restorable object back to the crash-time instant.

        ``registry`` maps state keys to live objects (clock, meter,
        breaker, proxy). Journaled proxy state with no live counterpart
        is dropped (the resumed plan may leave the service unwrapped);
        any other unknown key means the directory does not belong to
        this run shape.
        """
        for key, state in self._registry_state.items():
            obj = registry.get(key)
            if obj is not None:
                obj.restore_state(state)
            elif key.startswith(PROXY_PREFIX):
                continue
            else:
                raise CheckpointError(
                    f"investigation state carries unknown key {key!r}; "
                    f"the session does not match this run"
                )

    def maybe_commit(self, scan_results: List[ScanResult],
                     registry: Dict[str, Any]) -> None:
        """Commit when the configured granularity says so."""
        if len(scan_results) % self.commit_every == 0:
            self.commit(scan_results, registry)

    def commit(self, scan_results: List[ScanResult],
               registry: Dict[str, Any]) -> None:
        """Durably record completed scans plus restorable state."""
        payload = {
            "scan_results": list(scan_results),
            "registry": {key: obj.state_dict()
                         for key, obj in registry.items()},
        }
        digest = atomic_write_pickle(
            self.directory / INVESTIGATE_STATE_NAME, payload
        )
        self._persist_manifest(state_ref={
            "state_file": INVESTIGATE_STATE_NAME,
            "state_sha256": digest,
        })
        self._commits += 1

    @property
    def commits(self) -> int:
        return self._commits

    def _persist_manifest(self,
                          state_ref: Optional[Dict[str, str]]) -> None:
        atomic_write_json(self.directory / INVESTIGATE_MANIFEST_NAME, {
            "format_version": INVESTIGATE_FORMAT_VERSION,
            "scenario": self.scenario,
            "playbook": self.playbook,
            "sample": self.sample,
            "commit_every": self.commit_every,
            "faults": {
                "profile": self.fault_profile,
                "seed": self.fault_seed,
            },
            "state_ref": state_ref,
        })


def registry_keys(*, proxied: bool) -> Tuple[str, ...]:
    """The state keys an investigation fleet registers."""
    keys = [
        CLOCK_KEY,
        METER_PREFIX + "virustotal",
        BREAKER_PREFIX + "virustotal",
    ]
    if proxied:
        keys.append(PROXY_PREFIX + "virustotal")
    return tuple(keys)
