"""Declarative investigation playbooks (§6 generalised).

A :class:`Playbook` is an ordered list of :class:`PlaybookStep`\\ s — the
protocol an analyst would follow by hand when chasing one reported URL:
resolve the shortener while it is still alive, check the name still
resolves, fetch the landing page with different device profiles, walk the
funnel submitting synthetic PII, capture any payload, and submit its hash
for scanning. The :class:`~repro.investigate.investigator.Investigator`
interprets a playbook against the world's service simulators.

Two presets ship:

* ``case-study`` — the exact §6 protocol. Interpreted over the §6 sample
  it reproduces :func:`repro.core.active.run_case_study` byte-identically.
* ``full-funnel`` — the case-study protocol plus funnel navigation:
  follow redirects, submit synthetic PII into credential and payment/OTP
  forms, so multi-step kits are walked to the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from ..errors import ConfigurationError

#: Every operation an interpreter knows how to execute.
STEP_OPS: Tuple[str, ...] = (
    "resolve_shortener",
    "check_dns",
    "fetch",
    "follow_redirects",
    "submit_form",
    "download_payload",
    "hash_and_scan",
)


@dataclass(frozen=True)
class PlaybookStep:
    """One step: an operation plus its parameters.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    steps are hashable, picklable, and render canonically.
    """

    op: str
    params: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in STEP_OPS:
            raise ConfigurationError(
                f"unknown playbook op {self.op!r}; expected one of {STEP_OPS}"
            )

    @classmethod
    def make(cls, op: str, **params: str) -> "PlaybookStep":
        return cls(op=op, params=tuple(sorted(params.items())))

    def param(self, key: str, default: str = "") -> str:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def describe(self) -> str:
        if not self.params:
            return self.op
        rendered = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.op}({rendered})"

    def to_dict(self) -> Dict[str, object]:
        return {"op": self.op, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PlaybookStep":
        params = data.get("params") or {}
        return cls.make(str(data["op"]),
                        **{str(k): str(v) for k, v in dict(params).items()})


@dataclass(frozen=True)
class Playbook:
    """A named, ordered investigation protocol."""

    name: str
    description: str
    steps: Tuple[PlaybookStep, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError(
                f"playbook {self.name!r} has no steps"
            )

    def has_op(self, op: str) -> bool:
        return any(step.op == op for step in self.steps)

    def describe(self) -> str:
        return " -> ".join(step.describe() for step in self.steps)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Playbook":
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            steps=tuple(PlaybookStep.from_dict(step)
                        for step in data.get("steps", [])),
        )


def _case_study_steps() -> Tuple[PlaybookStep, ...]:
    return (
        PlaybookStep.make("resolve_shortener"),
        PlaybookStep.make("check_dns"),
        PlaybookStep.make("fetch", device="desktop"),
        PlaybookStep.make("fetch", device="android"),
        PlaybookStep.make("download_payload"),
        PlaybookStep.make("hash_and_scan"),
    )


#: The built-in presets ``repro investigate --playbook`` accepts.
PLAYBOOKS: Dict[str, Playbook] = {
    "case-study": Playbook(
        name="case-study",
        description="The exact §6 protocol: shortener, DNS, dual-device "
                    "fetch, payload capture, hash-and-scan.",
        steps=_case_study_steps(),
    ),
    "full-funnel": Playbook(
        name="full-funnel",
        description="§6 protocol plus funnel navigation: follow redirects "
                    "and feed synthetic PII through credential and "
                    "payment/OTP forms.",
        steps=(
            PlaybookStep.make("resolve_shortener"),
            PlaybookStep.make("check_dns"),
            PlaybookStep.make("fetch", device="desktop"),
            PlaybookStep.make("fetch", device="android"),
            PlaybookStep.make("follow_redirects"),
            PlaybookStep.make("submit_form", pii="synthetic"),
            PlaybookStep.make("download_payload"),
            PlaybookStep.make("hash_and_scan"),
        ),
    ),
}


def get_playbook(name: str) -> Playbook:
    """Look up a preset by name, with a helpful error."""
    playbook = PLAYBOOKS.get(name)
    if playbook is None:
        raise ConfigurationError(
            f"unknown playbook {name!r}; choose from "
            f"{tuple(sorted(PLAYBOOKS))}"
        )
    return playbook
