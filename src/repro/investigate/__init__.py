"""Playbook-driven active investigation of scam funnels (§6, fleet-scale).

The paper's case study (§6) manually followed 200 sampled Twitter URLs
into droppers and credential kits. This package turns that protocol
into engineering:

* :mod:`repro.investigate.playbook` — declarative ordered step lists
  (``resolve_shortener`` → ``check_dns`` → ``fetch(device=…)`` → …)
  with two shipped presets: ``case-study`` (the §6 protocol, verbatim)
  and ``full-funnel`` (adds redirect-following and synthetic-PII form
  submission through multi-page kits).
* :mod:`repro.investigate.investigator` — the interpreter: one pure,
  picklable :class:`Investigator` navigates one URL's funnel and emits
  a :class:`FunnelProbe` (outcome, pages visited, payload, step trace).
* :mod:`repro.investigate.evidence` — per-campaign
  :class:`EvidencePackage`\\ s: structured findings plus a
  chain-of-custody manifest, content-hashed for offline verification.
* :mod:`repro.investigate.fleet` — runs a playbook over every
  URL-bearing record through the standard :mod:`repro.exec` pools with
  the pure-probe/serial-charged-effects split, so results are
  byte-identical for any pool kind and worker count.
* :mod:`repro.investigate.session` / :mod:`repro.investigate.harness`
  — durable commit/resume for the charged phase and the differential
  kill/resume proof kit (zero duplicate charges).
"""

from .evidence import (
    EVIDENCE_FORMAT_VERSION,
    UNATTRIBUTED,
    CustodyEntry,
    EvidencePackage,
    verify_package,
    verify_package_dict,
    write_packages,
)
from .fleet import (
    FleetItem,
    FleetReport,
    InvestigationFleet,
    ProbeShardTask,
    case_study_sample,
    fleet_items,
    run_case_study_playbook,
    run_fleet,
)
from .harness import (
    InvestigationOutcome,
    charged_calls,
    fleet_fingerprint,
    run_investigation,
    run_killed_then_resumed,
)
from .investigator import (
    SYNTHETIC_PII,
    FunnelProbe,
    Investigator,
    StepTrace,
    step_latency_ms,
    to_url_investigation,
)
from .playbook import (
    PLAYBOOKS,
    STEP_OPS,
    Playbook,
    PlaybookStep,
    get_playbook,
)
from .session import (
    INVESTIGATE_FORMAT_VERSION,
    INVESTIGATE_MANIFEST_NAME,
    INVESTIGATE_STATE_NAME,
    InvestigationSession,
    registry_keys,
)

__all__ = [
    "EVIDENCE_FORMAT_VERSION",
    "INVESTIGATE_FORMAT_VERSION",
    "INVESTIGATE_MANIFEST_NAME",
    "INVESTIGATE_STATE_NAME",
    "PLAYBOOKS",
    "STEP_OPS",
    "SYNTHETIC_PII",
    "UNATTRIBUTED",
    "CustodyEntry",
    "EvidencePackage",
    "FleetItem",
    "FleetReport",
    "FunnelProbe",
    "InvestigationFleet",
    "InvestigationOutcome",
    "InvestigationSession",
    "Investigator",
    "Playbook",
    "PlaybookStep",
    "ProbeShardTask",
    "StepTrace",
    "case_study_sample",
    "charged_calls",
    "fleet_fingerprint",
    "fleet_items",
    "get_playbook",
    "registry_keys",
    "run_case_study_playbook",
    "run_fleet",
    "run_investigation",
    "run_killed_then_resumed",
    "step_latency_ms",
    "to_url_investigation",
    "verify_package",
    "verify_package_dict",
    "write_packages",
]
