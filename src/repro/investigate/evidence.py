"""Evidence packages: structured findings plus a chain of custody.

Each campaign an investigation fleet touches gets one
:class:`EvidencePackage`: a list of structured JSON findings (one per
investigated URL, plus one per payload scan) and a chain-of-custody
manifest recording every playbook step — its simulated timestamp, what
it observed, and whether it charged a metered service. The package body
is content-hashed (SHA-256 over canonical JSON), the hash lives in the
package's manifest, and :func:`verify_package` re-derives it — so a
tampered or torn evidence file is detected, never silently trusted.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..stream.persist import atomic_write_json

#: Bumped when the package layout changes incompatibly.
EVIDENCE_FORMAT_VERSION = 1

#: Campaign bucket for URLs that never resolved to a known asset.
UNATTRIBUTED = "(unattributed)"


@dataclass(frozen=True)
class CustodyEntry:
    """One link in a package's chain of custody."""

    sequence: int
    record_id: str
    step: str
    detail: str
    sim_time: float
    charged_service: str = ""  # empty when the step was a pure probe

    def to_dict(self) -> Dict[str, object]:
        return {
            "sequence": self.sequence,
            "record_id": self.record_id,
            "step": self.step,
            "detail": self.detail,
            "sim_time": self.sim_time,
            "charged_service": self.charged_service,
        }


@dataclass
class EvidencePackage:
    """Findings and custody for one campaign's investigations."""

    campaign_id: str
    findings: List[Dict[str, object]] = field(default_factory=list)
    custody: List[CustodyEntry] = field(default_factory=list)

    def add_finding(self, finding: Dict[str, object]) -> None:
        self.findings.append(finding)

    def add_custody(self, *, record_id: str, step: str, detail: str,
                    sim_time: float, charged_service: str = "") -> None:
        self.custody.append(CustodyEntry(
            sequence=len(self.custody),
            record_id=record_id,
            step=step,
            detail=detail,
            sim_time=sim_time,
            charged_service=charged_service,
        ))

    # -- integrity ------------------------------------------------------------

    def body_dict(self) -> Dict[str, object]:
        """The hashed body: everything except the manifest itself."""
        return {
            "format_version": EVIDENCE_FORMAT_VERSION,
            "campaign_id": self.campaign_id,
            "findings": self.findings,
            "custody": [entry.to_dict() for entry in self.custody],
        }

    def content_sha256(self) -> str:
        blob = json.dumps(self.body_dict(), sort_keys=True,
                          separators=(",", ":"), default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def manifest(self) -> Dict[str, object]:
        """The integrity header written alongside the body."""
        charged = sum(1 for entry in self.custody if entry.charged_service)
        return {
            "format_version": EVIDENCE_FORMAT_VERSION,
            "campaign_id": self.campaign_id,
            "findings": len(self.findings),
            "custody_entries": len(self.custody),
            "charged_steps": charged,
            "content_sha256": self.content_sha256(),
        }

    def to_dict(self) -> Dict[str, object]:
        return {"manifest": self.manifest(), "body": self.body_dict()}


def verify_package(package: EvidencePackage,
                   manifest: Optional[Dict[str, object]] = None) -> bool:
    """Re-derive the content hash and compare against the manifest."""
    manifest = manifest if manifest is not None else package.manifest()
    return (
        manifest.get("format_version") == EVIDENCE_FORMAT_VERSION
        and manifest.get("campaign_id") == package.campaign_id
        and manifest.get("findings") == len(package.findings)
        and manifest.get("custody_entries") == len(package.custody)
        and manifest.get("content_sha256") == package.content_sha256()
    )


def verify_package_dict(data: Dict[str, object]) -> bool:
    """Verify a package previously serialised with ``to_dict``."""
    manifest = data.get("manifest")
    body = data.get("body")
    if not isinstance(manifest, dict) or not isinstance(body, dict):
        return False
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"),
                      default=str)
    return (manifest.get("content_sha256")
            == hashlib.sha256(blob.encode("utf-8")).hexdigest())


def _package_file_name(campaign_id: str) -> str:
    slug = "".join(ch if ch.isalnum() else "-" for ch in campaign_id)
    return f"evidence-{slug}.json"


def write_packages(directory: Path,
                   packages: List[EvidencePackage]) -> Path:
    """Write every package (atomically) plus a top-level manifest.

    Returns the path of the fleet-level ``EVIDENCE.json`` manifest, which
    lists each package file with its content hash — the entry point for
    offline verification.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index = []
    for package in packages:
        name = _package_file_name(package.campaign_id)
        atomic_write_json(directory / name, package.to_dict())
        index.append({
            "file": name,
            "campaign_id": package.campaign_id,
            "content_sha256": package.manifest()["content_sha256"],
        })
    manifest_path = directory / "EVIDENCE.json"
    atomic_write_json(manifest_path, {
        "format_version": EVIDENCE_FORMAT_VERSION,
        "packages": index,
    })
    return manifest_path
