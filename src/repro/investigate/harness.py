"""Investigation harness: build-run-fingerprint, plus the kill/resume kit.

Everything the CLI, the equivalence suite, and the CI smoke leg share
lives here:

* :func:`run_investigation` — scenario → world → pipeline → fleet, with
  optional durability (``invest_dir``), resume, and crash injection.
* :func:`fleet_fingerprint` — every observable byte of a finished fleet
  as one canonical JSON string. Two runs are equivalent iff these
  strings are equal, which is how the pool-matrix and kill/resume
  guarantees are stated and tested.
* :func:`run_killed_then_resumed` — the differential harness's crashed
  arm: run durably with an injected kill, die, reopen, finish.

The enrichment pipeline always runs clean here: a ``--faults`` profile
shapes the *investigation's* charged phase only, so the dataset under
investigation is identical across fault arms and any fingerprint drift
is attributable to the fleet itself.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional

from ..core.pipeline import run_pipeline
from ..errors import SimulatedCrash
from ..faults import build_fault_plan
from ..obs import Telemetry
from ..world.scenario import ScenarioConfig, World, build_world
from .fleet import FleetReport, InvestigationFleet
from .investigator import FunnelProbe
from .playbook import get_playbook
from .session import InvestigationSession


@dataclasses.dataclass
class InvestigationOutcome:
    """One finished (or crashed-and-finished) investigation run."""

    report: FleetReport
    world: World
    session: Optional[InvestigationSession] = None


def charged_calls(world: World) -> Dict[str, int]:
    """Charged-call totals for the fleet's metered services."""
    return {"virustotal": int(world.virustotal.meter.snapshot()["used"])}


def _probe_row(probe: FunnelProbe) -> Dict[str, Any]:
    return {
        "index": probe.index,
        "record_id": probe.record_id,
        "url": str(probe.original),
        "resolved": str(probe.resolved) if probe.resolved else None,
        "outcome": probe.outcome,
        "funnel_depth": probe.funnel_depth,
        "device_gate": probe.device_gate,
        "pages": list(probe.pages_visited),
        "forms": list(probe.forms_submitted),
        "apk": probe.apk.sha256 if probe.apk else None,
        "steps": [(s.op, s.outcome) for s in probe.steps],
    }


def fleet_fingerprint(report: FleetReport, world: World) -> str:
    """Every observable byte of a finished fleet run, as canonical JSON.

    Probe outcomes, evidence-package content hashes, scan verdicts and
    gaps, AndroZoo hits, per-service charged-call totals, and the final
    simulated clock — the full surface the pool-matrix and kill/resume
    equivalence guarantees quantify over.
    """
    payload = {
        "playbook": report.playbook,
        "probes": [_probe_row(probe) for probe in report.probes],
        "packages": sorted(
            (package.campaign_id, package.content_sha256())
            for package in report.packages
        ),
        "verdicts": [
            (verdict.sha256, verdict.family, verdict.support)
            for verdict in report.verdicts
        ],
        "scan_gaps": report.scan_gaps,
        "androzoo_hits": report.androzoo_hits,
        "charged": charged_calls(world),
        "clock_now": world.clock.now,
    }
    return json.dumps(payload, sort_keys=True, default=str)


def run_investigation(
    scenario: Optional[ScenarioConfig] = None,
    *,
    playbook: str = "full-funnel",
    sample: Optional[int] = None,
    workers: int = 1,
    pool_kind: str = "serial",
    fault_profile: Optional[str] = None,
    fault_seed: int = 0,
    invest_dir: Optional[Path] = None,
    resume: bool = False,
    kill_at: Optional[int] = None,
    commit_every: int = 1,
    telemetry: Optional[Telemetry] = None,
) -> InvestigationOutcome:
    """Scenario → world → pipeline → investigation fleet, end to end.

    With ``invest_dir`` the charged phase commits durably; ``resume``
    reopens a crashed directory (run parameters come from its manifest,
    not the arguments). ``kill_at`` injects a crash before that scan
    index — it propagates :class:`~repro.errors.SimulatedCrash` after
    the last commit, leaving the directory resumable.
    """
    from ..stream.runner import _scenario_from_dict, _scenario_to_dict

    session: Optional[InvestigationSession] = None
    if resume:
        if invest_dir is None:
            raise ValueError("resume requires invest_dir")
        session = InvestigationSession.load(invest_dir)
        scenario = _scenario_from_dict(session.scenario)
        playbook = session.playbook
        sample = session.sample
        fault_profile = session.fault_profile
        fault_seed = session.fault_seed
    else:
        scenario = scenario or ScenarioConfig()
        if invest_dir is not None:
            session = InvestigationSession.create(
                invest_dir,
                scenario=_scenario_to_dict(scenario),
                playbook=playbook,
                sample=sample,
                commit_every=commit_every,
                fault_profile=fault_profile,
                fault_seed=fault_seed,
            )

    plan = build_fault_plan(fault_profile or "none", seed=fault_seed)
    world = build_world(scenario)
    run = run_pipeline(world, telemetry=telemetry)
    fleet = InvestigationFleet(
        world, run.dataset,
        playbook=get_playbook(playbook),
        sample=sample,
        workers=workers,
        pool_kind=pool_kind,
        fault_plan=plan,
        telemetry=telemetry,
    )
    report = fleet.run(session=session, kill_at=kill_at)
    return InvestigationOutcome(report=report, world=world, session=session)


def run_killed_then_resumed(
    invest_dir: Path,
    *,
    kill_at: int,
    scenario: Optional[ScenarioConfig] = None,
    **kwargs: Any,
) -> InvestigationOutcome:
    """The differential harness's crashed arm.

    Runs a durable investigation with an injected kill before scan
    ``kill_at``, lets it die, then reopens the directory and finishes.
    Raises if the kill never fired (a harness that silently ran
    uninterrupted proves nothing).
    """
    try:
        run_investigation(scenario, invest_dir=invest_dir,
                          kill_at=kill_at, **kwargs)
    except SimulatedCrash:
        pass
    else:
        raise AssertionError(
            f"kill point at scan {kill_at} never fired "
            f"(fewer payloads than the kill index?)")
    return run_investigation(invest_dir=invest_dir, resume=True,
                             workers=kwargs.get("workers", 1),
                             pool_kind=kwargs.get("pool_kind", "serial"))
