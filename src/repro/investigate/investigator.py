"""The playbook interpreter: navigate one reported URL's scam funnel.

An :class:`Investigator` executes a playbook's steps against picklable,
*uncharged* substrates — the shortener link table, the DNS zone database
and the web host — producing a :class:`FunnelProbe` per URL. Probes are
pure functions of ``(playbook, url, date)``: no meter is charged, no
clock advances, no shared state mutates. That purity is what lets the
fleet runner shard probes across serial/thread/process pools and stay
byte-identical (the same split the enrichment engine uses); everything
charged — VirusTotal file submissions — happens later, serially, in
canonical order.

Per-step latencies are *synthetic* simulated milliseconds derived from a
stable hash of ``(op, record_id)``. They feed the Investigations table's
percentiles and the evidence chain of custody without ever advancing the
shared :class:`~repro.services.base.SimClock`, so a playbook run cannot
perturb the §6 numbers or any meter's refill schedule.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..net.dns import DnsZoneDatabase
from ..net.url import RedirectChain, Url
from ..services.shorteners import ShortenerResolver, shortener_for_url
from ..services.webhost import ApkPayload, WebHostService
from ..types import DeviceProfile
from ..utils.rng import stable_hash
from .playbook import Playbook, PlaybookStep

#: Synthetic PII a ``submit_form`` step feeds into funnel forms. Values
#: are obviously fake — the point is exercising the kit's flow, exactly
#: like the honey credentials active-measurement studies submit.
SYNTHETIC_PII = {
    "full_name": "Alex Sample",
    "username": "alex.sample",
    "password": "correct-horse-battery",
    "card_number": "4111111111111111",
    "card_expiry": "12/29",
    "otp_code": "000000",
}

_DEVICES = {
    "desktop": DeviceProfile.DESKTOP,
    "android": DeviceProfile.ANDROID,
}


def step_latency_ms(op: str, record_id: str) -> float:
    """Deterministic synthetic latency for one step of one probe."""
    return 5.0 + stable_hash(f"step-latency:{op}:{record_id}") % 900 / 4.0


@dataclass(frozen=True)
class StepTrace:
    """One executed playbook step, for the chain of custody."""

    op: str
    detail: str
    outcome: str  # "ok" | "skipped" | "terminal"
    latency_ms: float


@dataclass(frozen=True)
class FunnelProbe:
    """Everything the pure navigation of one URL observed."""

    index: int  # canonical position in the fleet's record order
    record_id: str
    original: Url
    on: dt.date
    shortener: Optional[str] = None
    shortener_dead: bool = False
    nxdomain: bool = False
    resolved: Optional[Url] = None
    desktop_kind: str = "dead"
    android_kind: str = "dead"
    chain: Optional[RedirectChain] = None
    apk: Optional[ApkPayload] = None
    funnel_depth: int = 0
    device_gate: str = "any"
    pages_visited: Tuple[str, ...] = ()
    forms_submitted: Tuple[str, ...] = ()
    wants_scan: bool = False
    steps: Tuple[StepTrace, ...] = ()

    @property
    def outcome(self) -> str:
        """One word classifying how far down the funnel the probe got."""
        if self.shortener_dead:
            return "shortener_dead"
        if self.nxdomain:
            return "nxdomain"
        if self.android_kind == "dead" and self.desktop_kind == "dead":
            return "dead_host"
        if self.apk is not None:
            return "apk_download"
        if "payment_otp" in self.forms_submitted:
            return "pii_harvested"
        if "credential_form" in self.forms_submitted:
            return "credentials_harvested"
        if self.pages_visited and self.funnel_depth > 1 and \
                len(self.pages_visited) < self.funnel_depth:
            return "device_gated"
        return "phishing_page"


@dataclass
class _ProbeDraft:
    """Mutable scratch state while the steps execute."""

    index: int
    record_id: str
    original: Url
    on: dt.date
    shortener: Optional[str] = None
    shortener_dead: bool = False
    nxdomain: bool = False
    resolved: Optional[Url] = None
    desktop_kind: str = "dead"
    android_kind: str = "dead"
    chain: Optional[RedirectChain] = None
    apk: Optional[ApkPayload] = None
    funnel_depth: int = 0
    device_gate: str = "any"
    pages_visited: List[str] = field(default_factory=list)
    forms_submitted: List[str] = field(default_factory=list)
    wants_scan: bool = False
    steps: List[StepTrace] = field(default_factory=list)
    terminated: bool = False

    def freeze(self) -> FunnelProbe:
        return FunnelProbe(
            index=self.index,
            record_id=self.record_id,
            original=self.original,
            on=self.on,
            shortener=self.shortener,
            shortener_dead=self.shortener_dead,
            nxdomain=self.nxdomain,
            resolved=self.resolved,
            desktop_kind=self.desktop_kind,
            android_kind=self.android_kind,
            chain=self.chain,
            apk=self.apk,
            funnel_depth=self.funnel_depth,
            device_gate=self.device_gate,
            pages_visited=tuple(self.pages_visited),
            forms_submitted=tuple(self.forms_submitted),
            wants_scan=self.wants_scan,
            steps=tuple(self.steps),
        )


class Investigator:
    """Interprets playbooks over the world's uncharged substrates.

    Holds only picklable plain-data objects, so a whole investigator can
    cross a process-pool boundary inside a shard task.
    """

    def __init__(
        self,
        playbook: Playbook,
        *,
        resolver: ShortenerResolver,
        webhost: WebHostService,
        zones: Optional[DnsZoneDatabase] = None,
    ):
        self.playbook = playbook
        self._resolver = resolver
        self._webhost = webhost
        self._zones = zones

    # -- step implementations -------------------------------------------------

    def _trace(self, draft: _ProbeDraft, step: PlaybookStep, detail: str,
               outcome: str) -> None:
        draft.steps.append(StepTrace(
            op=step.op,
            detail=detail,
            outcome=outcome,
            latency_ms=step_latency_ms(step.op, draft.record_id),
        ))

    def _resolve_shortener(self, draft: _ProbeDraft,
                           step: PlaybookStep) -> None:
        service = shortener_for_url(draft.original)
        if service is None:
            draft.resolved = draft.original
            self._trace(draft, step, "not shortened", "skipped")
            return
        draft.shortener = service
        target = self._resolver.try_resolve(draft.original, draft.on)
        if target is None:
            draft.shortener_dead = True
            draft.terminated = True
            self._trace(draft, step, f"{service}: link dead", "terminal")
            return
        draft.resolved = target
        self._trace(draft, step, f"{service} -> {target.host}", "ok")

    def _check_dns(self, draft: _ProbeDraft, step: PlaybookStep) -> None:
        if self._zones is None:
            self._trace(draft, step, "no zone database", "skipped")
            return
        host = draft.resolved.host if draft.resolved else draft.original.host
        alive = any(
            record.alive_on(draft.on)
            for record in self._zones.records_for(host)
        )
        if not alive:
            draft.nxdomain = True
            draft.terminated = True
            self._trace(draft, step, f"NXDOMAIN: {host}", "terminal")
            return
        self._trace(draft, step, f"{host} resolves", "ok")

    def _fetch(self, draft: _ProbeDraft, step: PlaybookStep) -> None:
        device_name = step.param("device", "android")
        device = _DEVICES[device_name]
        target = draft.resolved if draft.resolved else draft.original
        result = self._webhost.fetch(target, device, draft.on)
        if device is DeviceProfile.DESKTOP:
            draft.desktop_kind = result.content_kind
        else:
            draft.android_kind = result.content_kind
            draft.chain = result.chain
            if result.is_apk_download:
                draft.apk = result.apk
        self._trace(draft, step,
                    f"{device_name}: {result.content_kind}", "ok")

    def _follow_redirects(self, draft: _ProbeDraft,
                          step: PlaybookStep) -> None:
        target = draft.resolved if draft.resolved else draft.original
        host = target.host
        depth = self._webhost.funnel_depth(host)
        gate = self._webhost.funnel_gate(host)
        draft.funnel_depth = depth
        draft.device_gate = gate
        hops = len(draft.chain) if draft.chain is not None else 1
        if depth and self._webhost.host_alive_on(host, draft.on):
            draft.pages_visited.append("landing")
        self._trace(draft, step,
                    f"{hops} hop(s), funnel depth {depth}, gate {gate}",
                    "ok")

    def _submit_form(self, draft: _ProbeDraft, step: PlaybookStep) -> None:
        target = draft.resolved if draft.resolved else draft.original
        host = target.host
        if draft.apk is not None:
            # The Android branch already ended in a drive-by download;
            # there is no form flow past an APK push.
            self._trace(draft, step, "drive-by ended the funnel", "skipped")
            return
        depth = self._webhost.funnel_depth(host)
        submitted = 0
        for page_index in range(1, depth):
            page = self._webhost.funnel_page(host, page_index)
            if page is None or not page.has_form:
                break
            fields = {name: SYNTHETIC_PII.get(name, "synthetic")
                      for name in page.form_fields}
            submission = self._webhost.submit_form(
                host, page_index, fields, DeviceProfile.ANDROID, draft.on
            )
            if not submission.accepted:
                break
            draft.pages_visited.append(page.kind)
            draft.forms_submitted.append(page.kind)
            submitted += 1
        detail = (f"submitted synthetic PII to {submitted} form(s)"
                  if submitted else "no form accepted the submission")
        self._trace(draft, step, detail, "ok" if submitted else "skipped")

    def _download_payload(self, draft: _ProbeDraft,
                          step: PlaybookStep) -> None:
        if draft.apk is None:
            self._trace(draft, step, "no payload served", "skipped")
            return
        self._trace(
            draft, step,
            f"{draft.apk.file_name} ({draft.apk.size_bytes:,} bytes)",
            "ok",
        )

    def _hash_and_scan(self, draft: _ProbeDraft, step: PlaybookStep) -> None:
        if draft.apk is None:
            self._trace(draft, step, "nothing to hash", "skipped")
            return
        draft.wants_scan = True
        self._trace(draft, step, f"sha256 {draft.apk.sha256[:12]}…", "ok")

    # -- interpretation -------------------------------------------------------

    def probe(self, index: int, record_id: str, url: Url,
              on: dt.date) -> FunnelProbe:
        """Execute every step of the playbook for one URL (pure)."""
        draft = _ProbeDraft(index=index, record_id=record_id,
                            original=url, on=on)
        handlers = {
            "resolve_shortener": self._resolve_shortener,
            "check_dns": self._check_dns,
            "fetch": self._fetch,
            "follow_redirects": self._follow_redirects,
            "submit_form": self._submit_form,
            "download_payload": self._download_payload,
            "hash_and_scan": self._hash_and_scan,
        }
        for step in self.playbook.steps:
            if draft.terminated:
                break
            handlers[step.op](draft, step)
        return draft.freeze()


def to_url_investigation(probe: FunnelProbe):
    """Project a probe onto the §6 :class:`UrlInvestigation` shape.

    The case-study preset's report is assembled from these projections;
    field-for-field equality with ``ActiveCaseStudy.investigate_url`` is
    what the byte-identity acceptance test pins.
    """
    from ..core.active import UrlInvestigation

    if probe.shortener_dead:
        return UrlInvestigation(original=probe.original,
                                shortener=probe.shortener,
                                shortener_dead=True)
    return UrlInvestigation(
        original=probe.original,
        resolved=probe.resolved,
        shortener=probe.shortener,
        nxdomain=probe.nxdomain,
        desktop_kind=probe.desktop_kind,
        android_kind=probe.android_kind,
        apk=probe.apk,
        chain=probe.chain,
    )
