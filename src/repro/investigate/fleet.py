"""Fleet-scale investigation: every URL-bearing record, any pool kind.

The fleet runs in two phases with the same split the execution engine
uses everywhere else:

1. **Pure probe phase** (parallelisable): every record's URL is navigated
   by an :class:`~repro.investigate.investigator.Investigator` holding
   only picklable, uncharged substrates. Shards go through the standard
   :mod:`repro.exec` pools (serial/thread/process); results are re-merged
   into canonical record order, so the probe list is byte-identical for
   any ``--pool``/``--workers`` combination.
2. **Serial charged phase**: evidence packages are assembled in record
   order, then each unique payload hash is submitted to VirusTotal —
   the fleet's only meter charges — in sorted-hash order, under a retry
   policy, a circuit breaker, and whatever ``--faults`` proxies the plan
   demands. A durable session commits after each scan so a killed fleet
   resumes at the cursor with zero duplicate charges.

The §6 case study is the degenerate fleet: the ``case-study`` playbook
over the §6 Twitter sample; :func:`run_case_study_playbook` reproduces
:func:`repro.core.active.run_case_study` byte-identically.
"""

from __future__ import annotations

import datetime as dt
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..checkpoint.state import (
    BREAKER_PREFIX,
    CLOCK_KEY,
    METER_PREFIX,
    PROXY_PREFIX,
)
from ..core.active import CaseStudyReport
from ..core.dataset import SmishingDataset, SmishingRecord
from ..core.pipeline import _observed_meters
from ..errors import ServiceError, SimulatedCrash
from ..exec import make_pool, shard
from ..faults import FaultPlan
from ..faults.proxy import FaultProxy, wrap_if_planned
from ..net.url import Url
from ..obs import NULL_TELEMETRY, PercentileDigest, Telemetry
from ..resilience import CircuitBreaker, RetryPolicy, call_with_policy
from ..services.euphony import EuphonyUnifier, FamilyVerdict
from ..services.webhost import ApkPayload
from ..types import Forum
from ..world.scenario import World
from .evidence import UNATTRIBUTED, EvidencePackage
from .investigator import FunnelProbe, Investigator, to_url_investigation
from .playbook import Playbook, get_playbook
from .session import InvestigationSession

#: Retry discipline for the charged scan phase (same shape the
#: enrichment engine uses; seeded so backoff jitter is reproducible).
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay=0.5,
                                   multiplier=2.0, max_delay=60.0,
                                   jitter=0.1, seed=0)


@dataclass(frozen=True)
class FleetItem:
    """One URL-bearing record queued for investigation."""

    index: int
    record_id: str
    url: Url
    on: dt.date


@dataclass(frozen=True)
class ProbeShardTask:
    """Module-level picklable task: probe one shard of fleet items.

    Carries the investigator whole — it holds only plain-data substrates
    — so process-pool workers rebuild it from the pickle and compute the
    exact bytes a serial run would.
    """

    investigator: Investigator

    def __call__(self, items: List[FleetItem]) -> List[FunnelProbe]:
        return [
            self.investigator.probe(item.index, item.record_id,
                                    item.url, item.on)
            for item in items
        ]


def fleet_items(dataset: SmishingDataset,
                sample: Optional[int] = None) -> List[FleetItem]:
    """Every URL-bearing record with a usable investigation date.

    Order is the dataset's canonical record order; ``sample`` keeps the
    first N (the fleet analogue of the §6 sample size).
    """
    eligible: List[Tuple[str, Url, dt.date]] = []
    for record in dataset.records:
        if record.url is None:
            continue
        on = _investigation_date(record)
        if on is None:
            continue
        eligible.append((record.record_id, record.url, on))
    if sample is not None:
        eligible = eligible[:sample]
    return [
        FleetItem(index=index, record_id=record_id, url=url, on=on)
        for index, (record_id, url, on) in enumerate(eligible)
    ]


def _investigation_date(record: SmishingRecord) -> Optional[dt.date]:
    """When the (simulated) analyst opens the URL: at collection time,
    falling back to the reported timestamp's date."""
    if record.collected_at is not None:
        return record.collected_at.date()
    if record.timestamp is not None and record.timestamp.has_date:
        return record.timestamp.value.date()
    return None


@dataclass
class FleetReport:
    """Everything one investigation fleet produced."""

    playbook: str
    investigated: int
    outcomes: Dict[str, int]
    funnel_depths: Dict[int, int]
    payloads: Dict[str, ApkPayload]
    androzoo_hits: int
    verdicts: List[FamilyVerdict]
    scan_gaps: int
    packages: List[EvidencePackage] = field(default_factory=list)
    probes: List[FunnelProbe] = field(default_factory=list)
    step_latency: Dict[str, PercentileDigest] = field(default_factory=dict)
    pool_kind: str = "serial"
    workers: int = 1

    def family_distribution(self) -> Dict[str, int]:
        counts: Counter = Counter()
        for verdict in self.verdicts:
            counts[verdict.family or "(unlabelled)"] += 1
        return dict(counts)

    def stats(self) -> Dict[str, Any]:
        """Snapshot for telemetry's Investigations table and history."""
        custody = sum(len(p.custody) for p in self.packages)
        return {
            "playbook": self.playbook,
            "investigated": self.investigated,
            "outcomes": {k: self.outcomes[k]
                         for k in sorted(self.outcomes)},
            "funnel_depths": {str(k): self.funnel_depths[k]
                              for k in sorted(self.funnel_depths)},
            "evidence_packages": len(self.packages),
            "custody_entries": custody,
            "payloads": len(self.payloads),
            "androzoo_hits": self.androzoo_hits,
            "scans_completed": len(self.verdicts),
            "scan_gaps": self.scan_gaps,
            "families": {k: v for k, v
                         in sorted(self.family_distribution().items())},
            "step_latency_ms": {
                op: {
                    "count": digest.count,
                    "p50": round(digest.quantile(0.5), 3),
                    "p99": round(digest.quantile(0.99), 3),
                }
                for op, digest in sorted(self.step_latency.items())
            },
            "pool": {"kind": self.pool_kind, "workers": self.workers},
        }


class InvestigationFleet:
    """Run one playbook over a dataset's URL-bearing records."""

    def __init__(
        self,
        world: World,
        dataset: SmishingDataset,
        *,
        playbook: Playbook,
        sample: Optional[int] = None,
        workers: int = 1,
        pool_kind: str = "serial",
        fault_plan: Optional[FaultPlan] = None,
        telemetry: Optional[Telemetry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        unifier: Optional[EuphonyUnifier] = None,
    ):
        self.world = world
        self.dataset = dataset
        self.playbook = playbook
        self.sample = sample
        self.workers = max(1, int(workers))
        self.pool_kind = pool_kind
        # Crash injection goes through an explicit --kill-at, exactly
        # like serve: soft-fault profiles never carry crash points here.
        self._plan = (fault_plan or FaultPlan()).without_crash_points()
        self.telemetry = telemetry or NULL_TELEMETRY
        self._retry = retry_policy or DEFAULT_RETRY_POLICY
        self._unifier = unifier or EuphonyUnifier()

    # -- phase 1: pure probes -------------------------------------------------

    def _investigator(self) -> Investigator:
        return Investigator(
            self.playbook,
            resolver=self.world.shortener_resolver,
            webhost=self.world.webhost,
            zones=self.world.dns.zones if self.world.dns else None,
        )

    def run_probes(self, items: List[FleetItem]) -> List[FunnelProbe]:
        """Navigate every item's funnel in parallel (pure, uncharged)."""
        if not items:
            return []
        task = ProbeShardTask(self._investigator())
        with self.telemetry.tracer.span(
            "investigate.probe", sim_clock=self.world.clock,
            pool=self.pool_kind, workers=self.workers,
        ):
            with make_pool(self.workers, self.pool_kind) as pool:
                pool.label = "investigate"
                shards = shard(items, max(1, pool.workers))
                chunks = pool.map(task, shards)
        probes = [probe for chunk in chunks for probe in chunk]
        # Round-robin sharding interleaves records across chunks;
        # re-sorting by the item index restores canonical order.
        probes.sort(key=lambda probe: probe.index)
        return probes

    # -- phase 2: serial charged effects --------------------------------------

    def run(
        self,
        *,
        session: Optional[InvestigationSession] = None,
        kill_at: Optional[int] = None,
    ) -> FleetReport:
        items = fleet_items(self.dataset, self.sample)
        probes = self.run_probes(items)
        clock = self.world.clock

        # Evidence assembly happens before any session restore, so the
        # probe-step custody timestamps a resumed run writes match the
        # uninterrupted run's (the clock has not jumped yet).
        packages, sha_owner, payloads = self._assemble(probes, clock.now)

        virustotal = wrap_if_planned(
            self.world.virustotal, self._plan,
            name="virustotal", clock=clock,
        )
        breaker = CircuitBreaker(
            "virustotal", clock,
            observer=self.telemetry.breaker_hook(),
        )
        registry: Dict[str, Any] = {
            CLOCK_KEY: clock,
            METER_PREFIX + "virustotal": self.world.virustotal.meter,
            BREAKER_PREFIX + "virustotal": breaker,
        }
        if isinstance(virustotal, FaultProxy):
            registry[PROXY_PREFIX + "virustotal"] = virustotal

        scan_results: List[Tuple[str, Optional[FamilyVerdict], float]] = []
        if session is not None and session.resuming:
            session.restore(registry)
            scan_results = list(session.scan_results)

        androzoo_hits = sum(
            1 for sha in payloads
            if self.world.androzoo.lookup(sha) is not None
        )

        shas = sorted(payloads)
        try:
            with self.telemetry.tracer.span(
                "investigate.scan", sim_clock=clock, payloads=len(shas),
            ):
                with _observed_meters(self.telemetry,
                                      [self.world.virustotal.meter]):
                    for index, sha in enumerate(shas):
                        if index < len(scan_results):
                            continue  # committed by the crashed run
                        if kill_at is not None and index == kill_at:
                            raise SimulatedCrash(
                                f"investigate: injected kill before "
                                f"scan {index}",
                                service="investigate",
                                at_call=index,
                            )
                        verdict = self._scan_one(virustotal, breaker, sha)
                        scan_results.append((sha, verdict, clock.now))
                        if session is not None:
                            session.maybe_commit(scan_results, registry)
            if session is not None:
                session.commit(scan_results, registry)
        finally:
            self.telemetry.capture_breaker(breaker)

        return self._finish(probes, packages, sha_owner, payloads,
                            androzoo_hits, scan_results)

    def _scan_one(self, virustotal, breaker,
                  sha: str) -> Optional[FamilyVerdict]:
        try:
            report = call_with_policy(
                lambda: virustotal.scan_file(sha),
                policy=self._retry,
                clock=self.world.clock,
                service="virustotal",
                key=f"scan:{sha}",
                breaker=breaker,
            )
        except ServiceError:
            return None  # a scan gap, recorded in the evidence custody
        return self._unifier.unify(report)

    # -- evidence assembly ----------------------------------------------------

    def _campaign_for(self, probe: FunnelProbe) -> str:
        target = probe.resolved if probe.resolved else probe.original
        asset = self.world.webhost.asset(target.host)
        return asset.campaign_id if asset is not None else UNATTRIBUTED

    def _assemble(
        self, probes: List[FunnelProbe], sim_time: float,
    ) -> Tuple[Dict[str, EvidencePackage], Dict[str, str],
               Dict[str, ApkPayload]]:
        packages: Dict[str, EvidencePackage] = {}
        sha_owner: Dict[str, str] = {}
        payloads: Dict[str, ApkPayload] = {}
        for probe in probes:
            campaign = self._campaign_for(probe)
            package = packages.get(campaign)
            if package is None:
                package = EvidencePackage(campaign_id=campaign)
                packages[campaign] = package
            package.add_finding({
                "type": "investigation",
                "record_id": probe.record_id,
                "url": str(probe.original),
                "resolved": str(probe.resolved) if probe.resolved else None,
                "shortener": probe.shortener,
                "outcome": probe.outcome,
                "funnel_depth": probe.funnel_depth,
                "device_gate": probe.device_gate,
                "pages_visited": list(probe.pages_visited),
                "forms_submitted": list(probe.forms_submitted),
                "apk_sha256": probe.apk.sha256 if probe.apk else None,
            })
            for step in probe.steps:
                package.add_custody(
                    record_id=probe.record_id,
                    step=step.op,
                    detail=step.detail,
                    sim_time=sim_time,
                )
            if probe.apk is not None and probe.wants_scan:
                if probe.apk.sha256 not in payloads:
                    payloads[probe.apk.sha256] = probe.apk
                    sha_owner[probe.apk.sha256] = campaign
        return packages, sha_owner, payloads

    def _finish(
        self,
        probes: List[FunnelProbe],
        packages: Dict[str, EvidencePackage],
        sha_owner: Dict[str, str],
        payloads: Dict[str, ApkPayload],
        androzoo_hits: int,
        scan_results: List[Tuple[str, Optional[FamilyVerdict], float]],
    ) -> FleetReport:
        verdicts: List[FamilyVerdict] = []
        scan_gaps = 0
        for sha, verdict, sim_time in scan_results:
            campaign = sha_owner.get(sha, UNATTRIBUTED)
            package = packages.get(campaign)
            if package is None:  # pragma: no cover - defensive
                package = EvidencePackage(campaign_id=campaign)
                packages[campaign] = package
            if verdict is None:
                scan_gaps += 1
                package.add_finding({
                    "type": "scan_gap",
                    "sha256": sha,
                })
                package.add_custody(
                    record_id=sha[:12],
                    step="hash_and_scan",
                    detail=f"virustotal gave no answer for {sha[:12]}…",
                    sim_time=sim_time,
                    charged_service="",
                )
                continue
            verdicts.append(verdict)
            package.add_finding({
                "type": "scan",
                "sha256": sha,
                "family": verdict.family,
                "support": verdict.support,
                "total_labels": verdict.total_labels,
            })
            package.add_custody(
                record_id=sha[:12],
                step="hash_and_scan",
                detail=(f"virustotal verdict "
                        f"{verdict.family or '(unlabelled)'}"),
                sim_time=sim_time,
                charged_service="virustotal",
            )

        outcomes = Counter(probe.outcome for probe in probes)
        depths = Counter(probe.funnel_depth for probe in probes)
        latency: Dict[str, PercentileDigest] = {}
        for probe in probes:
            for step in probe.steps:
                latency.setdefault(step.op, PercentileDigest()).add(
                    step.latency_ms
                )

        report = FleetReport(
            playbook=self.playbook.name,
            investigated=len(probes),
            outcomes=dict(outcomes),
            funnel_depths=dict(depths),
            payloads=payloads,
            androzoo_hits=androzoo_hits,
            verdicts=verdicts,
            scan_gaps=scan_gaps,
            packages=list(packages.values()),
            probes=probes,
            step_latency=latency,
            pool_kind=self.pool_kind,
            workers=self.workers,
        )
        self.telemetry.capture_investigate(report.stats())
        return report


def run_fleet(
    world: World,
    dataset: SmishingDataset,
    *,
    playbook: str = "full-funnel",
    sample: Optional[int] = None,
    workers: int = 1,
    pool_kind: str = "serial",
    fault_plan: Optional[FaultPlan] = None,
    telemetry: Optional[Telemetry] = None,
    session: Optional[InvestigationSession] = None,
    kill_at: Optional[int] = None,
) -> FleetReport:
    """Convenience wrapper: build a fleet and run it end to end."""
    fleet = InvestigationFleet(
        world, dataset,
        playbook=get_playbook(playbook),
        sample=sample,
        workers=workers,
        pool_kind=pool_kind,
        fault_plan=fault_plan,
        telemetry=telemetry,
    )
    return fleet.run(session=session, kill_at=kill_at)


# ---------------------------------------------------------------------------
# §6 as a thin playbook preset.
# ---------------------------------------------------------------------------


def case_study_sample(dataset: SmishingDataset, *, sample_posts: int = 200,
                      seed: int = 6) -> List[SmishingRecord]:
    """The exact §6 sampling protocol (shared with ``ActiveCaseStudy``)."""
    rng = random.Random(seed)
    twitter_records = [
        record for record in dataset.by_forum(Forum.TWITTER)
        if record.collected_at is not None
    ]
    return (
        twitter_records if len(twitter_records) <= sample_posts
        else rng.sample(twitter_records, sample_posts)
    )


def run_case_study_playbook(
    world: World,
    dataset: SmishingDataset,
    *,
    sample_posts: int = 200,
    seed: int = 6,
) -> CaseStudyReport:
    """§6 reimplemented as the ``case-study`` playbook.

    Byte-identical to :func:`repro.core.active.run_case_study`: same
    sampling, same per-URL step order, same payload bookkeeping, same
    sorted-hash VirusTotal submissions, same Euphony unification.
    """
    playbook = get_playbook("case-study")
    investigator = Investigator(
        playbook,
        resolver=world.shortener_resolver,
        webhost=world.webhost,
        zones=world.dns.zones if world.dns else None,
    )
    sample = case_study_sample(dataset, sample_posts=sample_posts,
                               seed=seed)
    investigations = []
    payloads: Dict[str, ApkPayload] = {}
    dead_links = 0
    for index, record in enumerate(sample):
        if record.url is None:
            continue
        on = record.collected_at.date()
        probe = investigator.probe(index, record.record_id, record.url, on)
        investigation = to_url_investigation(probe)
        investigations.append(investigation)
        if investigation.shortener_dead:
            dead_links += 1
        if investigation.apk is not None:
            payloads[investigation.apk.sha256] = investigation.apk

    androzoo_hits = sum(
        1 for sha in payloads if world.androzoo.lookup(sha) is not None
    )
    unifier = EuphonyUnifier()
    verdicts: List[FamilyVerdict] = []
    for sha in sorted(payloads):
        report = world.virustotal.scan_file(sha)
        verdicts.append(unifier.unify(report))
    return CaseStudyReport(
        sampled_reports=len(sample),
        investigated_urls=len(investigations),
        dead_short_links=dead_links,
        apk_downloads=len(payloads),
        androzoo_hits=androzoo_hits,
        family_verdicts=verdicts,
        investigations=investigations,
    )
