"""SMS message model and the ground-truth smishing event record.

:class:`SmsMessage` is what travels over the (simulated) air interface;
:class:`SmishingEvent` wraps it with the generator's ground-truth labels —
the campaign that sent it, the true scam type, brand, language and lures —
which the measurement pipeline never sees directly but the evaluation
harness (§3.4) compares against.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..net.url import Url
from ..types import LurePrinciple, ScamType
from .gsm import segment_count
from .senderid import SenderId


@dataclass(frozen=True)
class SmsMessage:
    """One SMS as received on a victim's handset.

    ``received_at`` is handset-local wall-clock time — the only timestamp a
    screenshot can ever show (§3.2). ``recipient_country`` is where the
    victim's line is registered.
    """

    text: str
    sender: SenderId
    received_at: dt.datetime
    recipient_country: str
    url: Optional[Url] = None

    @property
    def segments(self) -> int:
        """Air-interface segment count (see :mod:`repro.sms.gsm`)."""
        return segment_count(self.text)

    @property
    def has_url(self) -> bool:
        return self.url is not None


@dataclass(frozen=True)
class SmishingEvent:
    """Ground truth for one smishing delivery.

    The generator produces these; forums turn them into user reports; the
    pipeline tries to recover the fields from noisy screenshots. Keeping
    ground truth separate from the report lets tests measure extraction
    and annotation accuracy exactly.
    """

    event_id: str
    message: SmsMessage
    campaign_id: str
    scam_type: ScamType
    language: str
    brand: Optional[str]
    lures: FrozenSet[LurePrinciple]
    translated_text: Optional[str] = None
    delivery_path: str = "mno"
    apk_payload: bool = False

    @property
    def received_at(self) -> dt.datetime:
        return self.message.received_at

    @property
    def sender(self) -> SenderId:
        return self.message.sender

    @property
    def url(self) -> Optional[Url]:
        return self.message.url

    @property
    def is_english(self) -> bool:
        return self.language == "en"


@dataclass
class DeliveryReceipt:
    """What the sending infrastructure records about one delivery."""

    event_id: str
    segments: int
    encoding: str
    path: str
    spoofed_sender: bool
    cost_units: float

    @classmethod
    def for_message(
        cls,
        event_id: str,
        message: SmsMessage,
        *,
        path: str,
        spoofed_sender: bool,
        unit_price: float = 1.0,
    ) -> "DeliveryReceipt":
        from .gsm import message_cost_units

        segments, encoding = message_cost_units(message.text)
        return cls(
            event_id=event_id,
            segments=segments,
            encoding=encoding,
            path=path,
            spoofed_sender=spoofed_sender,
            cost_units=segments * unit_price,
        )


@dataclass(frozen=True)
class AnnotationLabels:
    """The four annotation properties of §3.3.6, as one comparable record.

    Used for ground truth, human annotators, and the model annotator alike
    so kappa computations (§3.4) operate on a single type.
    """

    scam_type: ScamType
    language: str
    brand: Optional[str]
    lures: FrozenSet[LurePrinciple]

    def agreement_tuple(self) -> Tuple:
        return (self.scam_type, self.language, self.brand, tuple(sorted(self.lures)))


@dataclass
class CampaignSummary:
    """Aggregate bookkeeping the generator keeps per campaign."""

    campaign_id: str
    scam_type: ScamType
    brand: Optional[str]
    languages: Tuple[str, ...]
    target_countries: Tuple[str, ...]
    message_count: int = 0
    first_sent: Optional[dt.datetime] = None
    last_sent: Optional[dt.datetime] = None
    domains: Tuple[str, ...] = field(default_factory=tuple)

    def observe(self, moment: dt.datetime) -> None:
        self.message_count += 1
        if self.first_sent is None or moment < self.first_sent:
            self.first_sent = moment
        if self.last_sent is None or moment > self.last_sent:
            self.last_sent = moment
