"""SMS delivery paths and bulk-sending economics.

§4.1 and Appendix H describe how campaigns actually get messages onto
handsets: legitimate-looking MNO originations from purchased SIMs,
aggregator routes that accept spoofed alphanumeric sender IDs, iMessage
via throwaway e-mail accounts, SIM farms/boxes driving hundreds of
prepaid SIMs (the devices the UK has since banned), and SMS blasters —
fake base stations that bypass the operator entirely. Each path has a
different unit cost, spoofing ability and per-identity throughput before
carrier filtering burns the identity.

This module models those paths so campaign-level experiments (and the
mitigation analysis) can reason about cost and filtering pressure, and
provides :class:`DeliveryEngine` to "send" a batch of messages, producing
:class:`~repro.sms.message.DeliveryReceipt` records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ValidationError
from ..types import SenderIdKind
from .message import DeliveryReceipt, SmishingEvent
from .gsm import message_cost_units


@dataclass(frozen=True)
class DeliveryPath:
    """One way of injecting SMS into the network."""

    name: str
    #: Cost per message segment, in abstract currency units.
    unit_cost: float
    #: Can the sender ID be arbitrarily spoofed on this path?
    can_spoof: bool
    #: Messages one identity can push before carrier filters flag it.
    burn_threshold: int
    #: Which sender-ID kinds the path supports.
    supported_kinds: Tuple[SenderIdKind, ...]


#: The path catalogue. Costs are relative: aggregator bulk routes are the
#: cheapest per segment, blasters have a huge fixed cost folded into the
#: unit price, SIM farms sit between.
PATHS: Dict[str, DeliveryPath] = {
    "mno": DeliveryPath(
        name="mno", unit_cost=0.04, can_spoof=False, burn_threshold=150,
        supported_kinds=(SenderIdKind.PHONE_NUMBER,),
    ),
    "aggregator": DeliveryPath(
        name="aggregator", unit_cost=0.012, can_spoof=True,
        burn_threshold=5000,
        supported_kinds=(SenderIdKind.ALPHANUMERIC,
                         SenderIdKind.PHONE_NUMBER),
    ),
    "imessage": DeliveryPath(
        name="imessage", unit_cost=0.001, can_spoof=False,
        burn_threshold=400,
        supported_kinds=(SenderIdKind.EMAIL,),
    ),
    "sim_farm": DeliveryPath(
        name="sim_farm", unit_cost=0.02, can_spoof=False,
        burn_threshold=300,
        supported_kinds=(SenderIdKind.PHONE_NUMBER,),
    ),
    "blaster": DeliveryPath(
        name="blaster", unit_cost=0.09, can_spoof=True,
        burn_threshold=100000,  # no carrier in the loop to burn identities
        supported_kinds=(SenderIdKind.PHONE_NUMBER,
                         SenderIdKind.ALPHANUMERIC),
    ),
}


def path_for(name: str) -> DeliveryPath:
    try:
        return PATHS[name]
    except KeyError:
        raise ValidationError(f"unknown delivery path: {name!r}") from None


@dataclass
class DeliveryStats:
    """Aggregate outcome of delivering a batch of events."""

    receipts: List[DeliveryReceipt] = field(default_factory=list)
    total_segments: int = 0
    total_cost: float = 0.0
    burned_identities: int = 0
    blocked_messages: int = 0

    @property
    def delivered(self) -> int:
        return len(self.receipts)

    def cost_per_delivered(self) -> float:
        return self.total_cost / self.delivered if self.delivered else 0.0


class DeliveryEngine:
    """Pushes ground-truth events through their delivery paths.

    Tracks per-identity volume: once an identity crosses its path's burn
    threshold, carrier filtering blocks a growing fraction of its
    messages — the whack-a-mole §2 describes, and the reason campaigns
    rotate sender pools.
    """

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng or random.Random(0)
        self._identity_volume: Dict[str, int] = {}
        self._burned: set = set()

    def deliver(self, events: Iterable[SmishingEvent]) -> DeliveryStats:
        stats = DeliveryStats()
        for event in events:
            path = path_for(event.delivery_path)
            if event.sender.kind not in path.supported_kinds:
                # Mis-routed identity: the network rejects it outright.
                stats.blocked_messages += 1
                continue
            key = f"{path.name}:{event.sender.normalized}"
            volume = self._identity_volume.get(key, 0) + 1
            self._identity_volume[key] = volume
            if volume > path.burn_threshold:
                if key not in self._burned:
                    self._burned.add(key)
                    stats.burned_identities += 1
                # Filters catch most traffic from burned identities.
                if self._rng.random() < 0.85:
                    stats.blocked_messages += 1
                    continue
            segments, _ = message_cost_units(event.message.text)
            receipt = DeliveryReceipt.for_message(
                event.event_id, event.message,
                path=path.name,
                spoofed_sender=path.can_spoof
                and event.sender.kind is not SenderIdKind.PHONE_NUMBER,
                unit_price=path.unit_cost,
            )
            stats.receipts.append(receipt)
            stats.total_segments += segments
            stats.total_cost += segments * path.unit_cost
        return stats

    def campaign_cost_report(
        self, events: Iterable[SmishingEvent]
    ) -> Dict[str, DeliveryStats]:
        """Per-path delivery statistics for a batch of events."""
        by_path: Dict[str, List[SmishingEvent]] = {}
        for event in events:
            by_path.setdefault(event.delivery_path, []).append(event)
        return {
            path: DeliveryEngine(random.Random(17)).deliver(batch)
            for path, batch in sorted(by_path.items())
        }
