"""Sender-ID classification: phone number vs. email vs. alphanumeric code.

The paper (§3.3.1) builds regular expressions to split the 19.3k collected
sender IDs into the three classes of §4.1 (65.6% phone numbers, 30.7%
alphanumeric shortcodes, 3.7% email addresses). This module is that
classifier, plus the :class:`SenderId` value object carried through the
pipeline.

Phone-number strings arrive messy: with or without ``+``, with spaces,
dashes, dots or parentheses, occasionally *longer than any valid numbering
plan allows* — the paper calls these out as spoofed "random sender IDs with
more digits than the maximum in a valid number in any country" (Table 3's
"Bad Format" class is 24.3% of numbers). Classification must therefore be
purely syntactic; validity is the HLR service's job.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..errors import ValidationError
from ..types import SenderIdKind

#: ITU-T E.164: international numbers are at most 15 digits. We accept
#: longer strings as "phone-shaped" (they classify as PHONE_NUMBER but will
#: be flagged Bad Format by HLR), up to a sanity cap.
E164_MAX_DIGITS = 15
_PHONE_SHAPE_MAX_DIGITS = 22

_EMAIL_RE = re.compile(
    r"^[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,24}$"
)
_PHONE_CHARS_RE = re.compile(r"^[+()\d\s\-.]+$")
_SHORTCODE_RE = re.compile(r"^\d{3,6}$")
_ALNUM_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9 ._&!-]{1,10}$")


@dataclass(frozen=True)
class SenderId:
    """A classified sender ID.

    ``raw`` preserves exactly what the report showed; ``normalized`` is the
    canonical comparison key (digits for phones, lowercase otherwise).
    """

    raw: str
    kind: SenderIdKind
    normalized: str

    @property
    def digits(self) -> str:
        """Digit string for phone-shaped IDs (empty otherwise)."""
        if self.kind is not SenderIdKind.PHONE_NUMBER:
            return ""
        return self.normalized.lstrip("+")

    @property
    def is_shortcode(self) -> bool:
        """3-6 digit network shortcodes (distinct from full numbers)."""
        return self.kind is SenderIdKind.PHONE_NUMBER and len(self.digits) <= 6


def normalize_phone(raw: str) -> str:
    """Strip formatting from a phone-shaped string, keeping a leading ``+``."""
    text = raw.strip()
    plus = text.startswith("+")
    digits = re.sub(r"\D", "", text)
    return ("+" if plus else "") + digits


def classify_sender_id(raw: str) -> SenderId:
    """Classify a raw sender-ID string into one of the three kinds.

    Order of tests mirrors the paper's regexes:

    1. Anything with ``@`` and a domain-shaped right side is an e-mail
       (iMessage sender: §3.3.1).
    2. Strings containing only digits and phone punctuation are phone
       numbers — including too-long spoofed ones and 3-6 digit shortcodes.
    3. Everything else that fits in the 11-char GSM alphanumeric sender
       field is an alphanumeric ID (``GOV.UK``, ``SBIBNK``...).

    Raises :class:`~repro.errors.ValidationError` for empty or oversize
    garbage (a redacted/blank sender field should be handled upstream).
    """
    text = raw.strip()
    if not text:
        raise ValidationError("empty sender ID")
    if _EMAIL_RE.match(text):
        return SenderId(raw=raw, kind=SenderIdKind.EMAIL, normalized=text.lower())
    if _PHONE_CHARS_RE.match(text):
        normalized = normalize_phone(text)
        digit_count = len(normalized.lstrip("+"))
        if 3 <= digit_count <= _PHONE_SHAPE_MAX_DIGITS:
            return SenderId(
                raw=raw, kind=SenderIdKind.PHONE_NUMBER, normalized=normalized
            )
        raise ValidationError(f"not a plausible sender ID: {raw!r}")
    if _ALNUM_RE.match(text) and len(text) <= 11:
        return SenderId(
            raw=raw, kind=SenderIdKind.ALPHANUMERIC, normalized=text.lower()
        )
    raise ValidationError(f"not a plausible sender ID: {raw!r}")


def try_classify_sender_id(raw: str) -> Optional[SenderId]:
    """Classify, returning None for unusable strings (redactions etc.)."""
    try:
        return classify_sender_id(raw)
    except ValidationError:
        return None


def is_redacted(raw: str) -> bool:
    """Detect reporter-redacted sender fields (``+44 7*** ******``, ``XXX``).

    Users often blank part of the sender before posting publicly (§3.2);
    those reports contribute a message but no sender ID to Table 1.
    """
    text = raw.strip()
    if not text:
        return True
    masked = sum(1 for ch in text if ch in "*xX#_•")
    meaningful = sum(1 for ch in text if ch.isalnum())
    return masked >= 2 and masked >= meaningful
