"""GSM 03.38 character set, septet packing, and message segmentation.

SMS is a constrained transport: 140 payload bytes per PDU, which yields
160 characters in the 7-bit GSM default alphabet, 153 per segment when a
concatenation header is needed, or 70/67 UCS-2 code units for texts using
characters outside the GSM alphabet. Smishing campaigns care about this —
a template that tips a message into UCS-2 doubles the per-message cost of
a bulk run — so the world generator uses this module to cost campaigns and
the delivery simulator uses it to split texts into segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: GSM 03.38 default alphabet (7-bit), basic table.
GSM_BASIC = (
    "@£$¥èéùìòÇ\nØø\rÅåΔ_ΦΓΛΩΠΨΣΘΞ\x1bÆæßÉ !\"#¤%&'()*+,-./0123456789:;<=>?"
    "¡ABCDEFGHIJKLMNOPQRSTUVWXYZÄÖÑÜ§¿abcdefghijklmnopqrstuvwxyzäöñüà"
)

#: Extension table characters — each costs *two* septets (escape + char).
GSM_EXTENDED = "^{}\\[~]|€"

_GSM_BASIC_SET = frozenset(GSM_BASIC)
_GSM_EXTENDED_SET = frozenset(GSM_EXTENDED)

#: Per-segment capacities.
GSM7_SINGLE = 160
GSM7_CONCAT = 153
UCS2_SINGLE = 70
UCS2_CONCAT = 67


def is_gsm_char(char: str) -> bool:
    """True if the character is encodable in GSM 7-bit (incl. extension)."""
    return char in _GSM_BASIC_SET or char in _GSM_EXTENDED_SET


def is_gsm_text(text: str) -> bool:
    """True if the entire text fits the GSM 7-bit alphabet."""
    return all(is_gsm_char(ch) for ch in text)


def septet_length(text: str) -> int:
    """Number of septets the text occupies (extension chars count double).

    Raises ``ValueError`` if the text is not GSM-encodable.
    """
    total = 0
    for ch in text:
        if ch in _GSM_BASIC_SET:
            total += 1
        elif ch in _GSM_EXTENDED_SET:
            total += 2
        else:
            raise ValueError(f"character {ch!r} is not GSM 7-bit encodable")
    return total


@dataclass(frozen=True)
class Encoding:
    """Chosen air-interface encoding for a message."""

    name: str  # "gsm7" or "ucs2"
    single_capacity: int
    concat_capacity: int


GSM7 = Encoding("gsm7", GSM7_SINGLE, GSM7_CONCAT)
UCS2 = Encoding("ucs2", UCS2_SINGLE, UCS2_CONCAT)


def choose_encoding(text: str) -> Encoding:
    """GSM 7-bit when possible, UCS-2 otherwise (how real SMSCs behave)."""
    return GSM7 if is_gsm_text(text) else UCS2


def _unit_length(text: str, encoding: Encoding) -> int:
    if encoding is GSM7:
        return septet_length(text)
    # UCS-2: astral characters (emoji) need surrogate pairs = 2 units.
    return sum(2 if ord(ch) > 0xFFFF else 1 for ch in text)


def segment_count(text: str) -> int:
    """How many SMS segments the text needs on the wire."""
    if not text:
        return 1
    encoding = choose_encoding(text)
    units = _unit_length(text, encoding)
    if units <= encoding.single_capacity:
        return 1
    # Ceil division over the concatenated capacity.
    return -(-units // encoding.concat_capacity)


def split_segments(text: str) -> List[str]:
    """Split text into the actual segment payloads.

    Split points respect unit costs (an extended GSM char or an astral
    pair is never split across segments).
    """
    if not text:
        return [""]
    encoding = choose_encoding(text)
    total_units = _unit_length(text, encoding)
    if total_units <= encoding.single_capacity:
        return [text]
    capacity = encoding.concat_capacity
    segments: List[str] = []
    current: List[str] = []
    used = 0
    for ch in text:
        cost = _unit_length(ch, encoding)
        if used + cost > capacity:
            segments.append("".join(current))
            current = [ch]
            used = cost
        else:
            current.append(ch)
            used += cost
    if current:
        segments.append("".join(current))
    return segments


def pack_septets(text: str) -> bytes:
    """Pack a GSM 7-bit string into octets (GSM 03.38 §6.1.2.1.1).

    Only the basic table is supported for packing (extension characters are
    escaped first). This is the actual PDU payload format; the delivery
    simulator round-trips it to assert fidelity.
    """
    septets: List[int] = []
    for ch in text:
        if ch in _GSM_BASIC_SET:
            septets.append(GSM_BASIC.index(ch))
        elif ch in _GSM_EXTENDED_SET:
            septets.append(0x1B)
            septets.append(_EXT_ENCODE[ch])
        else:
            raise ValueError(f"character {ch!r} is not GSM 7-bit encodable")
    packed = bytearray()
    carry = 0
    carry_bits = 0
    for septet in septets:
        carry |= septet << carry_bits
        carry_bits += 7
        while carry_bits >= 8:
            packed.append(carry & 0xFF)
            carry >>= 8
            carry_bits -= 8
    if carry_bits:
        packed.append(carry & 0xFF)
    return bytes(packed)


_EXT_ENCODE = {
    "^": 0x14, "{": 0x28, "}": 0x29, "\\": 0x2F, "[": 0x3C, "~": 0x3D,
    "]": 0x3E, "|": 0x40, "€": 0x65,
}
_EXT_DECODE = {v: k for k, v in _EXT_ENCODE.items()}


def unpack_septets(packed: bytes, septet_count: int) -> str:
    """Inverse of :func:`pack_septets` given the original septet count."""
    septets: List[int] = []
    carry = 0
    carry_bits = 0
    for octet in packed:
        carry |= octet << carry_bits
        carry_bits += 8
        while carry_bits >= 7 and len(septets) < septet_count:
            septets.append(carry & 0x7F)
            carry >>= 7
            carry_bits -= 7
    chars: List[str] = []
    escape = False
    for value in septets:
        if escape:
            chars.append(_EXT_DECODE.get(value, " "))
            escape = False
        elif value == 0x1B:
            escape = True
        else:
            chars.append(GSM_BASIC[value])
    return "".join(chars)


def message_cost_units(text: str) -> Tuple[int, str]:
    """(segments, encoding-name) — what a bulk SMS service bills for."""
    encoding = choose_encoding(text)
    return segment_count(text), encoding.name
