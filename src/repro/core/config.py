"""Pipeline configuration: collection windows and keywords (§3.1)."""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Tuple

from ..forums.base import COLLECTION_KEYWORDS


@dataclass(frozen=True)
class CollectionWindows:
    """The per-forum collection timelines of Table 1 / §3.1."""

    twitter_historical_start: dt.datetime = dt.datetime(2017, 1, 1)
    twitter_realtime_start: dt.datetime = dt.datetime(2022, 11, 30)
    twitter_end: dt.datetime = dt.datetime(2023, 6, 23)
    reddit_start: dt.datetime = dt.datetime(2017, 1, 1)
    reddit_end: dt.datetime = dt.datetime(2023, 9, 30)
    smishing_eu_backlog_start: dt.datetime = dt.datetime(2021, 11, 21)
    smishing_eu_scrape_start: dt.datetime = dt.datetime(2022, 11, 28)
    smishing_eu_end: dt.datetime = dt.datetime(2023, 10, 16)
    smishtank_start: dt.datetime = dt.datetime(2022, 3, 31)
    smishtank_end: dt.datetime = dt.datetime(2024, 4, 8)


@dataclass(frozen=True)
class PipelineConfig:
    """Everything the measurement pipeline needs to know."""

    keywords: Tuple[str, ...] = COLLECTION_KEYWORDS
    windows: CollectionWindows = field(default_factory=CollectionWindows)
    #: Residual field-miss rate of the vision extractor.
    vision_miss_rate: float = 0.015
    #: Draw the vision extractor's per-image misses from a stable
    #: per-image stream instead of one shared positional stream. The
    #: positional default keeps historical runs byte-identical; the
    #: stable mode makes each image's extraction independent of how the
    #: curation batch was sliced, which is what lets the incremental
    #: ingester (:mod:`repro.stream`) curate epoch-by-epoch and still
    #: match a single full-window run image-for-image.
    stable_vision: bool = False
    #: Sample size for the §3.4 annotation evaluation.
    evaluation_sample_size: int = 150
    #: Sample size for the §6 active case study.
    case_study_posts: int = 200
