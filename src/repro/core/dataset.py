"""The curated smishing dataset: records, dedup, persistence.

A :class:`SmishingRecord` is one successfully curated report (§3.2's four
extracted variables plus annotations and enrichment added later). The
:class:`SmishingDataset` container provides Table 1 semantics: totals and
uniques per forum for messages, sender IDs and URLs.
"""

from __future__ import annotations

import datetime as dt
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..net.url import Url, try_parse_url
from ..sms.message import AnnotationLabels
from ..sms.senderid import SenderId, try_classify_sender_id
from ..types import Forum, LurePrinciple, ScamType
from ..utils.timeutils import ParsedTimestamp


def normalise_message_key(text: str) -> str:
    """Dedup key for message texts.

    Case-folds and collapses whitespace; digits are kept (campaign
    variants differ in amounts/codes, and the paper counts those as
    distinct messages).
    """
    return " ".join(text.casefold().split())


@dataclass
class SmishingRecord:
    """One curated smishing report."""

    record_id: str
    forum: Forum
    source_post_id: str
    text: str
    sender: Optional[SenderId] = None
    timestamp: Optional[ParsedTimestamp] = None
    url: Optional[Url] = None
    collected_at: Optional[dt.datetime] = None
    from_image: bool = False
    annotations: Optional[AnnotationLabels] = None
    translated_text: Optional[str] = None
    truth_event_id: Optional[str] = None

    @property
    def message_key(self) -> str:
        return normalise_message_key(self.text)

    @property
    def has_full_timestamp(self) -> bool:
        """Date *and* time present — required for the Fig. 2 analysis."""
        return (self.timestamp is not None and self.timestamp.has_date
                and self.timestamp.has_time)

    @property
    def scam_type(self) -> Optional[ScamType]:
        return self.annotations.scam_type if self.annotations else None

    @property
    def language(self) -> Optional[str]:
        return self.annotations.language if self.annotations else None

    @property
    def brand(self) -> Optional[str]:
        return self.annotations.brand if self.annotations else None

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "record_id": self.record_id,
            "forum": self.forum.value,
            "source_post_id": self.source_post_id,
            "text": self.text,
            "sender_raw": self.sender.raw if self.sender else None,
            "timestamp": (
                self.timestamp.value.isoformat() if self.timestamp else None
            ),
            "timestamp_has_date": (
                self.timestamp.has_date if self.timestamp else None
            ),
            "url": str(self.url) if self.url else None,
            "from_image": self.from_image,
            "translated_text": self.translated_text,
            "scam_type": self.scam_type.value if self.scam_type else None,
            "language": self.language,
            "brand": self.brand,
            "lures": sorted(l.value for l in self.annotations.lures)
            if self.annotations else None,
            "truth_event_id": self.truth_event_id,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "SmishingRecord":
        sender = None
        if data.get("sender_raw"):
            sender = try_classify_sender_id(str(data["sender_raw"]))
        timestamp = None
        if data.get("timestamp"):
            value = dt.datetime.fromisoformat(str(data["timestamp"]))
            timestamp = ParsedTimestamp(
                value=value,
                has_date=bool(data.get("timestamp_has_date", True)),
                has_time=True,
                raw=str(data["timestamp"]),
            )
        url = try_parse_url(str(data["url"])) if data.get("url") else None
        annotations = None
        if data.get("scam_type"):
            annotations = AnnotationLabels(
                scam_type=ScamType(str(data["scam_type"])),
                language=str(data.get("language") or "en"),
                brand=(str(data["brand"]) if data.get("brand") else None),
                lures=frozenset(
                    LurePrinciple(v) for v in data.get("lures") or []
                ),
            )
        return cls(
            record_id=str(data["record_id"]),
            forum=Forum(str(data["forum"])),
            source_post_id=str(data["source_post_id"]),
            text=str(data["text"]),
            sender=sender,
            timestamp=timestamp,
            url=url,
            from_image=bool(data.get("from_image", False)),
            annotations=annotations,
            translated_text=(
                str(data["translated_text"])
                if data.get("translated_text") else None
            ),
            truth_event_id=(
                str(data["truth_event_id"])
                if data.get("truth_event_id") else None
            ),
        )


@dataclass(frozen=True)
class ForumCounts:
    """One row of Table 1."""

    forum: Forum
    posts: int
    images: int
    messages_total: int
    messages_unique: int
    senders_total: int
    senders_unique: int
    urls_total: int
    urls_unique: int


class SmishingDataset:
    """Container with Table 1 counting semantics and persistence."""

    def __init__(self, records: Optional[Iterable[SmishingRecord]] = None):
        self._records: List[SmishingRecord] = list(records or [])

    def add(self, record: SmishingRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[SmishingRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SmishingRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> SmishingRecord:
        return self._records[index]

    @property
    def records(self) -> List[SmishingRecord]:
        return list(self._records)

    def by_forum(self, forum: Forum) -> List[SmishingRecord]:
        return [r for r in self._records if r.forum is forum]

    # -- Table 1 counting ---------------------------------------------------------

    def unique_messages(self) -> Set[str]:
        return {r.message_key for r in self._records}

    def unique_senders(self) -> Set[str]:
        return {r.sender.normalized for r in self._records if r.sender}

    def unique_urls(self) -> Set[str]:
        return {str(r.url) for r in self._records if r.url}

    def forum_counts(
        self, forum: Forum, *, posts: int = 0, images: int = 0
    ) -> ForumCounts:
        records = self.by_forum(forum)
        return ForumCounts(
            forum=forum,
            posts=posts,
            images=images,
            messages_total=len(records),
            messages_unique=len({r.message_key for r in records}),
            senders_total=sum(1 for r in records if r.sender),
            senders_unique=len(
                {r.sender.normalized for r in records if r.sender}
            ),
            urls_total=sum(1 for r in records if r.url),
            urls_unique=len({str(r.url) for r in records if r.url}),
        )

    # -- persistence ------------------------------------------------------------------

    def save_jsonl(self, path: "Path | str") -> int:
        """Write one JSON object per record; returns the count written."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_json_dict(),
                                        ensure_ascii=False) + "\n")
        return len(self._records)

    @classmethod
    def load_jsonl(cls, path: "Path | str") -> "SmishingDataset":
        path = Path(path)
        records: List[SmishingRecord] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(SmishingRecord.from_json_dict(json.loads(line)))
        return cls(records)

    def with_annotations(
        self, annotations: Dict[str, AnnotationLabels]
    ) -> "SmishingDataset":
        """A copy with annotation labels attached by record id."""
        updated = [
            replace(record, annotations=annotations.get(record.record_id,
                                                        record.annotations))
            for record in self._records
        ]
        return SmishingDataset(updated)
