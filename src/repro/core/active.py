"""Active analysis case study (§6): following URLs to Android malware.

Protocol, as in the paper: take a sample of real-time Twitter smishing
reports, follow every URL (resolving shorteners while they are still
alive), fetch each landing page with both a desktop and an Android device
profile, save any APK drive-by payloads, check their hashes against
AndroZoo (none are known — these are fresh), submit them to VirusTotal,
and unify the vendor labels into malware families with Euphony.
"""

from __future__ import annotations

import datetime as dt
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import NotFound
from ..net.dns import DnsResolver
from ..net.url import RedirectChain, Url
from ..services.androzoo import AndroZooService
from ..services.euphony import EuphonyUnifier, FamilyVerdict
from ..services.shorteners import ShortenerResolver, shortener_for_url
from ..services.virustotal import VirusTotalService
from ..services.webhost import ApkPayload, WebHostService
from ..types import DeviceProfile, Forum
from ..world.scenario import World
from .dataset import SmishingDataset, SmishingRecord


@dataclass
class UrlInvestigation:
    """What happened when we followed one URL."""

    original: Url
    resolved: Optional[Url] = None
    shortener: Optional[str] = None
    shortener_dead: bool = False
    nxdomain: bool = False
    desktop_kind: str = "dead"
    android_kind: str = "dead"
    apk: Optional[ApkPayload] = None
    chain: Optional[RedirectChain] = None


@dataclass
class CaseStudyReport:
    """The §6 numbers plus the Table 19 family distribution."""

    sampled_reports: int
    investigated_urls: int
    dead_short_links: int
    apk_downloads: int
    androzoo_hits: int
    family_verdicts: List[FamilyVerdict] = field(default_factory=list)
    investigations: List[UrlInvestigation] = field(default_factory=list)

    def family_distribution(self) -> Dict[str, int]:
        counts: Counter = Counter()
        for verdict in self.family_verdicts:
            counts[verdict.family or "(unlabelled)"] += 1
        return dict(counts)

    @property
    def dominant_family(self) -> Optional[str]:
        distribution = self.family_distribution()
        if not distribution:
            return None
        return max(distribution.items(), key=lambda kv: kv[1])[0]


class ActiveCaseStudy:
    """Drives the manual §6 investigation programmatically."""

    def __init__(
        self,
        *,
        resolver: ShortenerResolver,
        webhost: WebHostService,
        androzoo: AndroZooService,
        virustotal: VirusTotalService,
        unifier: Optional[EuphonyUnifier] = None,
        dns: Optional[DnsResolver] = None,
    ):
        self._resolver = resolver
        self._webhost = webhost
        self._androzoo = androzoo
        self._virustotal = virustotal
        self._unifier = unifier or EuphonyUnifier()
        self._dns = dns

    def investigate_url(
        self, url: Url, on: dt.date
    ) -> UrlInvestigation:
        """Follow one URL on a given date with both device profiles."""
        investigation = UrlInvestigation(original=url)
        target = url
        service = shortener_for_url(url)
        if service is not None:
            investigation.shortener = service
            try:
                target = self._resolver.resolve(url, on)
            except NotFound:
                investigation.shortener_dead = True
                return investigation
        investigation.resolved = target
        if self._dns is not None:
            # Live crawl: the name must still resolve — NXDOMAIN means
            # the registrar/DNS provider already pulled the domain.
            try:
                self._dns.resolve(target.host, on)
            except NotFound:
                investigation.nxdomain = True
                return investigation
        desktop = self._webhost.fetch(target, DeviceProfile.DESKTOP, on)
        android = self._webhost.fetch(target, DeviceProfile.ANDROID, on)
        investigation.desktop_kind = desktop.content_kind
        investigation.android_kind = android.content_kind
        investigation.chain = android.chain
        if android.is_apk_download:
            investigation.apk = android.apk
        return investigation

    def run(
        self,
        dataset: SmishingDataset,
        *,
        sample_posts: int = 200,
        seed: int = 6,
    ) -> CaseStudyReport:
        """The full §6 protocol over a pipeline's curated dataset."""
        rng = random.Random(seed)
        twitter_records = [
            record for record in dataset.by_forum(Forum.TWITTER)
            if record.collected_at is not None
        ]
        sample = (
            twitter_records if len(twitter_records) <= sample_posts
            else rng.sample(twitter_records, sample_posts)
        )
        investigations: List[UrlInvestigation] = []
        payloads: Dict[str, ApkPayload] = {}
        dead_links = 0
        for record in sample:
            if record.url is None:
                continue
            # Real-time investigation: we open the URL shortly after the
            # report, while infrastructure may still be alive.
            on = record.collected_at.date()
            investigation = self.investigate_url(record.url, on)
            investigations.append(investigation)
            if investigation.shortener_dead:
                dead_links += 1
            if investigation.apk is not None:
                payloads[investigation.apk.sha256] = investigation.apk

        androzoo_hits = sum(
            1 for sha in payloads if self._androzoo.lookup(sha) is not None
        )
        verdicts: List[FamilyVerdict] = []
        for sha in sorted(payloads):
            report = self._virustotal.scan_file(sha)
            verdicts.append(self._unifier.unify(report))
        return CaseStudyReport(
            sampled_reports=len(sample),
            investigated_urls=len(investigations),
            dead_short_links=dead_links,
            apk_downloads=len(payloads),
            androzoo_hits=androzoo_hits,
            family_verdicts=verdicts,
            investigations=investigations,
        )


def run_case_study(
    world: World, dataset: SmishingDataset, *, sample_posts: int = 200,
    seed: int = 6,
) -> CaseStudyReport:
    """Convenience wrapper wiring the world's services."""
    study = ActiveCaseStudy(
        resolver=world.shortener_resolver,
        webhost=world.webhost,
        androzoo=world.androzoo,
        virustotal=world.virustotal,
        dns=world.dns,
    )
    return study.run(dataset, sample_posts=sample_posts, seed=seed)
