"""End-to-end pipeline: collect → curate → enrich a synthetic world.

This is the programmatic equivalent of everything §3 describes, wired
against a :class:`~repro.world.scenario.World`. The result object carries
every intermediate product so analyses, tests, and benches can introspect
any stage — including, when observability is enabled, the full
:class:`~repro.obs.Telemetry` (spans, counters, meter snapshots) of the
run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from ..checkpoint.session import NULL_CHECKPOINT
from ..checkpoint.state import build_state_registry
from ..exec import ExecutionEngine, ExecutionPolicy
from ..faults import FaultPlan, inject_faults
from ..imaging.vision_openai import OpenAiVisionExtractor
from ..nlp.annotator import MessageAnnotator
from ..nlp.openai_api import OpenAiEndpoint
from ..obs import NULL_TELEMETRY, Telemetry, ensure_telemetry
from ..resilience import RetryPolicy
from ..utils.rng import derive
from ..world.scenario import World
from .collection import CollectionResult, collect_all
from .config import PipelineConfig
from .curation import CurationStats, Curator
from .dataset import SmishingDataset
from .enrichment import EnrichedDataset, Enricher, EnrichmentServices


@dataclass
class PipelineRun:
    """Everything one pipeline execution produced."""

    world: World
    config: PipelineConfig
    collection: CollectionResult
    curation_stats: CurationStats
    dataset: SmishingDataset
    enriched: EnrichedDataset
    #: Observability for the run; NULL_TELEMETRY when tracing was off.
    telemetry: Telemetry = field(default_factory=lambda: NULL_TELEMETRY)

    @property
    def annotated_dataset(self) -> SmishingDataset:
        return self.enriched.annotated_dataset()


def build_enrichment_services(
    world: World, *, endpoint: Optional[OpenAiEndpoint] = None
) -> EnrichmentServices:
    """Wire the world's service simulators into an enrichment battery."""
    if endpoint is None:
        endpoint = OpenAiEndpoint(
            clock=world.clock,
            annotator=MessageAnnotator(
                brands=world.brands, templates=world.templates
            ),
        )
    return EnrichmentServices(
        hlr=world.hlr,
        whois=world.whois,
        crtsh=world.crtsh,
        passivedns=world.passivedns,
        ipinfo=world.ipinfo,
        virustotal=world.virustotal,
        gsb=world.gsb,
        openai=endpoint,
    )


@contextmanager
def _observed_meters(telemetry: Telemetry, meters):
    """Attach the telemetry hook to every meter for the duration of a
    run, then detach and capture final snapshots — the world object is
    left unmodified for other (possibly telemetry-free) runs."""
    if not telemetry.enabled:
        yield
        return
    hook = telemetry.meter_hook()
    for meter in meters:
        meter.observer = hook
    try:
        yield
    finally:
        for meter in meters:
            meter.observer = None
            telemetry.capture_meter(meter)


def run_pipeline(
    world: World,
    config: Optional[PipelineConfig] = None,
    telemetry: Optional[Telemetry] = None,
    fault_plan: Optional[FaultPlan] = None,
    execution: Optional[ExecutionPolicy] = None,
    checkpoint=None,
) -> PipelineRun:
    """Collect from all five forums, curate, and enrich.

    ``telemetry`` of None (the default) runs against the shared no-op
    telemetry: no span objects are allocated and every instrumentation
    site costs a single dispatch. Pass ``Telemetry.create(...)`` to get
    nested spans (wall + simulated time), per-service counters, and
    end-of-run meter snapshots on ``PipelineRun.telemetry``.

    ``fault_plan`` of None (or an empty plan) runs against the world's
    services directly. A non-empty plan wraps every targeted forum and
    enrichment service in a :class:`~repro.faults.FaultProxy` for this
    run only — the world object is never mutated — and the run completes
    anyway: collection failures become ``CollectionLimitation`` records,
    enrichment failures become ``EnrichmentGap`` records.

    ``execution`` of None runs the default
    :class:`~repro.exec.ExecutionPolicy` (one worker, enrichment cache
    on). Any policy — any worker count, cache on or off — produces a
    byte-identical ``PipelineRun``; see :mod:`repro.exec.engine` for the
    argument and ``tests/test_exec_equivalence.py`` for the proof.

    ``checkpoint`` of None runs without durability. Pass a
    :class:`~repro.checkpoint.CheckpointSession` to journal the run
    (record mode) or to finish a crashed one (resume mode): completed
    stages are restored from their barrier snapshots instead of
    re-running, journaled enrichment lookups are replayed without
    touching any service, and the run continues live from exactly where
    the crash landed — byte-identical to a never-crashed run (proven by
    ``tests/test_checkpoint_equivalence.py``).
    """
    config = config or PipelineConfig()
    telemetry = ensure_telemetry(telemetry)
    telemetry.tracer.bind_clock(world.clock)
    policy = execution or ExecutionPolicy()
    checkpoint = checkpoint if checkpoint is not None else NULL_CHECKPOINT

    services = build_enrichment_services(world)
    forums = world.forums
    if fault_plan is not None and not fault_plan.is_empty:
        services, forums = inject_faults(services, forums, fault_plan,
                                         clock=world.clock)
    forum_meters = [forum.meter for forum in forums.values()]
    service_meters = list(services.meters().values())

    engine = ExecutionEngine(policy)
    cache = engine.build_cache()
    enricher = Enricher(
        services, telemetry,
        retry_policy=RetryPolicy(seed=world.config.seed),
        cache=cache,
        pool=engine.enrichment_pool(),
        journal=checkpoint.enrichment_journal(),
    )
    if checkpoint.active:
        checkpoint.bind(
            registry=build_state_registry(world, services, forums, enricher),
            scenario=world.config, config=config, fault_plan=fault_plan,
            policy=policy,
        )
    try:
        with engine, _observed_meters(telemetry,
                                      forum_meters + service_meters):
            with telemetry.tracer.span(
                "pipeline", seed=world.config.seed,
                n_campaigns=world.config.n_campaigns,
                faults=(fault_plan.describe() if fault_plan is not None
                        else "none"),
                workers=policy.workers,
                cache="on" if policy.cache else "off",
            ) as root:
                with telemetry.tracer.span("collect") as collect_span:
                    collection = checkpoint.restore_stage("collection")
                    if collection is None:
                        collection = collect_all(
                            forums, config, telemetry,
                            pool=engine.collection_pool(
                                fault_plan, [f.value for f in forums]),
                        )
                        checkpoint.stage_barrier("collection", collection)
                    else:
                        collect_span.set(resumed=1)
                    collect_span.set(posts_seen=collection.posts_seen,
                                     reports=len(collection.reports),
                                     limitations=len(collection.limitations))
                restored = checkpoint.restore_stage("curation")
                if restored is None:
                    vision = OpenAiVisionExtractor(
                        derive(world.config.seed, "pipeline-vision"),
                        miss_rate=config.vision_miss_rate,
                        stable_seed=(world.config.seed
                                     if config.stable_vision else None),
                    )
                    curator = Curator(vision, telemetry)
                    dataset = curator.curate(collection.reports)
                    curation_stats = curator.stats
                    checkpoint.stage_barrier("curation",
                                             (dataset, curation_stats))
                else:
                    dataset, curation_stats = restored
                    with telemetry.tracer.span("curate") as curate_span:
                        curate_span.set(resumed=1, records=len(dataset))
                checkpoint.begin_enrichment()
                enriched = enricher.run(dataset)
                root.set(records=len(dataset), gaps=len(enriched.gaps))
        checkpoint.complete()
    finally:
        # Snapshots must survive partially-failed runs too: a crashed
        # enrichment stage still leaves breaker state worth recording
        # (meters are captured by _observed_meters' own finally). Any
        # span still open here (a crash escaped the context managers)
        # is closed and flagged, so the trace always serialises.
        telemetry.tracer.abandon_open()
        for breaker in enricher.breakers.values():
            telemetry.capture_breaker(breaker)
        if cache is not None:
            telemetry.capture_cache(cache)
        telemetry.capture_checkpoint(checkpoint.stats())
        telemetry.capture_exec(engine.stats())
        checkpoint.close()
    return PipelineRun(
        world=world,
        config=config,
        collection=collection,
        curation_stats=curation_stats,
        dataset=dataset,
        enriched=enriched,
        telemetry=telemetry,
    )
