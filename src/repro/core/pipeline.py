"""End-to-end pipeline: collect → curate → enrich a synthetic world.

This is the programmatic equivalent of everything §3 describes, wired
against a :class:`~repro.world.scenario.World`. The result object carries
every intermediate product so analyses, tests, and benches can introspect
any stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..imaging.vision_openai import OpenAiVisionExtractor
from ..nlp.annotator import MessageAnnotator
from ..nlp.openai_api import OpenAiEndpoint
from ..utils.rng import derive
from ..world.scenario import World
from .collection import CollectionResult, collect_all
from .config import PipelineConfig
from .curation import CurationStats, Curator
from .dataset import SmishingDataset
from .enrichment import EnrichedDataset, Enricher, EnrichmentServices


@dataclass
class PipelineRun:
    """Everything one pipeline execution produced."""

    world: World
    config: PipelineConfig
    collection: CollectionResult
    curation_stats: CurationStats
    dataset: SmishingDataset
    enriched: EnrichedDataset

    @property
    def annotated_dataset(self) -> SmishingDataset:
        return self.enriched.annotated_dataset()


def build_enrichment_services(
    world: World, *, endpoint: Optional[OpenAiEndpoint] = None
) -> EnrichmentServices:
    """Wire the world's service simulators into an enrichment battery."""
    if endpoint is None:
        endpoint = OpenAiEndpoint(
            clock=world.clock,
            annotator=MessageAnnotator(
                brands=world.brands, templates=world.templates
            ),
        )
    return EnrichmentServices(
        hlr=world.hlr,
        whois=world.whois,
        crtsh=world.crtsh,
        passivedns=world.passivedns,
        ipinfo=world.ipinfo,
        virustotal=world.virustotal,
        gsb=world.gsb,
        openai=endpoint,
    )


def run_pipeline(
    world: World, config: Optional[PipelineConfig] = None
) -> PipelineRun:
    """Collect from all five forums, curate, and enrich."""
    config = config or PipelineConfig()
    collection = collect_all(world.forums, config)
    vision = OpenAiVisionExtractor(
        derive(world.config.seed, "pipeline-vision"),
        miss_rate=config.vision_miss_rate,
    )
    curator = Curator(vision)
    dataset = curator.curate(collection.reports)
    enricher = Enricher(build_enrichment_services(world))
    enriched = enricher.run(dataset)
    return PipelineRun(
        world=world,
        config=config,
        collection=collection,
        curation_stats=curator.stats,
        dataset=dataset,
        enriched=enriched,
    )
