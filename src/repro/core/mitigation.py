"""Mitigation what-if simulators for the §7.2 recommendations.

Each simulator replays a measured dataset under a proposed countermeasure
and reports how much smishing it would have intercepted:

* :class:`ReportingChannelModel` — what official-channel (7726-style)
  reporting coverage looks like as user awareness grows (§7.2 notes 76%
  of UK users have never heard of 7726).
* :class:`ShortenerScreening` — URL shorteners checking destinations
  against threat intelligence before serving redirects.
* :class:`RegistrarAbuseCheck` — registrars refusing brand-squatting
  registrations at (re)issue time.
* :class:`CaScreening` — certificate authorities consulting blocklists
  before issuing TLS certificates (as Let's Encrypt once did with GSB).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..nlp.normalize import squash
from ..world.brands import BrandRegistry, default_brands
from .enrichment import EnrichedDataset


@dataclass(frozen=True)
class MitigationOutcome:
    """What one countermeasure would have intercepted."""

    name: str
    eligible: int
    intercepted: int

    @property
    def coverage(self) -> float:
        return self.intercepted / self.eligible if self.eligible else 0.0


class ReportingChannelModel:
    """Official-channel reporting coverage as awareness grows.

    Users who know the official service report there (operators see the
    smish and can act); the rest report on public forums or not at all.
    The paper's core data-collection argument is the gap this model
    quantifies.
    """

    def __init__(self, *, awareness: float = 0.24, report_propensity: float = 0.35):
        if not 0.0 <= awareness <= 1.0:
            raise ValueError("awareness must be within [0, 1]")
        self.awareness = awareness
        self.report_propensity = report_propensity

    def simulate(self, total_smishes: int, rng: random.Random) -> MitigationOutcome:
        """How many of ``total_smishes`` reach the official channel."""
        official = 0
        for _ in range(total_smishes):
            if rng.random() >= self.report_propensity:
                continue
            if rng.random() < self.awareness:
                official += 1
        return MitigationOutcome(
            name=f"7726-style reporting @ {self.awareness:.0%} awareness",
            eligible=total_smishes,
            intercepted=official,
        )

    def awareness_sweep(
        self, total_smishes: int, levels: Tuple[float, ...], seed: int = 7
    ) -> List[MitigationOutcome]:
        """Coverage at several awareness levels (the education lever)."""
        outcomes = []
        for level in levels:
            model = ReportingChannelModel(
                awareness=level, report_propensity=self.report_propensity
            )
            outcomes.append(model.simulate(total_smishes, random.Random(seed)))
        return outcomes


class ShortenerScreening:
    """Shorteners vetting destinations against threat intel (§7.2).

    A shortened smishing link is intercepted when the *destination* URL
    would be flagged by at least ``min_vendors`` VirusTotal vendors — the
    check bit.ly/is.gd could run before serving a redirect.
    """

    def __init__(self, *, min_vendors: int = 1):
        self.min_vendors = min_vendors

    def simulate(self, enriched: EnrichedDataset) -> MitigationOutcome:
        eligible = intercepted = 0
        for enrichment in enriched.urls.values():
            if enrichment.shortener is None:
                continue
            eligible += 1
            report = enrichment.vt_report
            if report is not None and report.malicious >= self.min_vendors:
                intercepted += 1
        return MitigationOutcome(
            name=f"shortener screening (VT>={self.min_vendors})",
            eligible=eligible,
            intercepted=intercepted,
        )


class RegistrarAbuseCheck:
    """Registrars blocking brand-squatting names at registration.

    A registered smishing domain is intercepted when its name embeds an
    impersonatable brand token (the check §7.2 asks GoDaddy/NameCheap to
    run before (re)issuing).
    """

    def __init__(self, brands: Optional[BrandRegistry] = None,
                 *, min_token_length: int = 4):
        self._brands = brands or default_brands()
        self._min_token = min_token_length
        self._tokens = {
            squash(alias)
            for alias in self._brands.all_alias_forms()
            if len(squash(alias)) >= min_token_length
        }

    def domain_is_squatting(self, domain: str) -> bool:
        key = squash(domain)
        return any(token in key for token in self._tokens)

    def simulate(self, enriched: EnrichedDataset) -> MitigationOutcome:
        eligible = intercepted = 0
        seen: set = set()
        for enrichment in enriched.urls.values():
            domain = enrichment.registered_domain
            if domain is None or domain in seen:
                continue
            if enrichment.whois is None or enrichment.whois.registrar is None:
                continue  # not a registrar-issued name (free hosting etc.)
            seen.add(domain)
            eligible += 1
            if self.domain_is_squatting(domain):
                intercepted += 1
        return MitigationOutcome(
            name="registrar brand-squatting check",
            eligible=eligible,
            intercepted=intercepted,
        )


class CaScreening:
    """CAs consulting blocklists before issuing certificates (§7.2).

    An HTTPS smishing host is intercepted when the GSB transparency
    report would have flagged it at issuance time — the Let's Encrypt
    pre-2019 policy, upgraded with richer data sources.
    """

    def simulate(self, enriched: EnrichedDataset) -> MitigationOutcome:
        from ..types import GsbStatus

        eligible = intercepted = 0
        for enrichment in enriched.urls.values():
            summary = enrichment.certificates
            if summary is None or summary.certificates == 0:
                continue
            eligible += 1
            if enrichment.gsb_transparency in (GsbStatus.UNSAFE,
                                               GsbStatus.PARTIALLY_UNSAFE):
                intercepted += 1
        return MitigationOutcome(
            name="CA blocklist screening at issuance",
            eligible=eligible,
            intercepted=intercepted,
        )


def run_all_mitigations(
    enriched: EnrichedDataset, *, total_smishes: Optional[int] = None,
    seed: int = 7,
) -> List[MitigationOutcome]:
    """Evaluate every modelled countermeasure on one dataset."""
    total = total_smishes if total_smishes is not None else len(enriched.dataset)
    outcomes = [
        ReportingChannelModel().simulate(total, random.Random(seed)),
        ShortenerScreening().simulate(enriched),
        ShortenerScreening(min_vendors=3).simulate(enriched),
        RegistrarAbuseCheck().simulate(enriched),
        CaScreening().simulate(enriched),
    ]
    return outcomes
