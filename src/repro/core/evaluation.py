"""Annotation evaluation (§3.4): IRR and model-vs-human agreement.

The paper samples 150 messages, has two authors label scam category,
impersonated brand and lures, computes Cohen's kappa between them
(IRR: brands 0.82, scam types 0.94, lures 0.85), builds a consensus
ground truth, and then scores GPT-4o against it (brands 0.85, scam types
0.93, lures 0.70).

Here the "authors" are simulated annotators: they read the ground-truth
labels (they are careful humans) but err at calibrated per-property
rates; the consensus resolves their disagreements back to ground truth,
and the model is the real rule-based annotator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..nlp.annotator import MessageAnnotator
from ..sms.message import AnnotationLabels, SmishingEvent
from ..types import LurePrinciple, ScamType
from ..utils.stats import cohens_kappa, multilabel_kappa
from ..world.scenario import World
from .dataset import SmishingDataset, SmishingRecord


@dataclass(frozen=True)
class AnnotatorProfile:
    """Error rates of one (simulated) human annotator."""

    name: str
    scam_error: float = 0.02
    brand_error: float = 0.08
    lure_flip: float = 0.035


class SimulatedHumanAnnotator:
    """A careful human: ground truth with calibrated slips."""

    def __init__(self, profile: AnnotatorProfile, rng: random.Random):
        self._profile = profile
        self._rng = rng

    @property
    def name(self) -> str:
        return self._profile.name

    def annotate(self, truth: AnnotationLabels) -> AnnotationLabels:
        scam = truth.scam_type
        if self._rng.random() < self._profile.scam_error:
            # Humans confuse adjacent categories, not random ones.
            confusions = {
                ScamType.BANKING: ScamType.OTHERS,
                ScamType.DELIVERY: ScamType.GOVERNMENT,
                ScamType.GOVERNMENT: ScamType.BANKING,
                ScamType.TELECOM: ScamType.SPAM,
                ScamType.OTHERS: ScamType.SPAM,
                ScamType.SPAM: ScamType.OTHERS,
                ScamType.WRONG_NUMBER: ScamType.OTHERS,
                ScamType.HEY_MUM_DAD: ScamType.WRONG_NUMBER,
            }
            scam = confusions[scam]
        brand = truth.brand
        if self._rng.random() < self._profile.brand_error:
            brand = None if brand is not None else "Unknown"
        lures = set(truth.lures)
        for lure in LurePrinciple:
            if self._rng.random() < self._profile.lure_flip:
                if lure in lures:
                    lures.discard(lure)
                else:
                    lures.add(lure)
        return AnnotationLabels(
            scam_type=scam, language=truth.language, brand=brand,
            lures=frozenset(lures),
        )


@dataclass
class KappaTriple:
    """Agreement over the three annotated properties."""

    brands: float
    scam_types: float
    lures: float


@dataclass
class EvaluationReport:
    """The §3.4 numbers."""

    sample_size: int
    english_sample_size: int
    irr: KappaTriple
    model_vs_consensus: KappaTriple


def _truth_labels(world: World, record: SmishingRecord) -> Optional[AnnotationLabels]:
    if record.truth_event_id is None:
        return None
    event = world.event(record.truth_event_id)
    if event is None:
        return None
    return AnnotationLabels(
        scam_type=event.scam_type,
        language=event.language,
        brand=event.brand,
        lures=event.lures,
    )


def _kappas(
    a: Sequence[AnnotationLabels], b: Sequence[AnnotationLabels]
) -> KappaTriple:
    return KappaTriple(
        brands=cohens_kappa([x.brand for x in a], [x.brand for x in b]),
        scam_types=cohens_kappa(
            [x.scam_type for x in a], [x.scam_type for x in b]
        ),
        lures=multilabel_kappa(
            [x.lures for x in a], [x.lures for x in b], list(LurePrinciple)
        ),
    )


def evaluate_annotation(
    world: World,
    dataset: SmishingDataset,
    *,
    sample_size: int = 150,
    seed: int = 42,
    annotator: Optional[MessageAnnotator] = None,
) -> EvaluationReport:
    """Run the full §3.4 protocol on a curated dataset."""
    rng = random.Random(seed)
    candidates = [
        record for record in dataset
        if record.truth_event_id is not None
        and world.event(record.truth_event_id) is not None
    ]
    if not candidates:
        raise ValueError("dataset has no records linked to ground truth")
    sample = candidates if len(candidates) <= sample_size else rng.sample(
        candidates, sample_size
    )
    truths = [_truth_labels(world, record) for record in sample]

    human_a = SimulatedHumanAnnotator(
        AnnotatorProfile("author-1"), random.Random(seed + 1)
    )
    human_b = SimulatedHumanAnnotator(
        AnnotatorProfile("author-2", scam_error=0.025, brand_error=0.09,
                         lure_flip=0.04),
        random.Random(seed + 2),
    )
    labels_a = [human_a.annotate(t) for t in truths]
    labels_b = [human_b.annotate(t) for t in truths]

    # IRR is computed on English texts only (the annotators' common
    # language, §3.4).
    english_indices = [
        i for i, t in enumerate(truths) if t.language == "en"
    ]
    irr = _kappas(
        [labels_a[i] for i in english_indices],
        [labels_b[i] for i in english_indices],
    )

    # Consensus: where the authors agree keep the label, else resolve by
    # discussion — which lands on the truth.
    consensus: List[AnnotationLabels] = []
    for truth, la, lb in zip(truths, labels_a, labels_b):
        consensus.append(AnnotationLabels(
            scam_type=la.scam_type if la.scam_type == lb.scam_type
            else truth.scam_type,
            language=truth.language,
            brand=la.brand if la.brand == lb.brand else truth.brand,
            lures=(la.lures if la.lures == lb.lures else truth.lures),
        ))

    annotator = annotator or MessageAnnotator(
        brands=world.brands, templates=world.templates
    )
    model_labels = [
        annotator.annotate(record.record_id, record.text).labels
        for record in sample
    ]
    model = _kappas(model_labels, consensus)
    return EvaluationReport(
        sample_size=len(sample),
        english_sample_size=len(english_indices),
        irr=irr,
        model_vs_consensus=model,
    )
