"""Pseudo-anonymised dataset release (Appendix A/C).

The published dataset must not carry PII: raw phone numbers, e-mail
addresses, complete URLs, or personal names in texts. This module
produces release rows with exactly the fields Appendix C enumerates:
sender-ID *class*, HLR-derived type/operator/country, the scrubbed text,
its English translation, the URL-shortener name (not the URL), brand,
scam category, lures, and language.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..types import SenderIdKind
from .enrichment import EnrichedDataset

_URL_RE = re.compile(
    r"(?:https?://)?(?:[a-zA-Z0-9-]+\.)+[a-zA-Z]{2,24}(?:/[^\s]*)?"
)
_PHONE_RE = re.compile(r"\+?\d[\d\s().-]{6,}\d")
_EMAIL_RE = re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,24}")
#: First names the generator uses in conversation templates.
_NAME_RE = re.compile(
    r"\b(Anna|Maria|John|Sam|Alex|Emma|Lucas|Sofia|David|Laura|Tom|Nina|"
    r"Budi|Tanaka|Lee)\b"
)


def scrub_text(text: str) -> str:
    """Remove URLs, phone numbers, e-mail addresses and names from text."""
    # E-mails first: the URL pattern would otherwise eat their halves.
    scrubbed = _EMAIL_RE.sub("[EMAIL]", text)
    scrubbed = _URL_RE.sub("[URL]", scrubbed)
    scrubbed = _PHONE_RE.sub("[PHONE]", scrubbed)
    scrubbed = _NAME_RE.sub("[NAME]", scrubbed)
    return scrubbed


@dataclass
class ReleaseRow:
    """One row of the public dataset (Appendix C field list)."""

    sender_id_class: Optional[str]
    sender_id_type: Optional[str]
    sender_original_operator: Optional[str]
    sender_origin_country: Optional[str]
    text: str
    translated_text: Optional[str]
    url_shortener: Optional[str]
    brand: Optional[str]
    scam_category: Optional[str]
    lure_principles: List[str] = field(default_factory=list)
    language: Optional[str] = None

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "sender_id": self.sender_id_class,
            "sender_id_type": self.sender_id_type,
            "sender_id_original_mno": self.sender_original_operator,
            "sender_id_origin_country": self.sender_origin_country,
            "text_message": self.text,
            "translated_text_message": self.translated_text,
            "url_shortener": self.url_shortener,
            "brand_impersonated": self.brand,
            "scam_category": self.scam_category,
            "lure_principles": self.lure_principles,
            "language": self.language,
        }


_PII_PATTERNS = (_URL_RE, _EMAIL_RE)


def _contains_pii(row: ReleaseRow) -> bool:
    for text in (row.text, row.translated_text or ""):
        for pattern in _PII_PATTERNS:
            for match in pattern.finditer(text):
                if match.group(0) not in ("[URL]", "[EMAIL]"):
                    return True
        if _PHONE_RE.search(text):
            return True
    return False


def build_release(enriched: EnrichedDataset) -> List[ReleaseRow]:
    """Produce the anonymised release for an enriched dataset."""
    rows: List[ReleaseRow] = []
    for record in enriched.dataset:
        labels = enriched.labels_for(record)
        sender = enriched.sender_enrichment_for(record)
        url_info = enriched.url_enrichment_for(record)
        sender_class = None
        sender_type = operator = country = None
        if record.sender is not None:
            sender_class = {
                SenderIdKind.PHONE_NUMBER: "phone number",
                SenderIdKind.EMAIL: "email",
                SenderIdKind.ALPHANUMERIC: "alphanumeric",
            }[record.sender.kind]
        if sender is not None and sender.hlr is not None:
            sender_type = sender.hlr.number_type.value
            operator = sender.hlr.original_operator
            country = sender.hlr.country_iso3
        translated = record.translated_text
        if labels is not None and translated is None and labels.language != "en":
            raw = enriched.raw_annotations.get(record.record_id)
            translated = raw.translation if raw else None
        rows.append(ReleaseRow(
            sender_id_class=sender_class,
            sender_id_type=sender_type,
            sender_original_operator=operator,
            sender_origin_country=country,
            text=scrub_text(record.text),
            translated_text=scrub_text(translated) if translated else None,
            url_shortener=url_info.shortener if url_info else None,
            brand=labels.brand if labels else None,
            scam_category=labels.scam_type.value if labels else None,
            lure_principles=sorted(l.value for l in labels.lures)
            if labels else [],
            language=labels.language if labels else None,
        ))
    return rows


def validate_release(rows: List[ReleaseRow]) -> List[int]:
    """Indices of rows still carrying PII (must be empty before release)."""
    return [index for index, row in enumerate(rows) if _contains_pii(row)]


def save_release(rows: List[ReleaseRow], path: "Path | str") -> int:
    """Write the release as JSONL after a PII sweep.

    Raises ``ValueError`` if any row still contains PII.
    """
    offenders = validate_release(rows)
    if offenders:
        raise ValueError(
            f"{len(offenders)} release rows still contain PII: "
            f"{offenders[:5]}..."
        )
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row.to_json_dict(), ensure_ascii=False)
                         + "\n")
    return len(rows)
