"""Quarantine/sanitization: per-record defence against hostile reports.

Public report channels are adversarial by construction (§3, §7): OCR
junk, copy-paste mangling, deliberately oversized or mojibake bodies,
defanged-beyond-repair URLs, coordinated duplicate floods, and poison
reports planting benign brand names to bait false blocklisting. The
fault layer (:mod:`repro.faults`) hardens the pipeline against failing
*infrastructure*; this module is its data-plane twin — it hardens the
pipeline against Byzantine *data*.

The contract mirrors :class:`~repro.core.collection.CollectionLimitation`
and :class:`~repro.core.enrichment.EnrichmentGap`: a hostile record is
never a crash, it is one structured :class:`QuarantineRecord` — who sent
it, on which forum, why it was diverted, and at which stage. Every
collected report lands in exactly one of three buckets (curated,
quarantined, dropped), so ``curated + quarantined + dropped ==
collected`` is an invariant the differential harness can enforce.

Two screening layers:

* :class:`Sanitizer` — per-record validation: schema/field types,
  unicode-anomaly caps (zero-width, bidi overrides, replacement chars),
  bounded body/field/token lengths (budget guards for the
  ``normalize.squash`` / ``brands_ner.find_all`` hot paths), structured
  URL and timestamp plausibility.
* the anomaly screen — batch-context detection: per-reporter duplicate
  floods and near-duplicate poison clusters, with thresholds calibrated
  well above anything a clean world produces (legitimate re-reports of
  one event cap at 3 by ``REPORT_COUNT_WEIGHTS``; measured clean maxima
  are 4 same-author and 2 cross-author identical texts).

Deliberate pass-throughs: defanged-but-recoverable URLs (``hxxp://``,
``bracket[.]dot`` — :func:`repro.net.url.refang` handles them), ordinary
duplicate reports (the dedup ledger's job), and unparseable paste bodies
(they fall into the *dropped* bucket like any other yield-less report).
"""

from __future__ import annotations

import datetime as dt
import unicodedata
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ParseError
from ..net.url import try_parse_url
from ..nlp.normalize import squash
from ..types import Forum
from ..utils.timeutils import parse_screenshot_timestamp
from .collection import RawReport

#: Stage tags a quarantine record can carry.
QUARANTINE_STAGES = ("curation", "serve")

#: Every reason the sanitizer / anomaly screen can divert a record for.
QUARANTINE_REASONS = (
    "schema_violation",
    "oversize_body",
    "unicode_anomaly",
    "token_budget",
    "malformed_url",
    "invalid_timestamp",
    "reporter_flood",
    "poison_cluster",
    "invalid_record",
)


@dataclass(frozen=True)
class QuarantineRecord:
    """One diverted report: the curation-stage sibling of
    :class:`~repro.core.collection.CollectionLimitation` and
    :class:`~repro.core.enrichment.EnrichmentGap`."""

    forum: Forum
    reporter: str
    reason: str
    stage: str = "curation"
    detail: str = ""
    post_id: str = ""
    simulated_at: Optional[dt.datetime] = None
    #: Which ingestion epoch diverted this record. ``None`` for batch
    #: runs; :mod:`repro.stream` stamps the epoch index before merging.
    epoch: Optional[int] = None


@dataclass(frozen=True)
class SanitizerLimits:
    """Caps and thresholds; the defaults pass every clean world."""

    #: Bodies above this are hostile by construction — the longest
    #: legitimate report body is a few KB of paste.
    max_body_chars: int = 16_384
    #: Per-field cap for structured form submissions.
    max_field_chars: int = 2_048
    #: A single whitespace-free token longer than this would blow the
    #: regex-step budget of ``normalize.squash`` / ``find_all``.
    max_token_chars: int = 1_024
    #: Zero-width / bidi-override / control character tolerance: both
    #: the absolute count and the density must be exceeded to divert
    #: (emoji-adjacent joiners in real reports stay under both).
    max_control_chars: int = 8
    max_control_density: float = 0.05
    #: Plausible receipt-year window for structured timestamp fields.
    min_timestamp_year: int = 2000
    max_timestamp_year: int = 2035
    #: Same author, same normalized text: clean worlds max out at 4
    #: (three re-reports of one event plus text collisions).
    flood_threshold: int = 8
    #: Same normalized text across authors, attachment-less: clean
    #: worlds max out at 2.
    cluster_threshold: int = 6
    #: How many characters of text feed the normalized cluster key —
    #: bounds the cost of keying even a megabyte body.
    cluster_key_chars: int = 1_000


#: Unicode categories that count toward the control/invisible budget.
_HOSTILE_CATEGORIES = frozenset({"Cf", "Co", "Cn"})
#: Always-suspicious code points (kept explicit for auditability).
_HOSTILE_CHARS = frozenset(
    "​‌‍‎‏"        # zero-width + marks
    "‪‫‬‭‮"        # bidi embeddings/overrides
    "⁦⁧⁨⁩"              # bidi isolates
    "﻿�"                           # BOM, replacement char
)
_ALLOWED_CONTROLS = frozenset("\n\r\t")


def _hostile_char_count(text: str, *, limit: int) -> int:
    """Count invisible/control/undefined characters, capped at ``limit``
    so a pathological body never costs a full scan."""
    count = 0
    for ch in text:
        if ch in _ALLOWED_CONTROLS:
            continue
        if (ch in _HOSTILE_CHARS or ord(ch) < 0x20
                or unicodedata.category(ch) in _HOSTILE_CATEGORIES):
            count += 1
            if count >= limit:
                return count
    return count


def _effective_text(report: RawReport) -> str:
    """The text curation would mine from this report (best effort)."""
    if report.structured:
        value = report.structured.get("text")
        if isinstance(value, str):
            return value
    return report.body


class Sanitizer:
    """Per-record screening plus the batch-context anomaly screen.

    The sanitizer always runs — clean inputs must provably pass, which
    is what makes "``--hostile none`` quarantines nothing" a testable
    guarantee rather than a configuration accident. Batch curation calls
    :meth:`observe_batch` first (so every member of a flood/poison
    cluster is diverted, not just the copies past the threshold), then
    :meth:`screen` per report. Long-running services skip the pre-scan
    and let the cumulative counters latch instead; the counters are
    durable via :meth:`state_dict` / :meth:`restore_state`.
    """

    def __init__(self, limits: Optional[SanitizerLimits] = None,
                 *, stage: str = "curation"):
        self.limits = limits or SanitizerLimits()
        self.stage = stage
        #: Cumulative (author, text-key) sightings across screens.
        self._author_counts: Dict[Tuple[str, str], int] = {}
        #: Cumulative attachment-less text-key sightings.
        self._text_counts: Dict[str, int] = {}
        #: Keys implicated by the current batch's pre-scan.
        self._flood_keys: set = set()
        self._cluster_keys: set = set()
        self.screened = 0
        self.quarantined = 0

    # -- keys -----------------------------------------------------------------

    def _text_key(self, report: RawReport) -> str:
        """Anomaly-screen cluster key: the squashed structured text.

        Only structured submissions (the form-based channels coordinated
        abuse actually targets) are flood/cluster screened. Free-text
        posts legitimately repeat — commentary templates, chatter, a
        handful of prolific handles — so keying on bodies would divert
        organic traffic; those channels are protected by the structural
        checks here and the dedup ledger downstream.
        """
        if not report.structured:
            return ""
        text = report.structured.get("text")
        if not isinstance(text, str) or not text.strip():
            return ""
        return squash(text[: self.limits.cluster_key_chars])[:200]

    # -- batch-context anomaly screen ----------------------------------------

    def observe_batch(self, reports: Iterable[RawReport]) -> None:
        """Pre-scan a whole curation batch so cluster membership is
        known before the first per-record screen."""
        author_counts: Dict[Tuple[str, str], int] = {}
        text_counts: Dict[str, int] = {}
        keys: List[Tuple[RawReport, str]] = []
        for report in reports:
            key = self._text_key(report)
            keys.append((report, key))
            if not key:
                continue
            author_counts[(report.author, key)] = (
                author_counts.get((report.author, key), 0) + 1)
            if not report.screenshots:
                text_counts[key] = text_counts.get(key, 0) + 1
        self._flood_keys = {
            pair for pair, count in author_counts.items()
            if count >= self.limits.flood_threshold
        }
        self._cluster_keys = {
            key for key, count in text_counts.items()
            if count >= self.limits.cluster_threshold
        }

    def _anomaly_reason(self, report: RawReport,
                        key: str) -> Optional[Tuple[str, str]]:
        if not key:
            return None
        limits = self.limits
        author_pair = (report.author, key)
        count = self._author_counts.get(author_pair, 0) + 1
        self._author_counts[author_pair] = count
        cluster = 0
        if not report.screenshots:
            cluster = self._text_counts.get(key, 0) + 1
            self._text_counts[key] = cluster
        if author_pair in self._flood_keys or count >= limits.flood_threshold:
            return ("reporter_flood",
                    f"reporter {report.author} filed {max(count, limits.flood_threshold)}+ "
                    f"near-identical reports")
        if key in self._cluster_keys or cluster >= limits.cluster_threshold:
            return ("poison_cluster",
                    f"near-duplicate cluster of {max(cluster, limits.cluster_threshold)}+ "
                    f"attachment-less reports")
        return None

    # -- per-record screening -------------------------------------------------

    def _structural_reason(self,
                           report: RawReport) -> Optional[Tuple[str, str]]:
        limits = self.limits
        body = report.body
        if not isinstance(body, str):
            return ("schema_violation",
                    f"body is {type(body).__name__}, not text")
        structured = report.structured
        if structured is not None:
            for field_name, value in structured.items():
                if value is not None and not isinstance(value, str):
                    return ("schema_violation",
                            f"structured field {field_name!r} is "
                            f"{type(value).__name__}, not text")
        if len(body) > limits.max_body_chars:
            return ("oversize_body",
                    f"body of {len(body)} chars exceeds the "
                    f"{limits.max_body_chars}-char cap")
        if structured:
            for field_name, value in structured.items():
                if value and len(value) > limits.max_field_chars:
                    return ("oversize_body",
                            f"structured field {field_name!r} of "
                            f"{len(value)} chars exceeds the "
                            f"{limits.max_field_chars}-char cap")
        text = _effective_text(report)
        hostiles = _hostile_char_count(
            text, limit=limits.max_control_chars + 1)
        if (hostiles > limits.max_control_chars
                and hostiles > limits.max_control_density
                * max(1, len(text))):
            return ("unicode_anomaly",
                    f"{hostiles}+ invisible/control characters in the "
                    f"report text")
        for token in text.split():
            if len(token) > limits.max_token_chars:
                return ("token_budget",
                        f"single {len(token)}-char token exceeds the "
                        f"{limits.max_token_chars}-char normalization "
                        f"budget")
        if structured:
            raw_url = structured.get("url")
            if raw_url and try_parse_url(raw_url) is None:
                return ("malformed_url",
                        f"structured URL field does not parse: "
                        f"{raw_url[:80]!r}")
            raw_ts = (structured.get("timestamp")
                      or structured.get("report_date"))
            if raw_ts:
                reason = self._timestamp_reason(raw_ts, report.posted_at)
                if reason is not None:
                    return reason
        return None

    def _timestamp_reason(self, raw: str,
                          posted_at: dt.datetime) -> Optional[Tuple[str, str]]:
        limits = self.limits
        try:
            parsed = parse_screenshot_timestamp(
                raw, reference=posted_at.date())
        except (ParseError, ValueError, TypeError,
                AttributeError, OverflowError):
            return ("invalid_timestamp",
                    f"structured timestamp does not parse: {raw[:40]!r}")
        if parsed.has_date and not (
                limits.min_timestamp_year
                <= parsed.value.year
                <= limits.max_timestamp_year):
            return ("invalid_timestamp",
                    f"timestamp year {parsed.value.year} outside "
                    f"[{limits.min_timestamp_year}, "
                    f"{limits.max_timestamp_year}]")
        return None

    def screen(self, report: RawReport) -> Optional[QuarantineRecord]:
        """Screen one report; a :class:`QuarantineRecord` means divert."""
        self.screened += 1
        verdict = self._structural_reason(report)
        if verdict is None:
            verdict = self._anomaly_reason(report, self._text_key(report))
        if verdict is None:
            return None
        reason, detail = verdict
        self.quarantined += 1
        return QuarantineRecord(
            forum=report.forum,
            reporter=report.author if isinstance(report.author, str)
            else repr(report.author),
            reason=reason,
            stage=self.stage,
            detail=detail,
            post_id=report.post_id,
            simulated_at=report.posted_at,
        )

    # -- durability (serve commits) -------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "author_counts": [[author, key, count] for (author, key), count
                              in sorted(self._author_counts.items())],
            "text_counts": sorted(self._text_counts.items()),
            "screened": self.screened,
            "quarantined": self.quarantined,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._author_counts = {
            (author, key): int(count)
            for author, key, count in state.get("author_counts", [])
        }
        self._text_counts = {key: int(count)
                             for key, count in state.get("text_counts", [])}
        self.screened = int(state.get("screened", 0))
        self.quarantined = int(state.get("quarantined", 0))


def quarantine_by_reason(
    records: Iterable[QuarantineRecord],
) -> Dict[str, int]:
    """Reason -> count, for tables and telemetry."""
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.reason] = counts.get(record.reason, 0) + 1
    return dict(sorted(counts.items()))


def stamp_epoch(records: List[QuarantineRecord],
                epoch_index: int) -> List[QuarantineRecord]:
    """Epoch-stamped copies, mirroring the limitation/gap discipline."""
    return [replace(record, epoch=epoch_index) for record in records]
