"""Curation: turn raw forum reports into dataset records (§3.2).

Three extraction paths feed :class:`~repro.core.dataset.SmishingRecord`:

* **Images** — sent to the OpenAI-style vision extractor (the pipeline's
  production back-end; the OCR back-ends exist for the §3.2 comparison
  and the ablation bench). Non-SMS images are dismissed.
* **Structured reports** — Smishtank and Smishing.eu forms map directly.
* **Text bodies** — Pastebin pastes are parsed with the analyst-format
  parser; tweets that quote the SMS inline are mined with a regex.

Timestamps are parsed with the multi-format parser; redacted sender
fields are dropped; URLs are extracted from the recovered text.
"""

from __future__ import annotations

import datetime as dt
import re
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ParseError, ValidationError
from ..forums.pastebin import parse_paste
from ..imaging.vision_openai import OpenAiVisionExtractor, VisionExtraction
from ..net.url import extract_urls, try_parse_url
from ..obs import Telemetry, ensure_telemetry
from ..sms.senderid import is_redacted, try_classify_sender_id
from ..types import Forum
from ..utils.timeutils import ParsedTimestamp, parse_screenshot_timestamp
from .collection import RawReport
from .dataset import SmishingDataset, SmishingRecord
from .quarantine import (
    QuarantineRecord,
    Sanitizer,
    quarantine_by_reason,
)

_QUOTED_TEXT_RE = re.compile(r'Text was: "(?P<text>.+?)"', re.DOTALL)


@dataclass
class CurationStats:
    """Bookkeeping for a curation run."""

    reports_in: int = 0
    images_processed: int = 0
    images_dismissed: int = 0
    records_out: int = 0
    structured_used: int = 0
    text_mined: int = 0
    timestamp_parse_failures: int = 0
    #: Three-bucket report accounting (hostile-input invariant):
    #: ``reports_curated + quarantined + reports_dropped == reports_in``.
    reports_curated: int = 0
    reports_dropped: int = 0
    quarantined: int = 0
    quarantines: List[QuarantineRecord] = field(default_factory=list)

    def merge(self, other: "CurationStats") -> None:
        """Accumulate another run's counters (epoch merging in
        :mod:`repro.stream` — every field is additive)."""
        self.reports_in += other.reports_in
        self.images_processed += other.images_processed
        self.images_dismissed += other.images_dismissed
        self.records_out += other.records_out
        self.structured_used += other.structured_used
        self.text_mined += other.text_mined
        self.timestamp_parse_failures += other.timestamp_parse_failures
        self.reports_curated += other.reports_curated
        self.reports_dropped += other.reports_dropped
        self.quarantined += other.quarantined
        self.quarantines.extend(other.quarantines)

    def drop_reasons(self) -> dict:
        """Per-reason drop accounting for the observability layer."""
        reasons = {
            "image_dismissed": self.images_dismissed,
            "timestamp_parse_failure": self.timestamp_parse_failures,
            "no_record_produced": max(
                0, self.reports_in - self.records_out - self.quarantined
            ),
        }
        if self.quarantined:
            reasons["quarantined"] = self.quarantined
        return reasons


class Curator:
    """Builds the curated dataset from collected reports."""

    def __init__(self, vision: OpenAiVisionExtractor,
                 telemetry: Optional[Telemetry] = None,
                 *, record_id_start: int = 0,
                 sanitizer: Optional[Sanitizer] = None):
        self._vision = vision
        self._telemetry = ensure_telemetry(telemetry)
        self._counter = record_id_start
        # The sanitizer always runs — on clean input it provably
        # quarantines nothing (the `--hostile none` zero-quarantine
        # guarantee). Long-running services pass a shared instance so
        # flood counters latch across batches.
        self._sanitizer = sanitizer if sanitizer is not None else Sanitizer()
        self.stats = CurationStats()

    @property
    def record_counter(self) -> int:
        """Records issued so far (including any ``record_id_start``)."""
        return self._counter

    def _next_record_id(self) -> str:
        self._counter += 1
        return f"r{self._counter:07d}"

    def _parse_timestamp(
        self, raw: str, reference: Optional[dt.date]
    ) -> Optional[ParsedTimestamp]:
        """Parse a timestamp string with day/month disambiguation.

        Numeric dates like ``2/12/19`` are ambiguous between day-first
        and month-first conventions. The receipt time can never postdate
        the report, so when the day-first reading lands after the post
        date but the month-first reading does not, the month-first
        reading wins (and vice versa).
        """
        if not raw:
            return None
        try:
            parsed = parse_screenshot_timestamp(raw, reference=reference)
        except (ParseError, ValueError, TypeError, AttributeError,
                OverflowError):
            # Garbage in any shape — non-string fields, numeric overflow,
            # non-date junk — is a per-record drop, never an exception.
            self.stats.timestamp_parse_failures += 1
            return None
        if (reference is not None and parsed.has_date
                and parsed.value.date() > reference):
            try:
                flipped = parse_screenshot_timestamp(
                    raw, reference=reference, day_first=False
                )
            except (ParseError, ValueError, TypeError, AttributeError,
                    OverflowError):
                flipped = None
            if (flipped is not None and flipped.has_date
                    and flipped.value.date() <= reference):
                parsed = flipped
        if parsed.has_date and not (1990 <= parsed.value.year <= 2100):
            # Year 0/9999-style timestamps parse but are implausible as
            # SMS receipt times; treat them as parse failures.
            self.stats.timestamp_parse_failures += 1
            return None
        return parsed

    def _record_from_extraction(
        self, report: RawReport, extraction: VisionExtraction
    ) -> Optional[SmishingRecord]:
        if extraction.dismissed or not extraction.text.strip():
            return None
        sender = None
        if extraction.sender_id and not is_redacted(extraction.sender_id):
            sender = try_classify_sender_id(extraction.sender_id)
        timestamp = self._parse_timestamp(
            extraction.timestamp, report.posted_at.date()
        )
        url = try_parse_url(extraction.url) if extraction.url else None
        if url is None:
            urls = extract_urls(extraction.text)
            url = urls[0] if urls else None
        return SmishingRecord(
            record_id=self._next_record_id(),
            forum=report.forum,
            source_post_id=report.post_id,
            text=extraction.text.strip(),
            sender=sender,
            timestamp=timestamp,
            url=url,
            collected_at=report.posted_at,
            from_image=True,
            truth_event_id=report.truth_event_id,
        )

    def _record_from_structured(
        self, report: RawReport
    ) -> Optional[SmishingRecord]:
        data = report.structured or {}
        text = (data.get("text") or "").strip()
        if not text:
            return None
        sender_raw = data.get("sender_id") or ""
        sender = None
        if sender_raw and not is_redacted(sender_raw):
            sender = try_classify_sender_id(sender_raw)
        timestamp_raw = data.get("timestamp") or data.get("report_date") or ""
        timestamp = self._parse_timestamp(timestamp_raw,
                                          report.posted_at.date())
        url = try_parse_url(data["url"]) if data.get("url") else None
        if url is None:
            urls = extract_urls(text)
            url = urls[0] if urls else None
        self.stats.structured_used += 1
        return SmishingRecord(
            record_id=self._next_record_id(),
            forum=report.forum,
            source_post_id=report.post_id,
            text=text,
            sender=sender,
            timestamp=timestamp,
            url=url,
            collected_at=report.posted_at,
            from_image=False,
            truth_event_id=report.truth_event_id,
        )

    def _record_from_paste(self, report: RawReport) -> Optional[SmishingRecord]:
        try:
            parsed = parse_paste(report.body)
        except ParseError:
            return None
        sender = (
            try_classify_sender_id(parsed.sender)
            if parsed.sender and not is_redacted(parsed.sender) else None
        )
        timestamp = self._parse_timestamp(parsed.received,
                                          report.posted_at.date())
        urls = extract_urls(parsed.message)
        self.stats.text_mined += 1
        return SmishingRecord(
            record_id=self._next_record_id(),
            forum=report.forum,
            source_post_id=report.post_id,
            text=parsed.message,
            sender=sender,
            timestamp=timestamp,
            url=urls[0] if urls else None,
            collected_at=report.posted_at,
            from_image=False,
            truth_event_id=report.truth_event_id,
        )

    def _record_from_quoted_body(
        self, report: RawReport
    ) -> Optional[SmishingRecord]:
        match = _QUOTED_TEXT_RE.search(report.body)
        if not match:
            return None
        text = match.group("text").strip()
        if len(text) < 20:
            return None
        urls = extract_urls(text)
        self.stats.text_mined += 1
        return SmishingRecord(
            record_id=self._next_record_id(),
            forum=report.forum,
            source_post_id=report.post_id,
            text=text,
            sender=None,
            timestamp=None,
            url=urls[0] if urls else None,
            collected_at=report.posted_at,
            from_image=False,
            truth_event_id=report.truth_event_id,
        )

    def curate(self, reports: List[RawReport]) -> SmishingDataset:
        """Run curation over a collection result's reports."""
        quarantined_before = len(self.stats.quarantines)
        with self._telemetry.tracer.span("curate") as span:
            dataset = self._curate_inner(reports)
            span.set(reports_in=self.stats.reports_in,
                     records_out=self.stats.records_out,
                     images_processed=self.stats.images_processed,
                     images_dismissed=self.stats.images_dismissed)
        metrics = self._telemetry.metrics
        metrics.counter("curation.reports_in").inc(self.stats.reports_in)
        metrics.counter("curation.records_out").inc(self.stats.records_out)
        metrics.counter("curation.images_processed").inc(
            self.stats.images_processed
        )
        metrics.counter("curation.structured_used").inc(
            self.stats.structured_used
        )
        metrics.counter("curation.text_mined").inc(self.stats.text_mined)
        for reason, count in self.stats.drop_reasons().items():
            metrics.counter("curation.drops", reason=reason).inc(count)
        # Quarantine counters exist only when something quarantined, so
        # clean runs render byte-identically to the pre-quarantine era.
        # Only this call's slice is counted — a shared Curator (serve)
        # must not re-report records an earlier batch already did.
        new_quarantines = self.stats.quarantines[quarantined_before:]
        if new_quarantines:
            for reason, count in quarantine_by_reason(
                    new_quarantines).items():
                metrics.counter("curation.quarantined",
                                reason=reason).inc(count)
            self._telemetry.capture_quarantine(new_quarantines)
        return dataset

    def _quarantine(self, record: QuarantineRecord) -> None:
        self.stats.quarantined += 1
        self.stats.quarantines.append(record)

    def _curate_inner(self, reports: List[RawReport]) -> SmishingDataset:
        dataset = SmishingDataset()
        # Batch-context pre-scan: flood/poison cluster membership is
        # known before the first report is screened, so *every* member
        # of a coordinated burst is diverted, not just the tail past
        # the threshold.
        self._sanitizer.observe_batch(reports)
        for report in reports:
            self.stats.reports_in += 1
            quarantine = self._sanitizer.screen(report)
            if quarantine is not None:
                self._quarantine(quarantine)
                continue
            produced = False
            try:
                for screenshot in report.screenshots:
                    self.stats.images_processed += 1
                    extraction = self._vision.extract(screenshot)
                    if extraction.dismissed:
                        self.stats.images_dismissed += 1
                        continue
                    record = self._record_from_extraction(report, extraction)
                    if record is not None:
                        dataset.add(record)
                        produced = True
                if not produced and report.structured:
                    record = self._record_from_structured(report)
                    if record is not None:
                        dataset.add(record)
                        produced = True
                if not produced and report.forum is Forum.PASTEBIN:
                    record = self._record_from_paste(report)
                    if record is not None:
                        dataset.add(record)
                        produced = True
                if not produced and report.forum in (Forum.TWITTER,
                                                     Forum.REDDIT):
                    record = self._record_from_quoted_body(report)
                    if record is not None:
                        dataset.add(record)
                        produced = True
            except ValidationError as exc:
                # Defence in depth: a validation failure deep in record
                # construction diverts this one report, never the run.
                self._quarantine(QuarantineRecord(
                    forum=report.forum,
                    reporter=report.author,
                    reason="invalid_record",
                    detail=str(exc),
                    post_id=report.post_id,
                    simulated_at=report.posted_at,
                ))
                continue
            if produced:
                self.stats.reports_curated += 1
            else:
                self.stats.reports_dropped += 1
        self.stats.records_out = len(dataset)
        return dataset
