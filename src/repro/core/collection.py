"""Report collection from the five forums (§3.1).

Each collector speaks its forum's API dialect — keyword search with
pagination on Twitter/Reddit, weekly scrapes on Smishing.eu, per-user
paste listing on Pastebin, bulk report listing on Smishtank — and emits
uniform :class:`RawReport` records for curation.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import QuotaExhausted, ServiceError, ServiceUnavailable
from ..exec.pool import WorkerPool
from ..forums.base import Post
from ..forums.pastebin import ANALYST_USER, PastebinService
from ..forums.reddit import RedditService
from ..forums.smishingeu import SmishingEuService
from ..forums.smishtank import SmishtankService
from ..forums.twitter import ACADEMIC_API_SHUTDOWN, TwitterService
from ..imaging.screenshot import Screenshot
from ..obs import Telemetry, ensure_telemetry
from ..types import Forum
from .config import PipelineConfig


@dataclass
class RawReport:
    """One collected forum item, pre-curation."""

    forum: Forum
    post_id: str
    author: str
    posted_at: dt.datetime
    body: str
    screenshots: List[Screenshot] = field(default_factory=list)
    structured: Optional[Dict[str, str]] = None
    matched_keyword: Optional[str] = None
    via_reply: bool = False
    truth_event_id: Optional[str] = None

    @property
    def has_image(self) -> bool:
        return bool(self.screenshots)


@dataclass(frozen=True)
class CollectionLimitation:
    """One structured coverage loss: a cap, quota, or outage hit mid-run.

    The paper treats collection-coverage accounting (caps hit, posts
    forgone, API shutdowns) as a research result in itself, so each
    swallowed ``QuotaExhausted``/``ServiceUnavailable`` becomes one of
    these instead of only a log string. ``posts_forgone`` is the
    remaining-post estimate at the moment the limit hit (posts the forum
    held that this run had not yet seen) — an upper bound, since later
    keywords could have re-found already-seen posts.
    """

    forum: Forum
    service: str
    kind: str  # "quota" | "unavailable"
    detail: str
    simulated_at: Optional[dt.datetime] = None
    posts_forgone: int = 0
    #: Which ingestion epoch filed this entry. ``None`` for batch runs;
    #: :mod:`repro.stream` stamps the epoch index before merging so
    #: cross-epoch merges stay additive and attributable.
    epoch: Optional[int] = None


@dataclass
class CollectionResult:
    """Everything a collection run produced, with bookkeeping."""

    reports: List[RawReport] = field(default_factory=list)
    posts_seen: int = 0
    api_errors: List[str] = field(default_factory=list)
    limitations: List[CollectionLimitation] = field(default_factory=list)

    def extend(self, other: "CollectionResult") -> None:
        self.reports.extend(other.reports)
        self.posts_seen += other.posts_seen
        self.api_errors.extend(other.api_errors)
        self.limitations.extend(other.limitations)

    def record_limitation(
        self,
        forum: Forum,
        exc: ServiceError,
        *,
        simulated_at: Optional[dt.datetime] = None,
        posts_forgone: int = 0,
    ) -> None:
        """File one limitation both as a string (legacy) and structured."""
        self.api_errors.append(str(exc))
        self.limitations.append(CollectionLimitation(
            forum=forum,
            service=exc.service or forum.value,
            kind="quota" if isinstance(exc, QuotaExhausted) else "unavailable",
            detail=str(exc),
            simulated_at=simulated_at,
            posts_forgone=posts_forgone,
        ))

    def by_forum(self) -> Dict[Forum, List[RawReport]]:
        grouped: Dict[Forum, List[RawReport]] = {}
        for report in self.reports:
            grouped.setdefault(report.forum, []).append(report)
        return grouped

    @property
    def image_count(self) -> int:
        return sum(len(r.screenshots) for r in self.reports)


def _report_from_post(post: Post, keyword: Optional[str],
                      via_reply: bool = False) -> RawReport:
    return RawReport(
        forum=post.forum,
        post_id=post.post_id,
        author=post.author,
        posted_at=post.created_at,
        body=post.body,
        screenshots=list(post.attachments),
        structured=dict(post.structured) if post.structured else None,
        matched_keyword=keyword,
        via_reply=via_reply,
        truth_event_id=post.truth_event_id,
    )


class TwitterCollector:
    """Historical + real-time tweet collection (§3.1.1)."""

    def __init__(self, service: TwitterService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        seen: set = set()
        # Historical sweep runs while the academic API is still alive.
        # Empty windows (possible when the stream layer clamps the
        # timeline to an epoch that misses a phase) skip the sweep
        # entirely: issuing a zero-width search would still move
        # query_time and could file a shutdown limitation that a
        # full-window run never sees.
        if windows.twitter_historical_start < windows.twitter_realtime_start:
            self._service.query_time = windows.twitter_realtime_start
            for keyword in self._config.keywords:
                posts = self._drain(keyword,
                                    windows.twitter_historical_start,
                                    windows.twitter_realtime_start,
                                    realtime=False, result=result)
                self._ingest(posts, keyword, seen, result)
        # Real-time collection until the shutdown moment (or the
        # configured end of the Twitter window, whichever comes first).
        realtime_until = min(ACADEMIC_API_SHUTDOWN, windows.twitter_end)
        if windows.twitter_realtime_start < realtime_until:
            self._service.query_time = windows.twitter_realtime_start
            for keyword in self._config.keywords:
                posts = self._drain(keyword, windows.twitter_realtime_start,
                                    realtime_until,
                                    realtime=True, result=result)
                self._ingest(posts, keyword, seen, result)
        return result

    def _drain(self, keyword: str, since: dt.datetime, until: dt.datetime,
               *, realtime: bool, result: CollectionResult) -> List[Post]:
        """Drain every page, keeping partial results across API failures.

        An API shutdown or an exhausted request quota mid-sweep loses the
        remaining pages but never the pages already fetched — the real
        pipeline survived exactly this when the academic API died. Each
        failure is filed as a structured limitation, not just a string.
        """
        posts: List[Post] = []
        cursor: Optional[str] = None
        while True:
            try:
                if realtime:
                    page = self._service.realtime_search(
                        keyword, since=since, until=until, cursor=cursor
                    )
                else:
                    page = self._service.full_archive_search(
                        keyword, since=since, until=until, cursor=cursor
                    )
            except (ServiceUnavailable, QuotaExhausted) as exc:
                result.record_limitation(
                    Forum.TWITTER, exc,
                    simulated_at=getattr(self._service, "query_time", None),
                    posts_forgone=max(
                        0, len(self._service) - result.posts_seen - len(posts)
                    ),
                )
                return posts
            posts.extend(page.posts)
            if page.exhausted:
                return posts
            cursor = page.next_cursor

    def _ingest(self, posts: Sequence[Post], keyword: str, seen: set,
                result: CollectionResult) -> None:
        for post in posts:
            result.posts_seen += 1
            if post.post_id in seen:
                continue
            seen.add(post.post_id)
            result.reports.append(_report_from_post(post, keyword))
            # Where the keyword sat in a reply, also fetch the original
            # tweet and its image attachment (§3.1.1).
            try:
                original = self._service.fetch_original(post)
            except (ServiceUnavailable, QuotaExhausted) as exc:
                result.record_limitation(
                    Forum.TWITTER, exc,
                    simulated_at=getattr(self._service, "query_time", None),
                )
                original = None
            if original is not None and original.post_id not in seen:
                seen.add(original.post_id)
                result.posts_seen += 1
                result.reports.append(
                    _report_from_post(original, keyword, via_reply=True)
                )


class RedditCollector:
    """Keyword search over submissions (§3.1.2)."""

    def __init__(self, service: RedditService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        if windows.reddit_start >= windows.reddit_end:
            return result
        seen: set = set()
        for keyword in self._config.keywords:
            try:
                posts = self._service.search_all(
                    keyword, since=windows.reddit_start,
                    until=windows.reddit_end,
                )
            except (ServiceUnavailable, QuotaExhausted) as exc:
                result.record_limitation(
                    Forum.REDDIT, exc,
                    simulated_at=windows.reddit_end,
                    posts_forgone=max(
                        0, len(self._service) - result.posts_seen
                    ),
                )
                break
            for post in posts:
                result.posts_seen += 1
                if post.post_id in seen:
                    continue
                seen.add(post.post_id)
                result.reports.append(_report_from_post(post, keyword))
        return result


class SmishingEuCollector:
    """Weekly Monday scrapes plus the backlog (§3.1.3)."""

    def __init__(self, service: SmishingEuService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        seen: set = set()
        scrape_dates = self._service.weekly_scrape_dates(
            windows.smishing_eu_scrape_start.date(),
            windows.smishing_eu_end.date(),
        )
        # The first visit also captures the backlog of old reports.
        for scrape_date in scrape_dates:
            try:
                posts = self._service.scrape(scrape_date)
            except (ServiceUnavailable, QuotaExhausted) as exc:
                result.record_limitation(
                    Forum.SMISHING_EU, exc,
                    simulated_at=dt.datetime.combine(scrape_date, dt.time()),
                    posts_forgone=max(
                        0, len(self._service) - result.posts_seen
                    ),
                )
                break
            for post in posts:
                result.posts_seen += 1
                if post.post_id in seen:
                    continue
                seen.add(post.post_id)
                result.reports.append(_report_from_post(post, None))
        return result


class PastebinCollector:
    """The analyst's paste stream (§3.1.4)."""

    def __init__(self, service: PastebinService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        try:
            pastes = self._service.pastes_by_user(ANALYST_USER)
        except (ServiceUnavailable, QuotaExhausted) as exc:
            result.record_limitation(
                Forum.PASTEBIN, exc,
                posts_forgone=len(self._service),
            )
            return result
        for post in pastes:
            result.posts_seen += 1
            result.reports.append(_report_from_post(post, None))
        return result


class SmishtankCollector:
    """Bulk structured report listing (§3.1.5)."""

    def __init__(self, service: SmishtankService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        if windows.smishtank_start >= windows.smishtank_end:
            return result
        try:
            posts = self._service.list_reports(
                since=windows.smishtank_start, until=windows.smishtank_end
            )
        except (ServiceUnavailable, QuotaExhausted) as exc:
            result.record_limitation(
                Forum.SMISHTANK, exc,
                simulated_at=windows.smishtank_end,
                posts_forgone=len(self._service),
            )
            return result
        for post in posts:
            result.posts_seen += 1
            result.reports.append(_report_from_post(post, None))
        return result


#: Collector class per forum, in the paper's §3.1 presentation order.
_COLLECTORS = (
    (Forum.TWITTER, TwitterCollector),
    (Forum.REDDIT, RedditCollector),
    (Forum.SMISHING_EU, SmishingEuCollector),
    (Forum.PASTEBIN, PastebinCollector),
    (Forum.SMISHTANK, SmishtankCollector),
)


def collect_all(
    forums: Dict[Forum, object],
    config: Optional[PipelineConfig] = None,
    telemetry: Optional[Telemetry] = None,
    pool: Optional[WorkerPool] = None,
) -> CollectionResult:
    """Run every collector against a world's forums.

    With telemetry enabled, each forum gets one ``collect/<forum>`` span
    plus per-forum counters (posts seen, reports kept, limitations hit).

    ``pool`` shards the run per-forum: each forum is an independent
    simulator (own meter, own fault-proxy counter, clock read-only), so
    shards cannot observe each other, and results always merge in the
    canonical ``_COLLECTORS`` order regardless of completion order —
    a parallel collection is byte-identical to a serial one. With more
    than one worker the shards run off the main thread, so the
    ``collect/<forum>`` spans are emitted at merge time (the tracer's
    span stack is main-thread-only) and carry counts but no useful wall
    time; the serial path keeps the spans wrapping the actual work.
    """
    config = config or PipelineConfig()
    telemetry = ensure_telemetry(telemetry)
    tracer, metrics = telemetry.tracer, telemetry.metrics
    result = CollectionResult()

    def _collect(item) -> CollectionResult:
        forum, collector_cls = item
        return collector_cls(forums[forum], config).collect()

    if pool is not None and pool.workers > 1:
        shards = pool.map(_collect, _COLLECTORS)
    else:
        shards = None

    for position, (forum, collector_cls) in enumerate(_COLLECTORS):
        with tracer.span(f"collect/{forum.value}") as span:
            sub = (shards[position] if shards is not None
                   else _collect((forum, collector_cls)))
            span.set(posts_seen=sub.posts_seen, reports=len(sub.reports),
                     images=sub.image_count, limitations=len(sub.limitations))
        metrics.counter("collection.posts_seen",
                        forum=forum.value).inc(sub.posts_seen)
        metrics.counter("collection.reports",
                        forum=forum.value).inc(len(sub.reports))
        for limitation in sub.limitations:
            metrics.counter("collection.limitations", forum=forum.value,
                            kind=limitation.kind).inc()
            metrics.counter("collection.posts_forgone",
                            forum=forum.value).inc(limitation.posts_forgone)
        result.extend(sub)
    return result
