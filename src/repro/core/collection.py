"""Report collection from the five forums (§3.1).

Each collector speaks its forum's API dialect — keyword search with
pagination on Twitter/Reddit, weekly scrapes on Smishing.eu, per-user
paste listing on Pastebin, bulk report listing on Smishtank — and emits
uniform :class:`RawReport` records for curation.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import QuotaExhausted, ServiceUnavailable
from ..forums.base import Post
from ..forums.pastebin import ANALYST_USER, PastebinService
from ..forums.reddit import RedditService
from ..forums.smishingeu import SmishingEuService
from ..forums.smishtank import SmishtankService
from ..forums.twitter import ACADEMIC_API_SHUTDOWN, TwitterService
from ..imaging.screenshot import Screenshot
from ..types import Forum
from .config import PipelineConfig


@dataclass
class RawReport:
    """One collected forum item, pre-curation."""

    forum: Forum
    post_id: str
    author: str
    posted_at: dt.datetime
    body: str
    screenshots: List[Screenshot] = field(default_factory=list)
    structured: Optional[Dict[str, str]] = None
    matched_keyword: Optional[str] = None
    via_reply: bool = False
    truth_event_id: Optional[str] = None

    @property
    def has_image(self) -> bool:
        return bool(self.screenshots)


@dataclass
class CollectionResult:
    """Everything a collection run produced, with bookkeeping."""

    reports: List[RawReport] = field(default_factory=list)
    posts_seen: int = 0
    api_errors: List[str] = field(default_factory=list)

    def extend(self, other: "CollectionResult") -> None:
        self.reports.extend(other.reports)
        self.posts_seen += other.posts_seen
        self.api_errors.extend(other.api_errors)

    def by_forum(self) -> Dict[Forum, List[RawReport]]:
        grouped: Dict[Forum, List[RawReport]] = {}
        for report in self.reports:
            grouped.setdefault(report.forum, []).append(report)
        return grouped

    @property
    def image_count(self) -> int:
        return sum(len(r.screenshots) for r in self.reports)


def _report_from_post(post: Post, keyword: Optional[str],
                      via_reply: bool = False) -> RawReport:
    return RawReport(
        forum=post.forum,
        post_id=post.post_id,
        author=post.author,
        posted_at=post.created_at,
        body=post.body,
        screenshots=list(post.attachments),
        structured=dict(post.structured) if post.structured else None,
        matched_keyword=keyword,
        via_reply=via_reply,
        truth_event_id=post.truth_event_id,
    )


class TwitterCollector:
    """Historical + real-time tweet collection (§3.1.1)."""

    def __init__(self, service: TwitterService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        seen: set = set()
        # Historical sweep runs while the academic API is still alive.
        self._service.query_time = windows.twitter_realtime_start
        for keyword in self._config.keywords:
            posts = self._drain(keyword, windows.twitter_historical_start,
                                windows.twitter_realtime_start,
                                realtime=False, errors=result.api_errors)
            self._ingest(posts, keyword, seen, result)
        # Real-time collection until the shutdown moment.
        self._service.query_time = windows.twitter_realtime_start
        for keyword in self._config.keywords:
            posts = self._drain(keyword, windows.twitter_realtime_start,
                                ACADEMIC_API_SHUTDOWN,
                                realtime=True, errors=result.api_errors)
            self._ingest(posts, keyword, seen, result)
        return result

    def _drain(self, keyword: str, since: dt.datetime, until: dt.datetime,
               *, realtime: bool, errors: List[str]) -> List[Post]:
        """Drain every page, keeping partial results across API failures.

        An API shutdown or an exhausted request quota mid-sweep loses the
        remaining pages but never the pages already fetched — the real
        pipeline survived exactly this when the academic API died.
        """
        posts: List[Post] = []
        cursor: Optional[str] = None
        while True:
            try:
                if realtime:
                    page = self._service.realtime_search(
                        keyword, since=since, until=until, cursor=cursor
                    )
                else:
                    page = self._service.full_archive_search(
                        keyword, since=since, until=until, cursor=cursor
                    )
            except (ServiceUnavailable, QuotaExhausted) as exc:
                errors.append(str(exc))
                return posts
            posts.extend(page.posts)
            if page.exhausted:
                return posts
            cursor = page.next_cursor

    def _ingest(self, posts: Sequence[Post], keyword: str, seen: set,
                result: CollectionResult) -> None:
        for post in posts:
            result.posts_seen += 1
            if post.post_id in seen:
                continue
            seen.add(post.post_id)
            result.reports.append(_report_from_post(post, keyword))
            # Where the keyword sat in a reply, also fetch the original
            # tweet and its image attachment (§3.1.1).
            try:
                original = self._service.fetch_original(post)
            except QuotaExhausted as exc:
                result.api_errors.append(str(exc))
                original = None
            if original is not None and original.post_id not in seen:
                seen.add(original.post_id)
                result.posts_seen += 1
                result.reports.append(
                    _report_from_post(original, keyword, via_reply=True)
                )


class RedditCollector:
    """Keyword search over submissions (§3.1.2)."""

    def __init__(self, service: RedditService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        seen: set = set()
        for keyword in self._config.keywords:
            try:
                posts = self._service.search_all(
                    keyword, since=windows.reddit_start,
                    until=windows.reddit_end,
                )
            except QuotaExhausted as exc:
                result.api_errors.append(str(exc))
                break
            for post in posts:
                result.posts_seen += 1
                if post.post_id in seen:
                    continue
                seen.add(post.post_id)
                result.reports.append(_report_from_post(post, keyword))
        return result


class SmishingEuCollector:
    """Weekly Monday scrapes plus the backlog (§3.1.3)."""

    def __init__(self, service: SmishingEuService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        seen: set = set()
        scrape_dates = self._service.weekly_scrape_dates(
            windows.smishing_eu_scrape_start.date(),
            windows.smishing_eu_end.date(),
        )
        # The first visit also captures the backlog of old reports.
        for scrape_date in scrape_dates:
            try:
                posts = self._service.scrape(scrape_date)
            except ServiceUnavailable as exc:
                result.api_errors.append(str(exc))
                break
            for post in posts:
                result.posts_seen += 1
                if post.post_id in seen:
                    continue
                seen.add(post.post_id)
                result.reports.append(_report_from_post(post, None))
        return result


class PastebinCollector:
    """The analyst's paste stream (§3.1.4)."""

    def __init__(self, service: PastebinService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        for post in self._service.pastes_by_user(ANALYST_USER):
            result.posts_seen += 1
            result.reports.append(_report_from_post(post, None))
        return result


class SmishtankCollector:
    """Bulk structured report listing (§3.1.5)."""

    def __init__(self, service: SmishtankService, config: PipelineConfig):
        self._service = service
        self._config = config

    def collect(self) -> CollectionResult:
        result = CollectionResult()
        windows = self._config.windows
        for post in self._service.list_reports(
            since=windows.smishtank_start, until=windows.smishtank_end
        ):
            result.posts_seen += 1
            result.reports.append(_report_from_post(post, None))
        return result


def collect_all(
    forums: Dict[Forum, object], config: Optional[PipelineConfig] = None
) -> CollectionResult:
    """Run every collector against a world's forums."""
    config = config or PipelineConfig()
    result = CollectionResult()
    result.extend(TwitterCollector(forums[Forum.TWITTER], config).collect())
    result.extend(RedditCollector(forums[Forum.REDDIT], config).collect())
    result.extend(
        SmishingEuCollector(forums[Forum.SMISHING_EU], config).collect()
    )
    result.extend(PastebinCollector(forums[Forum.PASTEBIN], config).collect())
    result.extend(SmishtankCollector(forums[Forum.SMISHTANK], config).collect())
    return result
