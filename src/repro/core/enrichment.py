"""Enrichment: the measurement methods of §3.3 over a curated dataset.

Runs, in the paper's order: sender-ID classification + HLR lookups
(§3.3.1), URL trend analysis — shorteners, TLDs, registrars, TLS
certificates, passive DNS + ASNs (§3.3.3), antivirus detection (§3.3.4),
and GPT-4o-style text annotation (§3.3.6). Results land in an
:class:`EnrichedDataset` the analysis builders consume.

Every external-service call runs under a
:class:`~repro.resilience.RetryPolicy` and a per-service
:class:`~repro.resilience.CircuitBreaker`, and *degrades per field*
instead of crashing the run: a service failure that survives its retries
becomes a structured :class:`EnrichmentGap` on the result (mirroring
:class:`~repro.core.collection.CollectionLimitation` on the collection
side) while every other field of every other record keeps its data.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import (
    CircuitOpen,
    DeadlineExceeded,
    NotFound,
    QuotaExhausted,
    RateLimitExceeded,
    ServiceError,
    ServiceUnavailable,
    ValidationError,
)
from ..exec.cache import EnrichmentCache
from ..exec.pool import ProcessPool, SerialPool, WorkerPool, shard
from ..net.tld import default_registry
from ..obs import Telemetry, ensure_telemetry
from ..net.url import Url
from ..resilience import CircuitBreaker, RetryPolicy, call_with_policy
from ..services.crtsh import CertSummary, CrtShService
from ..services.gsb import GoogleSafeBrowsingService, GsbApiResult
from ..services.hlr import HlrLookupService, HlrRecord
from ..services.passivedns import IpInfoService, IpInfoRecord, PassiveDnsService
from ..services.shorteners import (
    WHATSAPP_HOST,
    shortener_for_url,
)
from ..services.virustotal import UrlScanReport, VirusTotalService
from ..services.whois import WhoisRecord, WhoisService
from ..sms.message import AnnotationLabels
from ..nlp.annotator import Annotation
from ..nlp.openai_api import ANNOTATION_PROMPT, OpenAiEndpoint
from ..types import GsbStatus, SenderIdKind, TldClass
from .dataset import SmishingDataset, SmishingRecord


@dataclass
class UrlEnrichment:
    """Everything learned about one unique URL."""

    url: Url
    shortener: Optional[str] = None
    is_whatsapp: bool = False
    registered_domain: Optional[str] = None
    effective_tld: Optional[str] = None
    tld_class: Optional[TldClass] = None
    whois: Optional[WhoisRecord] = None
    certificates: Optional[CertSummary] = None
    pdns_addresses: Tuple = ()
    ip_info: List[IpInfoRecord] = field(default_factory=list)
    vt_report: Optional[UrlScanReport] = None
    gsb_api: Optional[GsbApiResult] = None
    gsb_transparency: GsbStatus = GsbStatus.NOT_QUERIED
    gsb_on_vt: Optional[bool] = None


@dataclass
class SenderEnrichment:
    """Everything learned about one unique sender ID."""

    normalized: str
    kind: SenderIdKind
    hlr: Optional[HlrRecord] = None


@dataclass(frozen=True)
class EnrichmentGap:
    """One enrichment field a service failure left empty.

    The enrichment analogue of
    :class:`~repro.core.collection.CollectionLimitation`: instead of
    crashing the run (and discarding every record already enriched), a
    service call that exhausts its retries files one of these. ``kind``
    classifies the terminal failure: ``unavailable`` / ``quota`` /
    ``rate_limit`` / ``circuit_open`` / ``error``.
    """

    service: str
    field: str  # which UrlEnrichment/SenderEnrichment field went unfilled
    subject: str  # the URL, sender, or record id that missed out
    kind: str
    detail: str
    attempts: int = 1
    simulated_at: float = 0.0
    #: Which ingestion epoch filed this gap. ``None`` for batch runs;
    #: :mod:`repro.stream` stamps the epoch index before merging so
    #: cross-epoch merges stay additive and attributable.
    epoch: Optional[int] = None


def _gap_kind(exc: ServiceError) -> str:
    if isinstance(exc, CircuitOpen):
        return "circuit_open"
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, QuotaExhausted):
        return "quota"
    if isinstance(exc, RateLimitExceeded):
        return "rate_limit"
    if isinstance(exc, ServiceUnavailable):
        return "unavailable"
    return "error"


@dataclass
class EnrichedDataset:
    """The curated dataset plus all measurement results."""

    dataset: SmishingDataset
    urls: Dict[str, UrlEnrichment] = field(default_factory=dict)
    senders: Dict[str, SenderEnrichment] = field(default_factory=dict)
    annotations: Dict[str, AnnotationLabels] = field(default_factory=dict)
    raw_annotations: Dict[str, Annotation] = field(default_factory=dict)
    #: Structured record of every field a service failure left empty.
    gaps: List[EnrichmentGap] = field(default_factory=list)

    def url_enrichment_for(self, record: SmishingRecord) -> Optional[UrlEnrichment]:
        if record.url is None:
            return None
        return self.urls.get(str(record.url))

    def sender_enrichment_for(
        self, record: SmishingRecord
    ) -> Optional[SenderEnrichment]:
        if record.sender is None:
            return None
        return self.senders.get(record.sender.normalized)

    def labels_for(self, record: SmishingRecord) -> Optional[AnnotationLabels]:
        return self.annotations.get(record.record_id)

    def annotated_dataset(self) -> SmishingDataset:
        """The dataset with annotation labels attached to records."""
        return self.dataset.with_annotations(self.annotations)

    def gaps_by_service(self) -> Dict[str, List[EnrichmentGap]]:
        grouped: Dict[str, List[EnrichmentGap]] = {}
        for gap in self.gaps:
            grouped.setdefault(gap.service, []).append(gap)
        return grouped


@dataclass
class EnrichmentServices:
    """The external services an enrichment run needs."""

    hlr: HlrLookupService
    whois: WhoisService
    crtsh: CrtShService
    passivedns: PassiveDnsService
    ipinfo: IpInfoService
    virustotal: VirusTotalService
    gsb: GoogleSafeBrowsingService
    openai: OpenAiEndpoint

    def meters(self) -> Dict[str, object]:
        """Every service's meter, keyed by its wire-level service name."""
        members = (self.hlr, self.whois, self.crtsh, self.passivedns,
                   self.ipinfo, self.virustotal, self.gsb, self.openai)
        return {m.meter.service: m.meter for m in members}


class AnnotateShardTask:
    """Picklable precompute task: annotate one shard of unique texts.

    Carries only the :class:`~repro.nlp.annotator.MessageAnnotator`
    (pure registries + compiled regexes — no meters, no locks) across
    the process boundary and ships back ``(text, annotation)`` pairs in
    shard order; the parent merges them into the cache canonically.
    """

    def __init__(self, annotator) -> None:
        self._annotator = annotator

    def __call__(self, chunk) -> List[Tuple[str, Annotation]]:
        return [(text, self._annotator.annotate("", text))
                for text in chunk]


class ScanShardTask:
    """Picklable precompute task: VT-scan one shard of unique URLs.

    Carries the known-bad-host set (the only instance state the pure
    scan reads) instead of the service itself — the service's meter
    holds telemetry hooks and the shared clock, which must never cross
    a process boundary.
    """

    def __init__(self, known_bad_hosts: frozenset) -> None:
        self._known_bad_hosts = known_bad_hosts

    def __call__(self, chunk) -> List[Tuple[str, UrlScanReport]]:
        from ..services.virustotal import scan_url_uncharged
        return [(url, scan_url_uncharged(url, self._known_bad_hosts))
                for url in chunk]


class Enricher:
    """Runs the full §3.3 measurement battery with per-field degradation."""

    def __init__(self, services: EnrichmentServices,
                 telemetry: Optional[Telemetry] = None,
                 *,
                 retry_policy: Optional[RetryPolicy] = None,
                 breakers: Optional[Dict[str, CircuitBreaker]] = None,
                 cache: Optional[EnrichmentCache] = None,
                 pool: Optional[WorkerPool] = None,
                 journal=None,
                 known_senders: Optional[Set[str]] = None,
                 known_urls: Optional[Set[str]] = None,
                 deadline: Optional[float] = None):
        self._services = services
        self._telemetry = ensure_telemetry(telemetry)
        self._tlds = default_registry()
        self._policy = retry_policy or RetryPolicy()
        # Retries and breakers advance/read the shared simulated clock —
        # the same one every service meter charges against.
        self._clock = services.hlr.meter.clock
        self.breakers: Dict[str, CircuitBreaker] = breakers if breakers is not None else {}
        # Optional execution-engine resources (see repro.exec): a
        # per-(service, subject) memo filled by the pure precompute phase
        # and consulted during the serial effects replay, plus the pool
        # the precompute shards fan out on. None/None is the classic
        # fully-sequential, uncached enricher.
        self._cache = cache
        self._pool = pool
        # Optional checkpoint journal (see repro.checkpoint.session):
        # duck-typed replay_lookup/record_lookup. None (the default, and
        # every un-checkpointed run) keeps _guarded's hot path intact.
        self._journal = journal
        # Subjects already fully enriched by earlier stream epochs: the
        # delta-enrichment skip sets. A known subject is never looked up
        # again (the stream layer merges its prior enrichment into the
        # growing state), so re-charging its services is impossible.
        self._known_senders = known_senders or set()
        self._known_urls = known_urls or set()
        # Optional absolute sim-time deadline propagated into every
        # guarded call (see repro.resilience.call_with_policy): the
        # serve layer sets it from the oldest queued request's budget so
        # a backlogged batch cannot retry past its callers' patience.
        # None (every batch run) keeps the unbounded classic behaviour.
        self.deadline = deadline

    # -- resilience plumbing --------------------------------------------------

    def _breaker(self, service: str) -> CircuitBreaker:
        breaker = self.breakers.get(service)
        if breaker is None:
            breaker = CircuitBreaker(
                service, self._clock,
                observer=self._telemetry.breaker_hook(),
            )
            self.breakers[service] = breaker
        return breaker

    def _on_retry(self, service: str, attempt: int, delay: float,
                  exc: ServiceError) -> None:
        metrics = self._telemetry.metrics
        metrics.counter("resilience.retries", service=service).inc()
        metrics.counter("resilience.backoff_seconds",
                        service=service).inc(delay)

    def _guarded(self, sink: EnrichedDataset, service: str, field_name: str,
                 subject: str, fn, default=None):
        """Run one service call under policy + breaker; failure ⇒ gap.

        Returns the call's result, or ``default`` after filing an
        :class:`EnrichmentGap` when the call's retries are exhausted (or
        its breaker is open). The rest of the record keeps enriching.

        Under a checkpoint journal, every guarded call is one replay
        unit: a journaled outcome (value or gap) is returned without
        touching the service — the effects the original call had on
        meters/clock/breakers were already restored wholesale — and a
        live outcome is journaled with its state delta before returning.
        """
        journal = self._journal
        if journal is not None:
            replayed = journal.replay_lookup(service, field_name, subject)
            if replayed is not None:
                if replayed.outcome == "gap":
                    gap = EnrichmentGap(**replayed.gap)
                    sink.gaps.append(gap)
                    self._telemetry.metrics.counter(
                        "enrichment.gaps", service=service, kind=gap.kind
                    ).inc()
                    return default
                return replayed.value
        try:
            result = call_with_policy(
                fn,
                policy=self._policy,
                clock=self._clock,
                service=service,
                key=f"{service}:{subject}",
                breaker=self._breaker(service),
                on_retry=self._on_retry,
                deadline=self.deadline,
            )
        except ServiceError as exc:
            kind = _gap_kind(exc)
            gap = EnrichmentGap(
                service=service,
                field=field_name,
                subject=subject,
                kind=kind,
                detail=str(exc),
                attempts=getattr(exc, "resilience_attempts", 1),
                simulated_at=self._clock.now,
            )
            sink.gaps.append(gap)
            self._telemetry.metrics.counter(
                "enrichment.gaps", service=service, kind=kind
            ).inc()
            if journal is not None:
                journal.record_lookup(service, field_name, subject,
                                      gap=asdict(gap))
            return default
        if journal is not None:
            journal.record_lookup(service, field_name, subject, value=result)
        return result

    # -- precompute (the engine's pure, parallel phase) -----------------------

    def _cached_value(self, service: str, subject: str):
        """A memoised value for one lookup, or None (miss / non-value)."""
        if self._cache is None:
            return None
        entry = self._cache.get(service, subject)
        if entry is not None and entry.is_value:
            return entry.value
        return None

    def _precompute(self, dataset: SmishingDataset) -> None:
        """Fill the cache with every expensive pure compute, sharded
        per-unique-subject over the worker pool.

        Only side-effect-free paths run here: the annotator directly
        (reached via ``_annotator``, below the fault proxy and the
        meter) and VirusTotal's uncharged scan. No meter is charged, no
        fault rule consulted, no clock advanced — so any worker
        schedule fills the cache with identical values, and the serial
        effects replay that follows is byte-identical to an uncached
        run. Annotations are keyed by message *text* (they are pure in
        it); the replay rebinds each record's id.

        Thread (and serial) pools share the parent's cache, so their
        shard tasks fill it in place. A :class:`~repro.exec.ProcessPool`
        cannot: its workers live in other interpreters, so they run
        picklable tasks (:class:`AnnotateShardTask`,
        :class:`ScanShardTask`) that carry only pure inputs and return
        ``(subject, value)`` pairs; the parent merges them into the
        cache in canonical shard order, one miss+store per unique
        subject — the exact counter trajectory of the serial fill.
        """
        if self._cache is None:
            return
        cache, services = self._cache, self._services
        pool = self._pool or SerialPool()
        texts = list(dict.fromkeys(r.text for r in dataset))
        urls = list(dict.fromkeys(
            str(r.url) for r in dataset if r.url is not None
        ))
        annotator = services.openai._annotator

        def _fill_texts(chunk) -> None:
            for text in chunk:
                cache.lookup("openai", text,
                             lambda t=text: annotator.annotate("", t))

        def _fill_urls(chunk) -> None:
            for url in chunk:
                cache.lookup(
                    "virustotal", url,
                    lambda u=url: services.virustotal._scan_url_uncharged(u),
                )

        # One chunk per worker, not one future per subject: the tasks
        # are sub-millisecond and executor overhead would otherwise eat
        # into the dedup savings.
        with self._telemetry.tracer.span(
            "enrich/precompute", unique_texts=len(texts),
            unique_urls=len(urls), workers=pool.workers,
        ):
            if isinstance(pool, ProcessPool):
                if texts:
                    for chunk in pool.map(AnnotateShardTask(annotator),
                                          shard(texts, pool.workers)):
                        for text, annotation in chunk:
                            cache.lookup("openai", text,
                                         lambda a=annotation: a)
                if urls:
                    task = ScanShardTask(
                        frozenset(services.virustotal._known_bad_hosts))
                    for chunk in pool.map(task, shard(urls, pool.workers)):
                        for url, report in chunk:
                            cache.lookup("virustotal", url,
                                         lambda r=report: r)
            else:
                if texts:
                    pool.map(_fill_texts, shard(texts, pool.workers))
                if urls:
                    pool.map(_fill_urls, shard(urls, pool.workers))

    # -- senders (§3.3.1) -----------------------------------------------------

    def enrich_senders(self, result: EnrichedDataset) -> None:
        unique: Dict[str, SenderEnrichment] = {}
        for record in result.dataset:
            if record.sender is None:
                continue
            key = record.sender.normalized
            if key in unique or key in self._known_senders:
                continue
            enrichment = SenderEnrichment(normalized=key,
                                          kind=record.sender.kind)
            if record.sender.kind is SenderIdKind.PHONE_NUMBER:
                digits = record.sender.digits
                enrichment.hlr = self._guarded(
                    result, "hlr", "hlr", key,
                    lambda: self._services.hlr.lookup(digits),
                )
            unique[key] = enrichment
        result.senders = unique

    # -- URLs (§3.3.3 + §3.3.4) --------------------------------------------------

    def enrich_urls(self, result: EnrichedDataset) -> None:
        unique: Dict[str, UrlEnrichment] = {}
        for record in result.dataset:
            if record.url is None:
                continue
            key = str(record.url)
            if key in unique or key in self._known_urls:
                continue
            unique[key] = self._enrich_one_url(record.url, result)
        result.urls = unique

    def _enrich_one_url(self, url: Url, sink: EnrichedDataset) -> UrlEnrichment:
        services = self._services
        subject = str(url)
        enrichment = UrlEnrichment(url=url)
        enrichment.shortener = shortener_for_url(url)
        enrichment.is_whatsapp = url.host == WHATSAPP_HOST
        try:
            domain, tld = self._tlds.split_host(url.host)
            enrichment.registered_domain = domain
            enrichment.effective_tld = tld
            base_tld = tld.rsplit(".", 1)[-1]
            enrichment.tld_class = self._tlds.classify(base_tld)
        except ValidationError:
            pass
        # The paper skips WHOIS / TLS / pDNS for shortener hosts: the
        # shortener's own infrastructure is not the scammer's.
        if enrichment.shortener is None and not enrichment.is_whatsapp:
            whois_name = enrichment.registered_domain or url.host

            def _whois() -> Optional[WhoisRecord]:
                # "No record" is an answer, not a failure.
                try:
                    return services.whois.query(whois_name)
                except NotFound:
                    return None

            enrichment.whois = self._guarded(
                sink, "whois", "whois", subject, _whois)
            enrichment.certificates = self._guarded(
                sink, "crtsh", "certificates", subject,
                lambda: services.crtsh.summary_for(url.host))
            answer = self._guarded(
                sink, services.passivedns.meter.service, "pdns_addresses",
                subject, lambda: services.passivedns.query(url.host))
            if answer is not None:
                enrichment.pdns_addresses = answer.addresses
                if answer.resolved:
                    enrichment.ip_info = self._guarded(
                        sink, "ipinfo", "ip_info", subject,
                        lambda: services.ipinfo.lookup_batch(answer.addresses),
                        default=[])
        vt_memo = self._cached_value("virustotal", subject)
        enrichment.vt_report = self._guarded(
            sink, "virustotal", "vt_report", subject,
            lambda: services.virustotal.scan_url(subject,
                                                 precomputed=vt_memo))
        enrichment.gsb_api = self._guarded(
            sink, "gsb", "gsb_api", subject,
            lambda: services.gsb.query_api(subject))
        enrichment.gsb_on_vt = self._guarded(
            sink, "gsb", "gsb_on_vt", subject,
            lambda: services.gsb.verdict_on_virustotal(subject))
        # The transparency report blocks ~half of automated queries
        # (deterministically per URL). The block is permanent and
        # non-retryable, so it files a gap and leaves NOT_QUERIED —
        # never a silent swallow, never a wasted retry.
        status = self._guarded(
            sink, "gsb-transparency", "gsb_transparency", subject,
            lambda: services.gsb.query_transparency(subject))
        if status is not None:
            enrichment.gsb_transparency = status
        return enrichment

    # -- annotations (§3.3.6) ----------------------------------------------------------

    def annotate(self, result: EnrichedDataset) -> None:
        annotations: Dict[str, AnnotationLabels] = {}
        raw: Dict[str, Annotation] = {}
        for record in result.dataset:
            payload = {"id": record.record_id, "message": record.text}
            memo = self._cached_value("openai", record.text)
            response = self._guarded(
                result, "openai", "annotation", record.record_id,
                lambda: self._services.openai.annotate_message(
                    ANNOTATION_PROMPT, payload, precomputed=memo),
            )
            if response is None:
                continue
            annotation = Annotation.from_json(response.content)
            annotations[record.record_id] = annotation.labels
            raw[record.record_id] = annotation
        result.annotations = annotations
        result.raw_annotations = raw

    # -- the full battery ---------------------------------------------------------------

    def _metered_stage(self, name: str, meters, stage, result) -> None:
        """Run one stage under a span, with one ``enrich/<service>`` child
        span per meter carrying the request/retry/backoff delta the stage
        caused (the services themselves stay telemetry-unaware)."""
        tracer = self._telemetry.tracer
        metrics = self._telemetry.metrics
        with tracer.span(name):
            accounting = []
            for meter in meters:
                span = tracer.start(f"enrich/{meter.service}")
                accounting.append((span, meter, meter.snapshot()))
            try:
                stage(result)
            finally:
                # Close the accounting spans even when the stage dies
                # (a SimulatedCrash mid-enrichment): a crashed run's
                # trace still attributes whatever the stage charged
                # before it went down, and no span is left open on the
                # tracer stack to corrupt later nesting.
                for span, meter, before in reversed(accounting):
                    after = meter.snapshot()
                    requests = after["used"] - before["used"]
                    retries = (after["throttle_events"]
                               - before["throttle_events"])
                    backoff = (after.get("backoff_seconds", 0.0)
                               - before.get("backoff_seconds", 0.0))
                    span.set(requests=requests, retries=retries,
                             backoff_seconds=round(backoff, 3))
                    tracer.end(span)
                    metrics.counter("enrichment.requests",
                                    service=meter.service).inc(requests)
                    metrics.counter("enrichment.retries",
                                    service=meter.service).inc(retries)
                    metrics.counter("enrichment.backoff_seconds",
                                    service=meter.service).inc(backoff)

    def run(self, dataset: SmishingDataset, *,
            annotate_only: bool = False) -> EnrichedDataset:
        """Run the measurement battery over ``dataset``.

        ``annotate_only`` is the degraded-mode contract the serve layer
        relies on when the enrichment tier is under pressure (open
        breakers, near-exhausted quotas): skip the expensive per-sender
        and per-URL lookups entirely and keep only the cheap,
        cache-friendly annotation pass, so accepted reports still gain
        labels without burning a failing tier's budget.
        """
        result = EnrichedDataset(dataset=dataset)
        services = self._services
        with self._telemetry.tracer.span("enrich", records=len(dataset)) as sp:
            self._precompute(dataset)
            if not annotate_only:
                self._metered_stage(
                    "enrich/senders", [services.hlr.meter],
                    self.enrich_senders, result,
                )
                self._metered_stage(
                    "enrich/urls",
                    [services.whois.meter, services.crtsh.meter,
                     services.passivedns.meter, services.ipinfo.meter,
                     services.virustotal.meter, services.gsb.meter],
                    self.enrich_urls, result,
                )
            self._metered_stage(
                "enrich/annotate", [services.openai.meter],
                self.annotate, result,
            )
            sp.set(unique_urls=len(result.urls),
                   unique_senders=len(result.senders),
                   annotations=len(result.annotations),
                   gaps=len(result.gaps))
        return result
