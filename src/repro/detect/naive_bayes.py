"""Multinomial Naive Bayes over sparse feature dicts, from scratch.

The early smishing-detection literature (§2 of the paper) leans on Naive
Bayes; this implementation supports the paper's recommended upgrade —
multi-class training over scam typologies — while remaining dependency
free. Laplace smoothing, log-space scoring, and unseen-feature handling
follow the textbook formulation.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

Features = Dict[str, float]


@dataclass
class NaiveBayesClassifier:
    """Multinomial NB with Laplace smoothing."""

    alpha: float = 1.0
    _class_counts: Dict[Hashable, int] = field(default_factory=dict)
    _feature_totals: Dict[Hashable, float] = field(default_factory=dict)
    _feature_counts: Dict[Hashable, Dict[str, float]] = field(
        default_factory=dict
    )
    _vocabulary: set = field(default_factory=set)
    _trained: bool = False

    def fit(
        self, samples: Sequence[Features], labels: Sequence[Hashable]
    ) -> "NaiveBayesClassifier":
        if len(samples) != len(labels):
            raise ValueError("samples and labels must align")
        if not samples:
            raise ValueError("cannot fit on an empty training set")
        for features, label in zip(samples, labels):
            self._class_counts[label] = self._class_counts.get(label, 0) + 1
            bucket = self._feature_counts.setdefault(label, defaultdict(float))
            for name, value in features.items():
                if value <= 0:
                    continue
                bucket[name] += value
                self._feature_totals[label] = (
                    self._feature_totals.get(label, 0.0) + value
                )
                self._vocabulary.add(name)
        self._trained = True
        return self

    @property
    def classes(self) -> List[Hashable]:
        return sorted(self._class_counts, key=str)

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary)

    def _log_likelihood(self, label: Hashable, features: Features) -> float:
        total = self._feature_totals.get(label, 0.0)
        denominator = total + self.alpha * (len(self._vocabulary) + 1)
        bucket = self._feature_counts.get(label, {})
        score = 0.0
        for name, value in features.items():
            if value <= 0:
                continue
            count = bucket.get(name, 0.0)
            score += value * math.log((count + self.alpha) / denominator)
        return score

    def log_scores(self, features: Features) -> Dict[Hashable, float]:
        """Unnormalised log-posterior per class."""
        if not self._trained:
            raise ValueError("classifier is not fitted")
        total = sum(self._class_counts.values())
        scores: Dict[Hashable, float] = {}
        for label, count in self._class_counts.items():
            prior = math.log(count / total)
            scores[label] = prior + self._log_likelihood(label, features)
        return scores

    def predict(self, features: Features) -> Hashable:
        scores = self.log_scores(features)
        return max(scores.items(), key=lambda kv: (kv[1], str(kv[0])))[0]

    def predict_many(self, samples: Iterable[Features]) -> List[Hashable]:
        return [self.predict(features) for features in samples]

    def predict_proba(self, features: Features) -> Dict[Hashable, float]:
        """Softmax-normalised posteriors (numerically stabilised)."""
        scores = self.log_scores(features)
        peak = max(scores.values())
        exp = {label: math.exp(score - peak)
               for label, score in scores.items()}
        norm = sum(exp.values())
        return {label: value / norm for label, value in exp.items()}

    def top_features(
        self, label: Hashable, n: int = 10
    ) -> List[Tuple[str, float]]:
        """Most indicative features for a class (by smoothed frequency)."""
        bucket = self._feature_counts.get(label, {})
        return sorted(bucket.items(), key=lambda kv: -kv[1])[:n]
