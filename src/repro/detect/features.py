"""Feature extraction for SMS classification.

Combines bag-of-words over normalised tokens with the structural signals
the smishing literature uses: URL presence and shape (shortener, raw IP,
suspicious TLD, ``.apk`` suffix), sender-ID class, digit density, and
urgency punctuation. Features are emitted as a sparse ``{name: count}``
mapping so the Naive Bayes model can consume them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..net.url import extract_urls
from ..nlp.normalize import normalize_text
from ..nlp.tokenize import tokenize
from ..services.shorteners import is_shortener_host
from ..sms.senderid import SenderId
from ..types import SenderIdKind

#: TLDs the rule-based literature treats as high-risk.
SUSPICIOUS_TLDS = frozenset({
    "top", "xyz", "icu", "buzz", "cfd", "sbs", "click", "link", "online",
    "monster", "quest", "loan", "win", "bid",
})

#: Tokens too common to discriminate (tiny stop list; NB handles the rest).
_STOP = frozenset({"the", "a", "an", "to", "of", "and", "or", "is", "in",
                   "on", "for", "at", "be", "it"})


@dataclass(frozen=True)
class FeatureExtractor:
    """Turns one message (text + optional sender) into sparse features."""

    include_words: bool = True
    include_structure: bool = True
    max_tokens: int = 60

    def extract(
        self, text: str, sender: Optional[SenderId] = None
    ) -> Dict[str, float]:
        features: Dict[str, float] = {}
        if self.include_words:
            normalised = normalize_text(text)
            count = 0
            for token in tokenize(normalised):
                if token in _STOP or len(token) < 2:
                    continue
                if "/" in token or token.startswith("http"):
                    continue  # URLs handled structurally
                features[f"w:{token}"] = features.get(f"w:{token}", 0.0) + 1.0
                count += 1
                if count >= self.max_tokens:
                    break
        if self.include_structure:
            self._structural(text, sender, features)
        return features

    def _structural(
        self, text: str, sender: Optional[SenderId],
        features: Dict[str, float],
    ) -> None:
        urls = extract_urls(text)
        features["s:has_url"] = 1.0 if urls else 0.0
        if urls:
            url = urls[0]
            features["s:url_https"] = 1.0 if url.is_https else 0.0
            features["s:url_shortener"] = (
                1.0 if is_shortener_host(url.host) else 0.0
            )
            features["s:url_apk"] = 1.0 if url.is_apk_download else 0.0
            tld = url.host.rsplit(".", 1)[-1]
            features["s:url_bad_tld"] = 1.0 if tld in SUSPICIOUS_TLDS else 0.0
            features["s:url_subdomains"] = float(url.host.count("."))
            features["s:url_hyphens"] = float(url.host.count("-"))
        digits = sum(1 for ch in text if ch.isdigit())
        letters = sum(1 for ch in text if ch.isalpha())
        features["s:digit_ratio"] = digits / max(digits + letters, 1)
        features["s:exclamations"] = float(text.count("!"))
        features["s:length_bucket"] = float(min(len(text) // 40, 5))
        features["s:all_caps_words"] = float(sum(
            1 for word in text.split()
            if len(word) > 2 and word.isupper() and word.isalpha()
        ))
        if sender is not None:
            features[f"s:sender_{sender.kind.value.replace(' ', '_')}"] = 1.0
            if sender.kind is SenderIdKind.PHONE_NUMBER:
                features["s:sender_shortcode"] = (
                    1.0 if sender.is_shortcode else 0.0
                )

    def vocabulary(
        self, corpus: Iterable[str]
    ) -> List[str]:
        """All feature names over a corpus (useful for tests/inspection)."""
        names: set = set()
        for text in corpus:
            names.update(self.extract(text))
        return sorted(names)
