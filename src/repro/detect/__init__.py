"""Smishing detection baselines built on the released dataset.

§7.2 of the paper recommends that "researchers could use our labeled
dataset with new features such as scam typologies to develop multi-class
detection models, as prior work predominantly relies on decade-old
spam/ham datasets to build binary classifiers". This subpackage is that
follow-through:

* :mod:`repro.detect.features` — feature extraction for SMS texts.
* :mod:`repro.detect.naive_bayes` — a from-scratch multinomial Naive
  Bayes classifier (the model family prior smishing work used).
* :mod:`repro.detect.rules` — a rule-based filter in the style of the
  early smishing literature (§2), the baseline the paper argues becomes
  ineffective as tactics evolve.
* :mod:`repro.detect.evaluate` — train/test evaluation with per-class
  precision/recall/F1 and confusion matrices.
"""

from .evaluate import EvaluationResult, evaluate_classifier, train_test_split
from .features import FeatureExtractor
from .naive_bayes import NaiveBayesClassifier
from .rules import RuleBasedFilter

__all__ = [
    "EvaluationResult",
    "FeatureExtractor",
    "NaiveBayesClassifier",
    "RuleBasedFilter",
    "evaluate_classifier",
    "train_test_split",
]
