"""Classifier evaluation: splits, per-class metrics, confusion matrix."""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from ..utils.tables import Table


def train_test_split(
    items: Sequence, *, test_fraction: float = 0.25, seed: int = 13
) -> Tuple[List, List]:
    """Shuffled split into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    pool = list(items)
    random.Random(seed).shuffle(pool)
    cut = max(1, int(len(pool) * test_fraction))
    return pool[cut:], pool[:cut]


@dataclass
class ClassMetrics:
    """Precision / recall / F1 for one class."""

    label: Hashable
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass
class EvaluationResult:
    """Full evaluation over a test set."""

    accuracy: float
    per_class: Dict[Hashable, ClassMetrics]
    confusion: Dict[Tuple[Hashable, Hashable], int]
    support: Dict[Hashable, int]

    @property
    def macro_f1(self) -> float:
        if not self.per_class:
            return 0.0
        return sum(m.f1 for m in self.per_class.values()) / len(self.per_class)

    @property
    def weighted_f1(self) -> float:
        total = sum(self.support.values())
        if not total:
            return 0.0
        return sum(
            metrics.f1 * self.support.get(label, 0)
            for label, metrics in self.per_class.items()
        ) / total

    def to_table(self, title: str = "Classifier evaluation") -> Table:
        table = Table(
            title=title,
            columns=["Class", "Support", "Precision", "Recall", "F1"],
        )
        for label in sorted(self.per_class, key=str):
            metrics = self.per_class[label]
            table.add_row(
                str(label),
                self.support.get(label, 0),
                round(metrics.precision, 3),
                round(metrics.recall, 3),
                round(metrics.f1, 3),
            )
        table.add_note(f"accuracy={self.accuracy:.3f} "
                       f"macro-F1={self.macro_f1:.3f} "
                       f"weighted-F1={self.weighted_f1:.3f}")
        return table


def evaluate_classifier(
    truths: Sequence[Hashable], predictions: Sequence[Hashable]
) -> EvaluationResult:
    """Score predictions against ground truth."""
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must align")
    if not truths:
        raise ValueError("cannot evaluate an empty test set")
    per_class: Dict[Hashable, ClassMetrics] = defaultdict(
        lambda: ClassMetrics(label=None)
    )
    confusion: Dict[Tuple[Hashable, Hashable], int] = Counter()
    support: Counter = Counter()
    correct = 0
    labels = set(truths) | set(predictions)
    for label in labels:
        per_class[label] = ClassMetrics(label=label)
    for truth, predicted in zip(truths, predictions):
        support[truth] += 1
        confusion[(truth, predicted)] += 1
        if truth == predicted:
            correct += 1
            per_class[truth].true_positives += 1
        else:
            per_class[truth].false_negatives += 1
            per_class[predicted].false_positives += 1
    return EvaluationResult(
        accuracy=correct / len(truths),
        per_class=dict(per_class),
        confusion=dict(confusion),
        support=dict(support),
    )
