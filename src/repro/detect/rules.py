"""Rule-based smishing filter in the style of the early literature.

The paper's §2 surveys rule-based detectors (Jain & Gupta 2018/2019,
MobiFish) built from small dated samples, and argues they lose to
evolving tactics. This baseline encodes their canonical rule set so the
evaluation harness can measure exactly that gap against the Naive Bayes
model trained on the labelled dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..net.url import extract_urls
from ..services.shorteners import is_shortener_host
from ..sms.senderid import SenderId
from ..types import SenderIdKind
from .features import SUSPICIOUS_TLDS

#: Keyword rules from the rule-based literature (urgency + credential
#: solicitation + reward bait).
RULE_KEYWORDS: Tuple[str, ...] = (
    "verify", "suspended", "blocked", "locked", "urgent", "immediately",
    "click", "confirm", "password", "account", "winner", "prize", "claim",
    "refund", "kyc", "expire",
)


@dataclass
class RuleVerdict:
    """Outcome of the rule filter on one message."""

    is_smishing: bool
    score: int
    fired_rules: List[str] = field(default_factory=list)


@dataclass
class RuleBasedFilter:
    """Score-threshold rule filter (binary smishing / not-smishing)."""

    threshold: int = 3

    def score(
        self, text: str, sender: Optional[SenderId] = None
    ) -> RuleVerdict:
        fired: List[str] = []
        lowered = text.lower()
        urls = extract_urls(text)
        if urls:
            fired.append("has_url")
            url = urls[0]
            if is_shortener_host(url.host):
                fired.append("shortened_url")
            if url.host.rsplit(".", 1)[-1] in SUSPICIOUS_TLDS:
                fired.append("suspicious_tld")
            if url.host.count("-") >= 2:
                fired.append("hyphenated_host")
            if url.is_apk_download:
                fired.append("apk_link")
            if not url.is_https:
                fired.append("no_https")
        keyword_hits = [kw for kw in RULE_KEYWORDS if kw in lowered]
        if keyword_hits:
            fired.append("keywords:" + ",".join(keyword_hits[:3]))
        if len(keyword_hits) >= 3:
            fired.append("keyword_pileup")
        if sender is not None:
            if sender.kind is SenderIdKind.EMAIL:
                fired.append("email_sender")
            elif (sender.kind is SenderIdKind.PHONE_NUMBER
                  and len(sender.digits) > 15):
                fired.append("overlong_number")
        score = len(fired) + min(len(keyword_hits), 4) - 1
        return RuleVerdict(
            is_smishing=score >= self.threshold,
            score=max(score, 0),
            fired_rules=fired,
        )

    def predict(self, text: str, sender: Optional[SenderId] = None) -> bool:
        return self.score(text, sender).is_smishing
