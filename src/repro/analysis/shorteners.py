"""URL shortener abuse: Table 5 (§4.2)."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional, Tuple

from ..core.enrichment import EnrichedDataset
from ..services.shorteners import WHATSAPP_HOST
from ..types import ScamType
from ..utils.tables import Table, format_count_pct

#: Table 5's scam-type columns.
_COLUMN_SCAMS: Tuple[ScamType, ...] = (
    ScamType.BANKING, ScamType.DELIVERY, ScamType.GOVERNMENT,
    ScamType.TELECOM, ScamType.WRONG_NUMBER, ScamType.HEY_MUM_DAD,
)


def shortener_usage(
    enriched: EnrichedDataset,
) -> Tuple[Counter, Dict[str, Counter]]:
    """(total per shortener, per-shortener scam-type counters).

    Counts unique URLs; the scam type comes from the annotation of the
    record(s) carrying each URL (majority across duplicates).
    """
    url_scams: Dict[str, Counter] = defaultdict(Counter)
    for record in enriched.dataset:
        if record.url is None:
            continue
        labels = enriched.labels_for(record)
        if labels is not None:
            url_scams[str(record.url)][labels.scam_type] += 1
    totals: Counter = Counter()
    per_scam: Dict[str, Counter] = defaultdict(Counter)
    for key, enrichment in enriched.urls.items():
        if enrichment.shortener is None:
            continue
        totals[enrichment.shortener] += 1
        scams = url_scams.get(key)
        if scams:
            scam = scams.most_common(1)[0][0]
            per_scam[enrichment.shortener][scam] += 1
    return totals, per_scam


def build_table5(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Table 5: top shorteners, split by scam type."""
    totals, per_scam = shortener_usage(enriched)
    grand_total = sum(totals.values()) or 1
    table = Table(
        title="Table 5: Top URL shorteners abused per scam type",
        columns=["Shortener", "URLs"] + [s.short_code for s in _COLUMN_SCAMS],
    )
    for name, count in totals.most_common(top):
        row = [name, format_count_pct(count, grand_total)]
        for scam in _COLUMN_SCAMS:
            value = per_scam[name].get(scam, 0)
            row.append(value if value else None)
        table.add_row(*row)
    return table


def whatsapp_link_count(enriched: EnrichedDataset) -> int:
    """wa.me conversation-starter links (§4.2 reports 205)."""
    return sum(
        1 for e in enriched.urls.values()
        if e.is_whatsapp or e.url.host == WHATSAPP_HOST
    )
