"""Extraction-quality evaluation against world ground truth.

The paper can only argue qualitatively that its OpenAI Vision extraction
"successfully extract[s] the text from all the collected SMS-resembling
images" (§3.2). In the simulation, ground truth exists — so this module
measures exactly how much of each field (text, sender, URL, timestamp)
the curation stage recovered, and where losses come from (redactions,
dateless timestamps, extractor misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.dataset import SmishingDataset, normalise_message_key
from ..utils.tables import Table
from ..world.scenario import World


@dataclass
class FieldQuality:
    """Recovery statistics for one extracted field."""

    present_in_truth: int = 0
    recovered: int = 0
    recovered_correctly: int = 0

    @property
    def recall(self) -> float:
        if not self.present_in_truth:
            return 0.0
        return self.recovered / self.present_in_truth

    @property
    def accuracy(self) -> float:
        if not self.recovered:
            return 0.0
        return self.recovered_correctly / self.recovered


@dataclass
class ExtractionQualityReport:
    """Per-field recovery over a curated dataset."""

    records_evaluated: int
    text: FieldQuality = field(default_factory=FieldQuality)
    sender: FieldQuality = field(default_factory=FieldQuality)
    url: FieldQuality = field(default_factory=FieldQuality)
    timestamp: FieldQuality = field(default_factory=FieldQuality)

    def to_table(self) -> Table:
        table = Table(
            title=(
                "Extraction quality vs ground truth "
                f"(n={self.records_evaluated})"
            ),
            columns=["Field", "In Truth", "Recovered", "Recall", "Accuracy"],
        )
        for name, quality in (
            ("text", self.text), ("sender", self.sender),
            ("url", self.url), ("timestamp", self.timestamp),
        ):
            table.add_row(
                name,
                quality.present_in_truth,
                quality.recovered,
                round(quality.recall, 3),
                round(quality.accuracy, 3),
            )
        return table


def evaluate_extraction_quality(
    world: World, dataset: SmishingDataset
) -> ExtractionQualityReport:
    """Compare curated records against their ground-truth events."""
    report = ExtractionQualityReport(records_evaluated=0)
    for record in dataset:
        event = (world.event(record.truth_event_id)
                 if record.truth_event_id else None)
        if event is None:
            continue
        report.records_evaluated += 1

        # Text: always present in truth; correct when key-equal.
        report.text.present_in_truth += 1
        if record.text:
            report.text.recovered += 1
            if (normalise_message_key(record.text)
                    == normalise_message_key(event.message.text)):
                report.text.recovered_correctly += 1

        report.sender.present_in_truth += 1
        if record.sender is not None:
            report.sender.recovered += 1
            if record.sender.normalized == event.sender.normalized:
                report.sender.recovered_correctly += 1

        if event.url is not None:
            report.url.present_in_truth += 1
            if record.url is not None:
                report.url.recovered += 1
                if str(record.url) == str(event.url):
                    report.url.recovered_correctly += 1

        # Timestamp semantics differ by source: only screenshots show the
        # receipt time; structured forms carry submission or date-only
        # values (§3.3.2 excludes those from the time-of-day analysis),
        # so only image-extracted timestamps are judged for correctness.
        if record.from_image:
            report.timestamp.present_in_truth += 1
            if record.timestamp is not None and record.timestamp.has_time:
                report.timestamp.recovered += 1
                truth = event.received_at
                value = record.timestamp.value
                time_matches = (value.hour == truth.hour
                                and value.minute == truth.minute)
                date_ok = (not record.timestamp.has_date
                           or value.date() == truth.date())
                if time_matches and date_ok:
                    report.timestamp.recovered_correctly += 1
    return report


def loss_breakdown(world: World, dataset: SmishingDataset) -> Dict[str, int]:
    """Why fields are missing: redactions vs genuinely absent."""
    breakdown = {
        "sender_missing": 0,
        "url_missing_with_truth": 0,
        "timestamp_dateless": 0,
    }
    for record in dataset:
        event = (world.event(record.truth_event_id)
                 if record.truth_event_id else None)
        if event is None:
            continue
        if record.sender is None:
            breakdown["sender_missing"] += 1
        if event.url is not None and record.url is None:
            breakdown["url_missing_with_truth"] += 1
        if record.timestamp is not None and not record.timestamp.has_date:
            breakdown["timestamp_dateless"] += 1
    return breakdown
