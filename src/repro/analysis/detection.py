"""Antivirus detection analyses: Tables 9 and 18 (§4.7)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.enrichment import EnrichedDataset
from ..types import GsbStatus
from ..utils.tables import Table, format_count_pct


@dataclass
class VtThresholds:
    """Table 9's threshold counts."""

    total: int
    undetected: int
    malicious_at_least: Dict[int, int]
    suspicious_at_least: Dict[int, int]


def vt_thresholds(
    enriched: EnrichedDataset,
    malicious_levels: Tuple[int, ...] = (1, 3, 5, 10, 15),
    suspicious_levels: Tuple[int, ...] = (1, 3, 5),
) -> VtThresholds:
    """Compute the Table 9 breakdown over unique URLs."""
    reports = [
        e.vt_report for e in enriched.urls.values() if e.vt_report is not None
    ]
    total = len(reports)
    undetected = sum(1 for r in reports if r.undetected)
    malicious = {
        level: sum(1 for r in reports if r.malicious >= level)
        for level in malicious_levels
    }
    suspicious = {
        level: sum(1 for r in reports if r.suspicious >= level)
        for level in suspicious_levels
    }
    return VtThresholds(
        total=total,
        undetected=undetected,
        malicious_at_least=malicious,
        suspicious_at_least=suspicious,
    )


def build_table9(enriched: EnrichedDataset) -> Table:
    """Table 9: VirusTotal detection thresholds for smishing URLs."""
    data = vt_thresholds(enriched)
    total = data.total or 1
    table = Table(
        title=f"Table 9: VirusTotal detection results (n={data.total:,})",
        columns=["VirusTotal Results", "URLs"],
    )
    table.add_row("Malicious = 0 and Suspicious = 0",
                  format_count_pct(data.undetected, total))
    for level, count in data.malicious_at_least.items():
        table.add_row(f"Malicious >= {level}", format_count_pct(count, total))
    for level, count in data.suspicious_at_least.items():
        table.add_row(f"Suspicious >= {level}", format_count_pct(count, total))
    return table


@dataclass
class GsbComparison:
    """Table 18's three GSB views."""

    total: int
    api_unsafe: int
    vt_unsafe: int
    transparency: Dict[GsbStatus, int]


def gsb_comparison(enriched: EnrichedDataset) -> GsbComparison:
    """Compare the GSB API, the VT mirror, and the transparency report."""
    total = 0
    api_unsafe = 0
    vt_unsafe = 0
    transparency: Counter = Counter()
    for enrichment in enriched.urls.values():
        total += 1
        if enrichment.gsb_api is not None and enrichment.gsb_api.flagged:
            api_unsafe += 1
        if enrichment.gsb_on_vt:
            vt_unsafe += 1
        transparency[enrichment.gsb_transparency] += 1
    return GsbComparison(
        total=total,
        api_unsafe=api_unsafe,
        vt_unsafe=vt_unsafe,
        transparency=dict(transparency),
    )


def build_table18(enriched: EnrichedDataset) -> Table:
    """Table 18: GSB detection across its three query surfaces."""
    data = gsb_comparison(enriched)
    total = data.total or 1
    table = Table(
        title=f"Table 18: Google Safe Browsing results (n={data.total:,})",
        columns=["GSB Surface", "Unsafe", "Partially Unsafe", "Undetected",
                 "No Data", "Not Queried"],
    )
    table.add_row(
        "API",
        format_count_pct(data.api_unsafe, total),
        None,
        format_count_pct(total - data.api_unsafe, total),
        None,
        None,
    )
    t = data.transparency
    table.add_row(
        "Transparency Report",
        format_count_pct(t.get(GsbStatus.UNSAFE, 0), total),
        format_count_pct(t.get(GsbStatus.PARTIALLY_UNSAFE, 0), total),
        format_count_pct(t.get(GsbStatus.UNDETECTED, 0), total),
        format_count_pct(t.get(GsbStatus.NO_DATA, 0), total),
        format_count_pct(t.get(GsbStatus.NOT_QUERIED, 0), total),
    )
    table.add_row(
        "on VirusTotal",
        format_count_pct(data.vt_unsafe, total),
        None,
        format_count_pct(total - data.vt_unsafe, total),
        None,
        None,
    )
    return table
