"""Scammer-strategy analyses: Tables 10-13 and Figure 2 (§5).

Every label-counting function here takes an optional ``columns=``
argument — a :class:`~repro.analysis.columnar.ColumnarDataset` — and,
when given one, counts off its parallel arrays instead of re-walking the
row-oriented dataset. The two paths share the counting structure (same
visit order, same objects), so the rendered tables are byte-identical;
the columnar path simply avoids five full dataset passes' worth of
per-record dict probes.
"""

from __future__ import annotations

import datetime as dt
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.dataset import SmishingRecord
from ..core.enrichment import EnrichedDataset

if TYPE_CHECKING:  # import cycle guard: columnar imports enrichment too
    from .columnar import ColumnarDataset
from ..types import LurePrinciple, ScamType
from ..utils.stats import (
    KsResult,
    format_seconds_of_day,
    ks_two_sample,
    median,
    seconds_of_day,
)
from ..utils.tables import Table, format_count_pct
from ..world.languages import LanguageRegistry, default_languages

_WEEKDAYS = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
             "Saturday", "Sunday")


# ---------------------------------------------------------------------------
# Figure 2: time-of-day per weekday.
# ---------------------------------------------------------------------------

@dataclass
class TimestampAnalysis:
    """Figure 2 data: per-weekday second-of-day samples and medians."""

    samples: Dict[str, List[int]]
    medians: Dict[str, str]
    excluded_campaign_size: int
    total_timestamps: int
    ks_results: Dict[Tuple[str, str], KsResult] = field(default_factory=dict)

    def significant_pairs(self) -> List[Tuple[str, str]]:
        return [pair for pair, result in self.ks_results.items()
                if result.significant]


def detect_burst_campaign(
    records: Sequence[SmishingRecord], *, threshold: int = 50
) -> Optional[Tuple[dt.datetime, int]]:
    """Find a flash campaign: many messages in the same minute (§5.1).

    Returns the burst minute and its size when one minute holds at least
    ``threshold`` timestamped messages (the 2021 SBI campaign put >850
    messages at Tue 11:34).
    """
    minutes: Counter = Counter()
    for record in records:
        if record.has_full_timestamp:
            moment = record.timestamp.value.replace(second=0, microsecond=0)
            minutes[moment] += 1
    if not minutes:
        return None
    burst_minute, size = minutes.most_common(1)[0]
    if size >= threshold:
        return burst_minute, size
    return None


def timestamp_analysis(
    enriched: EnrichedDataset, *, burst_threshold: int = 50
) -> TimestampAnalysis:
    """Build the Figure 2 dataset.

    Only records with full date+time timestamps participate (§3.3.2).
    A detected flash campaign is removed before computing distributions,
    exactly as the paper removes the 2021 SBI burst.
    """
    records = [r for r in enriched.dataset if r.has_full_timestamp]
    total = len(records)
    burst = detect_burst_campaign(records, threshold=burst_threshold)
    excluded = 0
    if burst is not None:
        burst_minute, _ = burst
        kept = []
        for record in records:
            moment = record.timestamp.value.replace(second=0, microsecond=0)
            if moment == burst_minute:
                excluded += 1
            else:
                kept.append(record)
        records = kept
    samples: Dict[str, List[int]] = {day: [] for day in _WEEKDAYS}
    for record in records:
        value = record.timestamp.value
        day = _WEEKDAYS[value.weekday()]
        samples[day].append(
            seconds_of_day(value.hour, value.minute, value.second)
        )
    medians = {
        day: format_seconds_of_day(median(values)) if values else "-"
        for day, values in samples.items()
    }
    analysis = TimestampAnalysis(
        samples=samples,
        medians=medians,
        excluded_campaign_size=excluded,
        total_timestamps=total,
    )
    for i in range(len(_WEEKDAYS)):
        for j in range(i + 1, len(_WEEKDAYS)):
            a, b = _WEEKDAYS[i], _WEEKDAYS[j]
            if len(samples[a]) >= 5 and len(samples[b]) >= 5:
                analysis.ks_results[(a, b)] = ks_two_sample(
                    samples[a], samples[b]
                )
    return analysis


def build_figure2_table(enriched: EnrichedDataset) -> Table:
    """Figure 2 rendered as per-weekday counts and median send times."""
    analysis = timestamp_analysis(enriched)
    table = Table(
        title=(
            "Figure 2: Time of day per weekday when smishing is sent "
            f"(n={sum(len(v) for v in analysis.samples.values()):,})"
        ),
        columns=["Weekday", "Messages", "Median Send Time"],
    )
    for day in _WEEKDAYS:
        table.add_row(day, len(analysis.samples[day]), analysis.medians[day])
    if analysis.excluded_campaign_size:
        table.add_note(
            f"removed a flash campaign of {analysis.excluded_campaign_size} "
            "messages sharing one minute (cf. the 2021 SBI campaign)"
        )
    significant = analysis.significant_pairs()
    table.add_note(
        f"{len(significant)} weekday pairs differ significantly "
        "(two-sample KS, p<0.05)"
    )
    return table


# ---------------------------------------------------------------------------
# Table 10: scam categories; Table 11: languages; Table 12: brands.
# ---------------------------------------------------------------------------

def scam_category_counts(
    enriched: EnrichedDataset, *,
    columns: Optional["ColumnarDataset"] = None,
) -> Counter:
    if columns is not None:
        return Counter(columns.scam_types)
    counts: Counter = Counter()
    for record in enriched.dataset:
        labels = enriched.labels_for(record)
        if labels is not None:
            counts[labels.scam_type] += 1
    return counts


def scam_language_top(
    enriched: EnrichedDataset, scam_type: ScamType, top: int = 4, *,
    columns: Optional["ColumnarDataset"] = None,
) -> List[str]:
    if columns is not None:
        counts = Counter(
            language for st, language
            in zip(columns.scam_types, columns.languages)
            if st is scam_type
        )
        return [code for code, _ in counts.most_common(top)]
    counts = Counter()
    for record in enriched.dataset:
        labels = enriched.labels_for(record)
        if labels is not None and labels.scam_type is scam_type:
            counts[labels.language] += 1
    return [code for code, _ in counts.most_common(top)]


_TABLE10_ORDER = (
    ScamType.BANKING, ScamType.DELIVERY, ScamType.GOVERNMENT,
    ScamType.TELECOM, ScamType.WRONG_NUMBER, ScamType.HEY_MUM_DAD,
    ScamType.OTHERS, ScamType.SPAM,
)


def build_table10(
    enriched: EnrichedDataset, *,
    columns: Optional["ColumnarDataset"] = None,
) -> Table:
    """Table 10: scam-category distribution with top languages."""
    counts = scam_category_counts(enriched, columns=columns)
    total = sum(counts.values()) or 1
    table = Table(
        title=f"Table 10: Scam categories (n={total:,})",
        columns=["Scam Category", "Messages", "Top 4 Languages"],
    )
    for scam_type in _TABLE10_ORDER:
        table.add_row(
            scam_type.value,
            format_count_pct(counts.get(scam_type, 0), total),
            ", ".join(scam_language_top(enriched, scam_type,
                                        columns=columns)),
        )
    return table


def language_counts(
    enriched: EnrichedDataset, *,
    columns: Optional["ColumnarDataset"] = None,
) -> Counter:
    if columns is not None:
        return Counter(columns.languages)
    counts: Counter = Counter()
    for record in enriched.dataset:
        labels = enriched.labels_for(record)
        if labels is not None:
            counts[labels.language] += 1
    return counts


def build_table11(
    enriched: EnrichedDataset,
    *,
    top: int = 10,
    languages: Optional[LanguageRegistry] = None,
    columns: Optional["ColumnarDataset"] = None,
) -> Table:
    """Table 11: dataset languages vs the world's most-spoken languages."""
    languages = languages or default_languages()
    counts = language_counts(enriched, columns=columns)
    total = sum(counts.values()) or 1
    most_spoken = languages.most_spoken(top)
    table = Table(
        title=f"Table 11: Top languages in smishing messages (n={total:,})",
        columns=["Code", "Messages", "Most Spoken", "Population (m)",
                 "Countries"],
    )
    observed = counts.most_common(top)
    for index in range(max(len(observed), len(most_spoken))):
        code, count = observed[index] if index < len(observed) else ("", 0)
        spoken = most_spoken[index] if index < len(most_spoken) else None
        table.add_row(
            code,
            format_count_pct(count, total) if code else None,
            spoken.name if spoken else None,
            spoken.speakers_millions if spoken else None,
            spoken.country_count if spoken else None,
        )
    return table


def brand_counts(
    enriched: EnrichedDataset, *,
    columns: Optional["ColumnarDataset"] = None,
) -> Counter:
    if columns is not None:
        return Counter(brand for brand in columns.brands if brand)
    counts: Counter = Counter()
    for record in enriched.dataset:
        labels = enriched.labels_for(record)
        if labels is not None and labels.brand:
            counts[labels.brand] += 1
    return counts


def build_table12(
    enriched: EnrichedDataset, top: int = 10, *,
    columns: Optional["ColumnarDataset"] = None,
) -> Table:
    """Table 12: most-impersonated brands."""
    counts = brand_counts(enriched, columns=columns)
    scam_by_brand: Dict[str, Counter] = defaultdict(Counter)
    if columns is not None:
        total = len(columns) or 1
        for brand, scam_type in zip(columns.brands, columns.scam_types):
            if brand:
                scam_by_brand[brand][scam_type] += 1
    else:
        total = len([
            r for r in enriched.dataset
            if enriched.labels_for(r) is not None
        ]) or 1
        for record in enriched.dataset:
            labels = enriched.labels_for(record)
            if labels is not None and labels.brand:
                scam_by_brand[labels.brand][labels.scam_type] += 1
    table = Table(
        title=f"Table 12: Top brands impersonated (n={total:,})",
        columns=["Brand Name", "Category", "Messages"],
    )
    for brand, count in counts.most_common(top):
        category = scam_by_brand[brand].most_common(1)[0][0]
        table.add_row(brand, category.value, format_count_pct(count, total))
    return table


# ---------------------------------------------------------------------------
# Table 13: lure principles by scam type.
# ---------------------------------------------------------------------------

def lure_scam_matrix(
    enriched: EnrichedDataset, *, presence_threshold: float = 0.10,
    columns: Optional["ColumnarDataset"] = None,
) -> Dict[LurePrinciple, Dict[ScamType, bool]]:
    """Which lures each scam type uses in ≥ ``presence_threshold`` of
    its messages — the checkmark matrix of Table 13."""
    lure_counts: Dict[ScamType, Counter] = defaultdict(Counter)
    scam_totals: Counter = Counter()
    if columns is not None:
        for scam_type, lures in zip(columns.scam_types, columns.lure_sets):
            scam_totals[scam_type] += 1
            for lure in lures:
                lure_counts[scam_type][lure] += 1
    else:
        for record in enriched.dataset:
            labels = enriched.labels_for(record)
            if labels is None:
                continue
            scam_totals[labels.scam_type] += 1
            for lure in labels.lures:
                lure_counts[labels.scam_type][lure] += 1
    matrix: Dict[LurePrinciple, Dict[ScamType, bool]] = {}
    scam_columns = (
        ScamType.BANKING, ScamType.DELIVERY, ScamType.GOVERNMENT,
        ScamType.TELECOM, ScamType.WRONG_NUMBER, ScamType.HEY_MUM_DAD,
    )
    for lure in LurePrinciple:
        row: Dict[ScamType, bool] = {}
        for scam in scam_columns:
            total = scam_totals.get(scam, 0)
            count = lure_counts[scam].get(lure, 0)
            row[scam] = total > 0 and count / total >= presence_threshold
        matrix[lure] = row
    return matrix


def lure_usage_counts(
    enriched: EnrichedDataset, *,
    columns: Optional["ColumnarDataset"] = None,
) -> Counter:
    """Messages using each lure at least once (§5.5 prose numbers)."""
    counts: Counter = Counter()
    if columns is not None:
        for lures in columns.lure_sets:
            for lure in lures:
                counts[lure] += 1
        return counts
    for record in enriched.dataset:
        labels = enriched.labels_for(record)
        if labels is None:
            continue
        for lure in labels.lures:
            counts[lure] += 1
    return counts


def build_table13(
    enriched: EnrichedDataset, *,
    columns: Optional["ColumnarDataset"] = None,
) -> Table:
    """Table 13: lure principles by scam category (checkmark matrix)."""
    matrix = lure_scam_matrix(enriched, columns=columns)
    scam_columns = (
        ScamType.BANKING, ScamType.DELIVERY, ScamType.GOVERNMENT,
        ScamType.TELECOM, ScamType.WRONG_NUMBER, ScamType.HEY_MUM_DAD,
    )
    table = Table(
        title="Table 13: Lures used to deceive victims, by scam category",
        columns=["Lure"] + [s.short_code for s in scam_columns],
    )
    for lure in LurePrinciple:
        row = [lure.value]
        for scam in scam_columns:
            row.append("x" if matrix[lure][scam] else None)
        table.add_row(*row)
    return table
