"""TLS certificate analysis: Table 7 (§4.5)."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.enrichment import EnrichedDataset
from ..utils.stats import Summary, summarise
from ..utils.tables import Table


@dataclass
class TlsOverview:
    """The §4.5 headline numbers."""

    total_certificates: int
    domains_with_certs: int
    issuing_organisations: int
    per_domain: Summary


def tls_overview(enriched: EnrichedDataset) -> Optional[TlsOverview]:
    """Aggregate certificate statistics over unique domains."""
    per_domain_counts: Dict[str, int] = {}
    issuers: set = set()
    for enrichment in enriched.urls.values():
        summary = enrichment.certificates
        if summary is None or summary.certificates == 0:
            continue
        per_domain_counts[summary.domain] = summary.certificates
        issuers.update(summary.issuers)
    if not per_domain_counts:
        return None
    counts = list(per_domain_counts.values())
    return TlsOverview(
        total_certificates=sum(counts),
        domains_with_certs=len(counts),
        issuing_organisations=len(issuers),
        per_domain=summarise(counts),
    )


def ca_usage(enriched: EnrichedDataset) -> Tuple[Counter, Counter]:
    """(certificates per CA, domains per CA)."""
    certificates: Counter = Counter()
    domains: Dict[str, set] = defaultdict(set)
    for enrichment in enriched.urls.values():
        summary = enrichment.certificates
        if summary is None:
            continue
        for issuer, count in summary.issuers.items():
            certificates[issuer] += count
            domains[issuer].add(summary.domain)
    domain_counts = Counter({issuer: len(hosts)
                             for issuer, hosts in domains.items()})
    return certificates, domain_counts


def build_table7(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Table 7: top CAs by certificates issued to smishing domains."""
    certificates, domains = ca_usage(enriched)
    table = Table(
        title="Table 7: Top TLS certificate authorities abused for smishing",
        columns=["Certificate Authority", "Certificates", "Domains"],
    )
    for issuer, cert_count in certificates.most_common(top):
        table.add_row(issuer, cert_count, domains.get(issuer, 0))
    return table
