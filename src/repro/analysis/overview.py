"""Dataset overview analyses: Table 1 and Table 15."""

from __future__ import annotations

import datetime as dt
from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..core.collection import CollectionResult
from ..core.dataset import SmishingDataset
from ..types import Forum
from ..utils.tables import Table, format_count_pct

#: Display order of forums in Table 1.
FORUM_ORDER: Tuple[Forum, ...] = (
    Forum.TWITTER, Forum.REDDIT, Forum.SMISHTANK, Forum.SMISHING_EU,
    Forum.PASTEBIN,
)


def build_table1(
    collection: CollectionResult, dataset: SmishingDataset
) -> Table:
    """Table 1: posts, images, messages, sender IDs and URLs per forum."""
    by_forum = collection.by_forum()
    table = Table(
        title="Table 1: Overview of the smishing dataset",
        columns=[
            "Online Forum", "Posts", "Image Attachments",
            "SMS Unique", "SMS Total", "Senders Unique", "Senders Total",
            "URLs Unique", "URLs Total",
        ],
    )
    total_unique_msgs = len(dataset.unique_messages()) or 1
    total_unique_senders = len(dataset.unique_senders()) or 1
    total_unique_urls = len(dataset.unique_urls()) or 1
    totals = [0] * 8
    for forum in FORUM_ORDER:
        reports = by_forum.get(forum, [])
        counts = dataset.forum_counts(
            forum,
            posts=len(reports),
            images=sum(len(r.screenshots) for r in reports),
        )
        table.add_row(
            forum.value,
            counts.posts,
            counts.images,
            format_count_pct(counts.messages_unique, total_unique_msgs),
            counts.messages_total,
            format_count_pct(counts.senders_unique, total_unique_senders),
            counts.senders_total,
            format_count_pct(counts.urls_unique, total_unique_urls),
            counts.urls_total,
        )
        for i, value in enumerate((
            counts.posts, counts.images, counts.messages_unique,
            counts.messages_total, counts.senders_unique,
            counts.senders_total, counts.urls_unique, counts.urls_total,
        )):
            totals[i] += value
    table.add_row(
        "Total", totals[0], totals[1],
        len(dataset.unique_messages()), totals[3],
        len(dataset.unique_senders()), totals[5],
        len(dataset.unique_urls()), totals[7],
    )
    table.add_note(
        "unique counts in the Total row are global (cross-forum dedup)"
    )
    return table


def build_table15(collection: CollectionResult) -> Table:
    """Table 15: annual distribution of collected tweets and images."""
    posts_by_year: Counter = Counter()
    images_by_year: Counter = Counter()
    for report in collection.reports:
        if report.forum is not Forum.TWITTER:
            continue
        year = report.posted_at.year
        posts_by_year[year] += 1
        images_by_year[year] += len(report.screenshots)
    total_posts = sum(posts_by_year.values()) or 1
    total_images = sum(images_by_year.values()) or 1
    table = Table(
        title="Table 15: Annual distribution of tweets and image attachments",
        columns=["Year", "Tweets", "Image Attachments"],
    )
    for year in sorted(set(posts_by_year) | set(images_by_year)):
        table.add_row(
            str(year),
            format_count_pct(posts_by_year.get(year, 0), total_posts),
            format_count_pct(images_by_year.get(year, 0), total_images),
        )
    table.add_row("Total", total_posts, total_images)
    return table


def collection_funnel(
    collection: CollectionResult, dataset: SmishingDataset
) -> Dict[str, int]:
    """Posts → images → curated records funnel, for sanity reporting."""
    return {
        "posts_collected": len(collection.reports),
        "posts_seen": collection.posts_seen,
        "images_collected": collection.image_count,
        "records_curated": len(dataset),
        "unique_messages": len(dataset.unique_messages()),
        "unique_senders": len(dataset.unique_senders()),
        "unique_urls": len(dataset.unique_urls()),
    }
