"""Campaign mining: cluster curated records back into send campaigns.

The dataset is a pile of individual reports; attribution questions
("how many campaigns?", "what infrastructure does one campaign share?",
"how long does a campaign live?") need records grouped by originating
campaign. Near-duplicate text clustering recovers that grouping — and
because the simulation knows the true campaign of every event, the
clustering itself is evaluated (homogeneity/completeness style) rather
than assumed correct.
"""

from __future__ import annotations

import datetime as dt
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.dataset import SmishingDataset, SmishingRecord
from ..nlp.similarity import cluster_texts
from ..utils.tables import Table
from ..world.scenario import World


@dataclass
class MinedCampaign:
    """One recovered campaign cluster."""

    cluster_id: int
    records: List[SmishingRecord] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.records)

    @property
    def first_seen(self) -> Optional[dt.datetime]:
        stamps = [r.timestamp.value for r in self.records
                  if r.timestamp is not None and r.timestamp.has_date]
        return min(stamps) if stamps else None

    @property
    def last_seen(self) -> Optional[dt.datetime]:
        stamps = [r.timestamp.value for r in self.records
                  if r.timestamp is not None and r.timestamp.has_date]
        return max(stamps) if stamps else None

    @property
    def lifespan_days(self) -> Optional[int]:
        if self.first_seen is None or self.last_seen is None:
            return None
        return (self.last_seen - self.first_seen).days

    @property
    def domains(self) -> Set[str]:
        """Scammer-controlled apex domains (shortener hosts excluded —
        bit.ly serving two campaigns is not shared infrastructure)."""
        from ..services.shorteners import is_shortener_host

        return {
            r.url.apex for r in self.records
            if r.url is not None and not is_shortener_host(r.url.host)
        }

    @property
    def senders(self) -> Set[str]:
        return {r.sender.normalized for r in self.records if r.sender}

    def exemplar(self) -> str:
        return self.records[0].text if self.records else ""


def mine_campaigns(
    dataset: SmishingDataset, *, threshold: float = 0.7,
    min_cluster_size: int = 2, split_by_brand: bool = True,
) -> List[MinedCampaign]:
    """Cluster a dataset into campaigns.

    Two stages: near-duplicate text clustering recovers the *template*
    (the phishing-kit message), then — because one kit is sold to many
    operations — each text cluster is split by the impersonated brand,
    which separates, e.g., the SBI and HDFC operations running the same
    "account locked" kit.
    """
    from ..nlp.brands_ner import BrandRecognizer

    records = dataset.records
    clusters = cluster_texts([r.text for r in records], threshold=threshold)
    recognizer = BrandRecognizer() if split_by_brand else None
    mined: List[MinedCampaign] = []
    next_id = 0
    for indices in clusters:
        if len(indices) < min_cluster_size:
            continue
        if recognizer is None:
            groups: Dict[Optional[str], List[int]] = {None: indices}
        else:
            groups = defaultdict(list)
            for index in indices:
                record = records[index]
                brand = (record.brand if record.annotations is not None
                         else recognizer.find_primary(record.text))
                groups[brand].append(index)
        for member_indices in groups.values():
            if len(member_indices) < min_cluster_size:
                continue
            mined.append(MinedCampaign(
                cluster_id=next_id,
                records=[records[i] for i in member_indices],
            ))
            next_id += 1
    mined.sort(key=lambda c: -c.size)
    return mined


@dataclass
class ClusteringQuality:
    """Agreement between mined clusters and ground truth.

    Two granularities, because text alone cannot separate two campaigns
    running the *same* template against the same brand:

    * ``signature_homogeneity`` — agreement with the operation signature
      (scam type, brand, language), which near-duplicate clustering is
      expected to recover cleanly.
    * ``campaign_homogeneity`` — agreement with the exact originating
      campaign id; a lower bound since same-template campaigns merge.
    """

    clustered_records: int
    signature_homogeneity: float
    campaign_homogeneity: float
    coverage: float  # fraction of multi-report campaigns recovered

    @property
    def acceptable(self) -> bool:
        return self.signature_homogeneity > 0.9


def evaluate_clustering(
    world: World, dataset: SmishingDataset, mined: Sequence[MinedCampaign]
) -> ClusteringQuality:
    """Score mined clusters against ground truth at both granularities."""
    clustered = 0
    signature_mass = 0
    campaign_mass = 0
    recovered_campaigns: Set[str] = set()
    for campaign in mined:
        campaign_ids = []
        signatures = []
        for record in campaign.records:
            event = (world.event(record.truth_event_id)
                     if record.truth_event_id else None)
            if event is not None:
                campaign_ids.append(event.campaign_id)
                signatures.append(
                    (event.scam_type, event.brand, event.language)
                )
        if not campaign_ids:
            continue
        clustered += len(campaign_ids)
        campaign_mass += Counter(campaign_ids).most_common(1)[0][1]
        signature_mass += Counter(signatures).most_common(1)[0][1]
        recovered_campaigns.add(Counter(campaign_ids).most_common(1)[0][0])
    # Campaigns with at least two curated records are recoverable.
    per_campaign: Counter = Counter()
    for record in dataset:
        event = (world.event(record.truth_event_id)
                 if record.truth_event_id else None)
        if event is not None:
            per_campaign[event.campaign_id] += 1
    recoverable = {c for c, n in per_campaign.items() if n >= 2}
    return ClusteringQuality(
        clustered_records=clustered,
        signature_homogeneity=signature_mass / clustered if clustered else 0.0,
        campaign_homogeneity=campaign_mass / clustered if clustered else 0.0,
        coverage=(len(recovered_campaigns & recoverable) / len(recoverable)
                  if recoverable else 0.0),
    )


def campaign_summary_table(
    mined: Sequence[MinedCampaign], top: int = 10
) -> Table:
    """Top mined campaigns with their footprint."""
    table = Table(
        title=f"Mined campaigns (top {top} of {len(mined)})",
        columns=["Cluster", "Reports", "Domains", "Senders", "Lifespan (d)",
                 "Exemplar"],
    )
    for campaign in sorted(mined, key=lambda c: -c.size)[:top]:
        table.add_row(
            campaign.cluster_id,
            campaign.size,
            len(campaign.domains),
            len(campaign.senders),
            campaign.lifespan_days,
            campaign.exemplar()[:48] + "...",
        )
    return table


def infrastructure_reuse(
    mined: Sequence[MinedCampaign],
) -> Dict[str, List[int]]:
    """Domains serving more than one mined campaign (shared kit hosting)."""
    domain_clusters: Dict[str, List[int]] = defaultdict(list)
    for campaign in mined:
        for domain in campaign.domains:
            domain_clusters[domain].append(campaign.cluster_id)
    return {domain: clusters
            for domain, clusters in domain_clusters.items()
            if len(clusters) > 1}
