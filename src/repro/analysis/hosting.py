"""Hosting / AS analysis: Table 8 (§4.6)."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.enrichment import EnrichedDataset
from ..net.asn import AsRegistry
from ..utils.tables import Table


@dataclass
class HostingOverview:
    """§4.6 headline numbers."""

    resolving_domains: int
    total_addresses: int
    cloudflare_domains: int
    cloudflare_addresses: int

    @property
    def cloudflare_share(self) -> float:
        if not self.resolving_domains:
            return 0.0
        return self.cloudflare_domains / self.resolving_domains


def hosting_overview(enriched: EnrichedDataset) -> HostingOverview:
    """Domains that resolved in passive DNS, and Cloudflare's share."""
    resolving = 0
    addresses = 0
    cf_domains = 0
    cf_addresses = 0
    for enrichment in enriched.urls.values():
        if not enrichment.pdns_addresses:
            continue
        resolving += 1
        addresses += len(enrichment.pdns_addresses)
        org_hits = {info.organisation for info in enrichment.ip_info}
        if "Cloudflare" in org_hits:
            cf_domains += 1
            cf_addresses += sum(
                1 for info in enrichment.ip_info
                if info.organisation == "Cloudflare"
            )
    return HostingOverview(
        resolving_domains=resolving,
        total_addresses=addresses,
        cloudflare_domains=cf_domains,
        cloudflare_addresses=cf_addresses,
    )


def as_usage(
    enriched: EnrichedDataset,
) -> Tuple[Counter, Dict[str, Set[int]], Dict[str, Set[str]]]:
    """(IPs per organisation, ASNs per organisation, countries per org).

    Table 8 groups by organisation (Amazon spans AS16509 + AS14618).
    Cloudflare is reported separately in the prose, so the table body
    excludes it, matching the paper.
    """
    ip_counts: Counter = Counter()
    asns: Dict[str, Set[int]] = defaultdict(set)
    countries: Dict[str, Set[str]] = defaultdict(set)
    seen_addresses: Set[int] = set()
    for enrichment in enriched.urls.values():
        for info in enrichment.ip_info:
            if info.address.value in seen_addresses:
                continue
            seen_addresses.add(info.address.value)
            ip_counts[info.organisation] += 1
            asns[info.organisation].add(info.asn)
            countries[info.organisation].add(info.country)
    return ip_counts, asns, countries


def build_table8(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Table 8: top ASes hosting smishing pages."""
    ip_counts, asns, countries = as_usage(enriched)
    table = Table(
        title="Table 8: Top ASes abused to host smishing web pages",
        columns=["AS Name", "IPs", "ASNs", "Countries"],
    )
    body = Counter({org: n for org, n in ip_counts.items()
                    if org != "Cloudflare"})
    for organisation, count in body.most_common(top):
        table.add_row(
            organisation,
            count,
            ", ".join(f"AS{a}" for a in sorted(asns[organisation])),
            ", ".join(sorted(countries[organisation])),
        )
    overview = hosting_overview(enriched)
    table.add_note(
        f"Cloudflare fronts {overview.cloudflare_domains} domains "
        f"({overview.cloudflare_share:.1%} of resolving domains) with "
        f"{overview.cloudflare_addresses} IPs"
    )
    return table


def bulletproof_hosting_hits(
    enriched: EnrichedDataset, registry: AsRegistry
) -> Counter:
    """IPs observed on known bulletproof hosting providers (§4.6)."""
    bph_orgs = {record.organisation for record in registry.bulletproof_asns()}
    hits: Counter = Counter()
    for enrichment in enriched.urls.values():
        for info in enrichment.ip_info:
            if info.organisation in bph_orgs:
                hits[info.organisation] += 1
    return hits
