"""Full paper report: regenerate every table and figure in one call."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.active import CaseStudyReport, run_case_study
from ..core.evaluation import EvaluationReport, evaluate_annotation
from ..core.pipeline import PipelineRun
from ..utils.tables import Table
from .detection import build_table9, build_table18
from .domains import build_table6, build_table16, build_table17
from .hosting import build_table8
from .malware import build_table19
from .overview import build_table1, build_table15
from .sender import (
    build_figure3_table,
    build_table3,
    build_table4,
    build_table14,
)
from .shorteners import build_table5
from .strategies import (
    build_figure2_table,
    build_table10,
    build_table11,
    build_table12,
    build_table13,
)
from .tls import build_table7


@dataclass
class PaperReport:
    """Every regenerated artefact, keyed the way the paper numbers them."""

    tables: Dict[str, Table] = field(default_factory=dict)
    case_study: Optional[CaseStudyReport] = None
    evaluation: Optional[EvaluationReport] = None

    def render(self) -> str:
        parts: List[str] = []
        for key in sorted(self.tables, key=_artefact_sort_key):
            parts.append(self.tables[key].to_text())
            parts.append("")
        if self.evaluation is not None:
            ev = self.evaluation
            parts.append(
                "OpenAI evaluation (§3.4): "
                f"IRR brands={ev.irr.brands:.2f} "
                f"scam={ev.irr.scam_types:.2f} lures={ev.irr.lures:.2f}; "
                f"model brands={ev.model_vs_consensus.brands:.2f} "
                f"scam={ev.model_vs_consensus.scam_types:.2f} "
                f"lures={ev.model_vs_consensus.lures:.2f}"
            )
        return "\n".join(parts)


def _artefact_sort_key(key: str):
    prefix = 0 if key.startswith("table") else 1
    digits = "".join(ch for ch in key if ch.isdigit())
    return (prefix, int(digits) if digits else 0, key)


def generate_paper_report(
    run: PipelineRun,
    *,
    include_case_study: bool = True,
    include_evaluation: bool = True,
    case_study_posts: int = 200,
    columnar: bool = False,
) -> PaperReport:
    """Build every table and figure from one pipeline run.

    ``columnar=True`` transposes the labelled dataset into a
    :class:`~repro.analysis.columnar.ColumnarDataset` once and drives
    the strategy tables (10-13) off its parallel arrays — byte-identical
    output, one pass instead of five.
    """
    enriched = run.enriched
    columns = None
    if columnar:
        from .columnar import ColumnarDataset
        columns = ColumnarDataset.from_enriched(enriched)
    report = PaperReport()
    report.tables["table1"] = build_table1(run.collection, run.dataset)
    report.tables["table3"] = build_table3(enriched)
    report.tables["table4"] = build_table4(enriched)
    report.tables["table5"] = build_table5(enriched)
    report.tables["table6"] = build_table6(enriched)
    report.tables["table7"] = build_table7(enriched)
    report.tables["table8"] = build_table8(enriched)
    report.tables["table9"] = build_table9(enriched)
    report.tables["table10"] = build_table10(enriched, columns=columns)
    report.tables["table11"] = build_table11(enriched, columns=columns)
    report.tables["table12"] = build_table12(enriched, columns=columns)
    report.tables["table13"] = build_table13(enriched, columns=columns)
    report.tables["table14"] = build_table14(enriched)
    report.tables["table15"] = build_table15(run.collection)
    report.tables["table16"] = build_table16(enriched)
    report.tables["table17"] = build_table17(enriched)
    report.tables["table18"] = build_table18(enriched)
    report.tables["figure2"] = build_figure2_table(enriched)
    report.tables["figure3"] = build_figure3_table(enriched)
    if include_case_study:
        report.case_study = run_case_study(
            run.world, run.dataset, sample_posts=case_study_posts
        )
        report.tables["table19"] = build_table19(report.case_study)
    if include_evaluation:
        report.evaluation = evaluate_annotation(run.world, run.dataset)
    return report
