"""Sender-side analyses: Tables 3, 4, 14 and Figure 3 (§4.1, §5.6)."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.enrichment import EnrichedDataset
from ..types import LineStatus, PhoneNumberType, ScamType, SenderIdKind
from ..utils.tables import Table, format_count_pct


@dataclass
class SenderKindSplit:
    """§4.1's sender-ID class split."""

    emails: int
    phone_numbers: int
    alphanumeric: int

    @property
    def total(self) -> int:
        return self.emails + self.phone_numbers + self.alphanumeric


def sender_kind_split(enriched: EnrichedDataset) -> SenderKindSplit:
    """Unique sender IDs per class (§4.1)."""
    counts = Counter(s.kind for s in enriched.senders.values())
    return SenderKindSplit(
        emails=counts.get(SenderIdKind.EMAIL, 0),
        phone_numbers=counts.get(SenderIdKind.PHONE_NUMBER, 0),
        alphanumeric=counts.get(SenderIdKind.ALPHANUMERIC, 0),
    )


#: Table 3's row order.
_TYPE_ORDER: Tuple[PhoneNumberType, ...] = (
    PhoneNumberType.MOBILE, PhoneNumberType.MOBILE_OR_LANDLINE,
    PhoneNumberType.VOIP, PhoneNumberType.TOLL_FREE, PhoneNumberType.PAGER,
    PhoneNumberType.UNIVERSAL_ACCESS, PhoneNumberType.PERSONAL,
    PhoneNumberType.OTHER, PhoneNumberType.BAD_FORMAT,
    PhoneNumberType.LANDLINE, PhoneNumberType.VOICEMAIL_ONLY,
)


def build_table3(enriched: EnrichedDataset) -> Table:
    """Table 3: phone-number types abused as sender IDs (HLR)."""
    counts: Counter = Counter()
    for sender in enriched.senders.values():
        if sender.hlr is not None:
            counts[sender.hlr.number_type] += 1
    total = sum(counts.values()) or 1
    table = Table(
        title=f"Table 3: Types of phone numbers abused as sender IDs (n={total:,})",
        columns=["Type", "Phone Numbers"],
    )
    valid = [t for t in _TYPE_ORDER if t.is_valid]
    invalid = [t for t in _TYPE_ORDER if not t.is_valid]
    table.add_row("Valid Numbers", None)
    for number_type in valid:
        table.add_row(number_type.value,
                      format_count_pct(counts.get(number_type, 0), total))
    table.add_row("Invalid/Suspicious Numbers", None)
    for number_type in invalid:
        table.add_row(number_type.value,
                      format_count_pct(counts.get(number_type, 0), total))
    return table


def build_table4(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Table 4: most-abused original mobile network operators."""
    counts: Counter = Counter()
    countries: Dict[str, set] = defaultdict(set)
    for sender in enriched.senders.values():
        hlr = sender.hlr
        if hlr is None or hlr.original_operator is None:
            continue
        counts[hlr.original_operator] += 1
        if hlr.country_iso3:
            countries[hlr.original_operator].add(hlr.country_iso3)
    total = sum(counts.values()) or 1
    table = Table(
        title="Table 4: Top mobile network operators abused for smishing",
        columns=["MNO", "Mobile #s", "Countries"],
    )
    for name, count in counts.most_common(top):
        table.add_row(
            name,
            format_count_pct(count, total),
            ", ".join(sorted(countries[name])),
        )
    return table


def build_table14(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Table 14: top origin countries (all vs live numbers)."""
    all_counts: Counter = Counter()
    live_counts: Counter = Counter()
    operator_sets: Dict[str, set] = defaultdict(set)
    for sender in enriched.senders.values():
        hlr = sender.hlr
        if hlr is None or hlr.country_iso3 is None:
            continue
        if not hlr.is_valid or hlr.original_operator is None:
            continue
        all_counts[hlr.country_iso3] += 1
        operator_sets[hlr.country_iso3].add(hlr.original_operator)
        if hlr.status is LineStatus.LIVE:
            live_counts[hlr.country_iso3] += 1
    table = Table(
        title="Table 14: Top countries by sender-ID mobile numbers",
        columns=["Country", "MNOs", "All", "Live"],
    )
    for country, count in all_counts.most_common(top):
        table.add_row(
            country,
            len(operator_sets[country]),
            count,
            live_counts.get(country, 0),
        )
    return table


def figure3_data(
    enriched: EnrichedDataset, top: int = 10
) -> Dict[str, Dict[ScamType, float]]:
    """Figure 3: per-country scam-type percentage mix.

    Joins each record's HLR origin country with its annotated scam type
    and normalises to percentages within each of the top countries.
    """
    joint: Dict[str, Counter] = defaultdict(Counter)
    country_totals: Counter = Counter()
    for record in enriched.dataset:
        labels = enriched.labels_for(record)
        sender = enriched.sender_enrichment_for(record)
        if labels is None or sender is None or sender.hlr is None:
            continue
        country = sender.hlr.country_iso3
        if country is None or not sender.hlr.is_valid:
            continue
        if labels.scam_type is ScamType.SPAM:
            continue  # the figure shows scam types only
        joint[country][labels.scam_type] += 1
        country_totals[country] += 1
    top_countries = [c for c, _ in country_totals.most_common(top)]
    result: Dict[str, Dict[ScamType, float]] = {}
    for country in top_countries:
        total = country_totals[country] or 1
        result[country] = {
            scam: 100.0 * count / total
            for scam, count in joint[country].items()
        }
    return result


def build_figure3_table(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Figure 3 rendered as a table of percentages."""
    data = figure3_data(enriched, top)
    scam_order = [s for s in ScamType if s is not ScamType.SPAM]
    table = Table(
        title="Figure 3: Scam-type mix per top origin country (%)",
        columns=["Country"] + [s.value for s in scam_order],
    )
    for country, mix in data.items():
        table.add_row(
            country,
            *[round(mix.get(scam, 0.0), 1) for scam in scam_order],
        )
    return table
