"""Columnar layout for the labelled dataset: the analysis hot path.

The strategy tables (10-13) are label-counting passes. The row-oriented
builders walk every :class:`~repro.core.dataset.SmishingRecord` and do a
per-record ``labels_for`` dict probe — five separate full passes for the
five analyses, plus thousands of per-record ``squash`` calls wherever
text keys are needed. A :class:`ColumnarDataset` makes that transposition
once: the labelled records' fields become parallel arrays (one entry per
*labelled* record, in dataset order), and the text column is squashed in
one batched :func:`~repro.nlp.normalize.batch_squash` pass instead of
per-record regex churn.

Byte-identity is structural, not aspirational: the arrays hold the very
objects the row walk would have visited, in the same order (including
each record's original ``lures`` frozenset, so even tie-breaking
insertion order inside downstream ``Counter``\\s is preserved). The
strategy builders accept ``columns=`` and run the same counting logic
off the arrays; ``tests/test_exec_equivalence.py`` fingerprints the
rendered report both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from ..core.enrichment import EnrichedDataset
from ..nlp.normalize import batch_squash
from ..types import LurePrinciple, ScamType


@dataclass
class ColumnarDataset:
    """Parallel arrays over the labelled records, in dataset order."""

    record_ids: List[str]
    texts: List[str]
    #: ``batch_squash(texts)`` — the normalised comparison keys, computed
    #: in one pass over the joined corpus.
    squashed: List[str]
    scam_types: List[ScamType]
    languages: List[str]
    brands: List[Optional[str]]
    #: Each labelled record's *original* lures frozenset (not a copy):
    #: iteration order inside a set is identity-stable, and downstream
    #: counters inherit their insertion order from it.
    lure_sets: List[FrozenSet[LurePrinciple]]

    def __len__(self) -> int:
        return len(self.record_ids)

    @classmethod
    def from_enriched(cls, enriched: EnrichedDataset) -> "ColumnarDataset":
        """Transpose the labelled slice of ``enriched`` into columns."""
        record_ids: List[str] = []
        texts: List[str] = []
        scam_types: List[ScamType] = []
        languages: List[str] = []
        brands: List[Optional[str]] = []
        lure_sets: List[FrozenSet[LurePrinciple]] = []
        annotations = enriched.annotations
        for record in enriched.dataset:
            labels = annotations.get(record.record_id)
            if labels is None:
                continue
            record_ids.append(record.record_id)
            texts.append(record.text)
            scam_types.append(labels.scam_type)
            languages.append(labels.language)
            brands.append(labels.brand)
            lure_sets.append(labels.lures)
        return cls(
            record_ids=record_ids,
            texts=texts,
            squashed=batch_squash(texts),
            scam_types=scam_types,
            languages=languages,
            brands=brands,
            lure_sets=lure_sets,
        )


__all__ = ["ColumnarDataset"]
