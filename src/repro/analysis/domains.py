"""Domain-side analyses: Tables 6, 16 and 17 (§4.3, §4.4)."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional, Tuple

from ..core.enrichment import EnrichedDataset
from ..types import ScamType, TldClass
from ..utils.tables import Table
from ..world.infrastructure import FREE_HOSTING_WEIGHTS


def tld_counters(enriched: EnrichedDataset) -> Tuple[Counter, Counter]:
    """(direct smishing URL TLDs, shortened URL TLDs) over unique URLs.

    Table 6 separates the TLD of the scammer's own domain from the TLD of
    the shortener host (``ly`` for bit.ly etc.).
    """
    direct: Counter = Counter()
    shortened: Counter = Counter()
    for enrichment in enriched.urls.values():
        tld = enrichment.effective_tld
        if tld is None:
            continue
        if enrichment.shortener is not None:
            shortened[tld.rsplit(".", 1)[-1]] += 1
        elif not enrichment.is_whatsapp:
            direct[tld] += 1
    return direct, shortened


def build_table6(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Table 6: top TLDs for smishing URLs and shortened URLs."""
    direct, shortened = tld_counters(enriched)
    table = Table(
        title=f"Table 6: Top TLDs abused for smishing URLs (n={sum(direct.values()):,})",
        columns=["TLD", "Smishing URLs", "TLD (short)", "Shortened URLs"],
    )
    direct_rows = direct.most_common(top)
    short_rows = shortened.most_common(top)
    for index in range(max(len(direct_rows), len(short_rows))):
        left = direct_rows[index] if index < len(direct_rows) else ("", None)
        right = short_rows[index] if index < len(short_rows) else ("", None)
        table.add_row(left[0], left[1], right[0], right[1])
    return table


def build_table16(enriched: EnrichedDataset) -> Table:
    """Table 16: unique smishing URLs by IANA TLD class."""
    class_urls: Counter = Counter()
    class_tlds: Dict[TldClass, set] = defaultdict(set)
    for enrichment in enriched.urls.values():
        if enrichment.shortener is not None or enrichment.is_whatsapp:
            continue
        if enrichment.tld_class is None or enrichment.effective_tld is None:
            continue
        tld_class = enrichment.tld_class
        # Multi-label free-hosting suffixes are generic platform TLDs.
        if enrichment.effective_tld in FREE_HOSTING_WEIGHTS:
            tld_class = TldClass.GENERIC
        class_urls[tld_class] += 1
        class_tlds[tld_class].add(enrichment.effective_tld)
    total = sum(class_urls.values()) or 1
    table = Table(
        title="Table 16: Smishing URL TLDs by IANA classification",
        columns=["Type", "URLs", "URLs %", "TLDs"],
    )
    for tld_class in TldClass:
        urls = class_urls.get(tld_class, 0)
        if urls == 0 and tld_class in (TldClass.INFRASTRUCTURE, TldClass.TEST):
            table.add_row(tld_class.value, None, None, None)
            continue
        table.add_row(
            tld_class.value, urls,
            round(100.0 * urls / total, 1),
            len(class_tlds.get(tld_class, ())),
        )
    return table


def registrar_usage(
    enriched: EnrichedDataset,
) -> Tuple[Counter, Dict[str, Counter]]:
    """(domains per registrar, per-registrar scam-type counters)."""
    domain_registrar: Dict[str, str] = {}
    domain_scams: Dict[str, Counter] = defaultdict(Counter)
    for record in enriched.dataset:
        if record.url is None:
            continue
        enrichment = enriched.urls.get(str(record.url))
        if enrichment is None or enrichment.whois is None:
            continue
        registrar = enrichment.whois.registrar
        if registrar is None:
            continue
        domain = enrichment.registered_domain or enrichment.url.host
        domain_registrar[domain] = registrar
        labels = enriched.labels_for(record)
        if labels is not None:
            domain_scams[domain][labels.scam_type] += 1
    counts: Counter = Counter(domain_registrar.values())
    per_scam: Dict[str, Counter] = defaultdict(Counter)
    for domain, registrar in domain_registrar.items():
        scams = domain_scams.get(domain)
        if scams:
            per_scam[registrar][scams.most_common(1)[0][0]] += 1
    return counts, per_scam


def build_table17(enriched: EnrichedDataset, top: int = 10) -> Table:
    """Table 17: top registrars for smishing domains."""
    counts, _ = registrar_usage(enriched)
    table = Table(
        title="Table 17: Top registrars abused to register smishing domains",
        columns=["Registrar", "Domains"],
    )
    for registrar, count in counts.most_common(top):
        table.add_row(registrar, count)
    return table


def preferred_registrar_for(
    enriched: EnrichedDataset, scam_type: ScamType
) -> Optional[str]:
    """The registrar most used by one scam type (§4.4: Gname for gov)."""
    _, per_scam = registrar_usage(enriched)
    best: Tuple[Optional[str], int] = (None, 0)
    for registrar, scams in per_scam.items():
        count = scams.get(scam_type, 0)
        if count > best[1]:
            best = (registrar, count)
    return best[0]


def free_hosting_counts(enriched: EnrichedDataset) -> Counter:
    """Unique domains per free website-builder suffix (§4.3)."""
    counts: Counter = Counter()
    seen: set = set()
    for enrichment in enriched.urls.values():
        tld = enrichment.effective_tld
        domain = enrichment.registered_domain
        if tld in FREE_HOSTING_WEIGHTS and domain not in seen:
            seen.add(domain)
            counts[tld] += 1
    return counts
