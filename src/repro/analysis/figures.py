"""Plot-ready data series and CSV export for the paper's figures.

The paper's artifact repository ships the code that generates its plots;
this module is the equivalent: each figure builder returns tidy
``(series name, x, y)`` rows that any plotting library consumes directly,
plus CSV writers so the data can leave the Python process.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.enrichment import EnrichedDataset
from ..types import ScamType
from .sender import figure3_data
from .strategies import TimestampAnalysis, timestamp_analysis

_WEEKDAYS = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
             "Saturday", "Sunday")


@dataclass
class FigureData:
    """Tidy long-format figure data."""

    figure_id: str
    columns: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path: "Path | str") -> int:
        path = Path(path)
        path.write_text(self.to_csv(), encoding="utf-8")
        return len(self.rows)

    def series(self, name_column: int = 0) -> Dict[str, List[Tuple]]:
        grouped: Dict[str, List[Tuple]] = {}
        for row in self.rows:
            grouped.setdefault(str(row[name_column]), []).append(row)
        return grouped


def figure2_series(
    enriched: EnrichedDataset,
    *,
    analysis: Optional[TimestampAnalysis] = None,
) -> FigureData:
    """Figure 2 as long-format rows: (weekday, second_of_day).

    One row per timestamped message — the raw material for the paper's
    per-weekday scatter/box plot.
    """
    analysis = analysis or timestamp_analysis(enriched)
    data = FigureData(
        figure_id="figure2",
        columns=("weekday", "second_of_day"),
    )
    for weekday in _WEEKDAYS:
        for second in sorted(analysis.samples[weekday]):
            data.rows.append((weekday, second))
    return data


def figure2_median_series(
    enriched: EnrichedDataset,
    *,
    analysis: Optional[TimestampAnalysis] = None,
) -> FigureData:
    """Per-weekday medians (the annotations printed under Fig. 2)."""
    analysis = analysis or timestamp_analysis(enriched)
    data = FigureData(
        figure_id="figure2-medians",
        columns=("weekday", "messages", "median_send_time"),
    )
    for weekday in _WEEKDAYS:
        data.rows.append((
            weekday,
            len(analysis.samples[weekday]),
            analysis.medians[weekday],
        ))
    return data


def figure3_series(enriched: EnrichedDataset, top: int = 10) -> FigureData:
    """Figure 3 as long-format rows: (country, scam_type, percentage)."""
    mix = figure3_data(enriched, top)
    data = FigureData(
        figure_id="figure3",
        columns=("country", "scam_type", "percentage"),
    )
    for country, scam_mix in mix.items():
        for scam in ScamType:
            if scam is ScamType.SPAM:
                continue
            data.rows.append((
                country, scam.value, round(scam_mix.get(scam, 0.0), 2)
            ))
    return data


def yearly_volume_series(collection_reports) -> FigureData:
    """Tweets and images per year (the Table 15 trend, as a series)."""
    from collections import Counter

    from ..types import Forum

    posts: Counter = Counter()
    images: Counter = Counter()
    for report in collection_reports:
        if report.forum is not Forum.TWITTER:
            continue
        posts[report.posted_at.year] += 1
        images[report.posted_at.year] += len(report.screenshots)
    data = FigureData(
        figure_id="twitter-yearly",
        columns=("year", "tweets", "images"),
    )
    for year in sorted(set(posts) | set(images)):
        data.rows.append((year, posts.get(year, 0), images.get(year, 0)))
    return data


def export_all_figures(
    enriched: EnrichedDataset, collection_reports, directory: "Path | str"
) -> Dict[str, int]:
    """Write every figure CSV into ``directory``; returns row counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, int] = {}
    for data in (
        figure2_series(enriched),
        figure2_median_series(enriched),
        figure3_series(enriched),
        yearly_volume_series(collection_reports),
    ):
        written[data.figure_id] = data.save_csv(
            directory / f"{data.figure_id}.csv"
        )
    return written
