"""Google-Vision-style OCR simulator.

Per §3.2: character recognition is far better than plain OCR (it handles
custom themes and rarely confuses glyphs), but the engine emits text
*blocks* whose reading order does not follow the message flow — widgets
and multi-column layout interleave, and a URL wrapped across lines comes
back as separate fragments, so "it often fails to preserve the correct
reading order, resulting in incoherent text output [and] does not extract
the complete URL".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..errors import ExtractionError
from .screenshot import ImageKind, Screenshot, TextLine


@dataclass
class VisionBlock:
    """One detected text block with a layout bounding hint."""

    text: str
    row: int
    column: int


@dataclass
class GoogleVisionResult:
    """Full annotation: blocks plus the engine's naive concatenation."""

    blocks: List[VisionBlock]
    full_text: str
    engine: str = "google-vision-sim"


class GoogleVisionOcr:
    """Accurate per-character OCR with unreliable reading order."""

    def __init__(self, rng: random.Random, *, reorder_rate: float = 0.45):
        self._rng = rng
        self._reorder_rate = reorder_rate
        self.processed = 0

    def annotate(self, screenshot: Screenshot) -> GoogleVisionResult:
        """Detect text blocks; raise only when there is no text at all."""
        self.processed += 1
        if screenshot.kind is ImageKind.UNRELATED_PHOTO or not screenshot.lines:
            raise ExtractionError("no text detected")
        blocks: List[VisionBlock] = []
        for row, line in screenshot.visual_rows():
            blocks.append(VisionBlock(text=line.text, row=row, column=line.column))
        ordered = self._emit_order(blocks, screenshot)
        full_text = "\n".join(block.text for block in ordered)
        return GoogleVisionResult(blocks=ordered, full_text=full_text)

    def _emit_order(
        self, blocks: List[VisionBlock], screenshot: Screenshot
    ) -> List[VisionBlock]:
        """The engine's block order.

        With probability ``reorder_rate`` the engine sorts column-major
        (all column-0 blocks, then widgets) and additionally splits the
        body at wrapped continuations by pulling continuation fragments to
        the end — the documented URL-truncation behaviour.
        """
        if self._rng.random() >= self._reorder_rate:
            return blocks
        main = [b for b in blocks if b.column == 0]
        widgets = [b for b in blocks if b.column != 0]
        continuations = []
        kept = []
        continuation_rows = {
            row for row, line in screenshot.visual_rows()
            if line.wrapped_continuation
        }
        for block in main:
            if block.row in continuation_rows:
                continuations.append(block)
            else:
                kept.append(block)
        # Widgets land mid-stream; continuations drift to the bottom.
        midpoint = max(1, len(kept) // 2)
        return kept[:midpoint] + widgets + kept[midpoint:] + continuations
