"""Render ground-truth smishing events into structured screenshots.

The renderer decides the app skin, timestamp format, redactions and
layout quirks for each report, producing the :class:`Screenshot` objects
that reporters attach to their forum posts. It also produces the decoy
images (awareness posters, e-mail screenshots, unrelated photos) that
pollute keyword-matched forum posts (§3.2).
"""

from __future__ import annotations

import datetime as dt
import random
from typing import List, Optional

from ..sms.message import SmishingEvent
from ..utils.rng import WeightedSampler
from ..utils.timeutils import TIMESTAMP_STYLES, format_app_timestamp
from .screenshot import (
    AppSkin,
    ImageKind,
    Screenshot,
    TextLine,
    redact,
    word_wrap,
)

_SKIN_WEIGHTS = {
    AppSkin.IOS_MESSAGES: 0.38,
    AppSkin.ANDROID_MESSAGES: 0.34,
    AppSkin.SAMSUNG_MESSAGES: 0.12,
    AppSkin.WHATSAPP: 0.06,
    AppSkin.CUSTOM_THEMED: 0.10,
}

_TIMESTAMP_STYLE_WEIGHTS = {
    "iso": 0.10,
    "numeric_dayfirst": 0.22,
    "numeric_monthfirst": 0.18,
    "long": 0.28,
    "time_only": 0.14,
    "relative": 0.08,
}

_POSTER_TEXTS = (
    "STOP SMISHING! Never click links in unexpected texts. Report scam SMS "
    "to your operator by forwarding to 7726.",
    "Cyber awareness week: phishing SMS cost consumers millions last year. "
    "Think before you tap!",
    "How to spot a scam text: urgency, bad grammar, strange links. Share to "
    "protect your family.",
)

_EMAIL_TEXTS = (
    "From: security@paypa1-support.com\nSubject: Your account is limited\n"
    "Dear customer, we noticed unusual activity...",
    "From: it-helpdesk@corp.example\nSubject: Password expires today\n"
    "Click to keep your password...",
)


class ScreenshotRenderer:
    """Turns events into screenshots and emits decoy images."""

    def __init__(self, rng: random.Random, *, width_chars: int = 38):
        self._rng = rng
        self._width = width_chars
        self._skin_sampler = WeightedSampler(_SKIN_WEIGHTS)
        self._style_sampler = WeightedSampler(_TIMESTAMP_STYLE_WEIGHTS)
        self._counter = 0

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter:07d}"

    def render_event(
        self,
        event: SmishingEvent,
        *,
        redact_sender: Optional[bool] = None,
        redact_url: Optional[bool] = None,
        captured_at: Optional[dt.datetime] = None,
    ) -> Screenshot:
        """Render one SMS screenshot for a report.

        Redaction probabilities mirror §3.2: some reporters blank the
        sender ID (privacy) or the URL shortcode (protecting others).
        ``captured_at`` is when the user took the screenshot: messaging
        apps only render "Today"/bare-time headers for messages received
        the same day, so older messages always carry a dated header.
        """
        rng = self._rng
        skin = self._skin_sampler.sample(rng)
        style = self._style_sampler.sample(rng)
        if (captured_at is not None
                and captured_at.date() != event.received_at.date()
                and style in ("relative", "time_only")):
            style = "long"
        if redact_sender is None:
            redact_sender = rng.random() < 0.12
        if redact_url is None:
            redact_url = event.url is not None and rng.random() < 0.07

        sender_text = event.sender.raw
        if redact_sender:
            sender_text = redact(sender_text)

        body_text = event.message.text
        if redact_url and event.url is not None:
            body_text = body_text.replace(str(event.url), str(event.url.host) + "/***")

        timestamp_text = format_app_timestamp(event.received_at, style)
        has_date = style != "time_only"

        lines: List[TextLine] = [
            TextLine(text=sender_text, role="header"),
            TextLine(text=timestamp_text, role="timestamp"),
        ]
        for row, continuation in word_wrap(body_text, self._width):
            lines.append(
                TextLine(text=row, role="body", wrapped_continuation=continuation)
            )
        # Occasional UI widget column that confuses naive OCR ordering.
        if rng.random() < 0.25:
            lines.append(TextLine(text="Delivered", role="widget", column=1))
        if rng.random() < 0.15:
            lines.append(TextLine(text="Report junk", role="widget", column=1))

        return Screenshot(
            image_id=self._next_id("img"),
            kind=ImageKind.SMS_SCREENSHOT,
            skin=skin,
            lines=lines,
            truth_event_id=event.event_id,
            truth_text=event.message.text,
            truth_sender=event.sender.raw,
            truth_timestamp=event.received_at,
            truth_url=str(event.url) if event.url else None,
            sender_redacted=redact_sender,
            url_redacted=bool(redact_url),
            timestamp_has_date=has_date,
            language=event.language,
            width_chars=self._width,
        )

    # -- decoys ---------------------------------------------------------------

    def render_awareness_poster(self) -> Screenshot:
        """Awareness graphic a charity/organisation posts with our keywords."""
        text = self._rng.choice(_POSTER_TEXTS)
        lines = [TextLine(text=row, role="body", wrapped_continuation=cont)
                 for row, cont in word_wrap(text, self._width + 10)]
        return Screenshot(
            image_id=self._next_id("img"),
            kind=ImageKind.AWARENESS_POSTER,
            skin=AppSkin.CUSTOM_THEMED,
            lines=lines,
        )

    def render_email_screenshot(self) -> Screenshot:
        """An e-mail phishing screenshot mistakenly posted as 'smishing'."""
        text = self._rng.choice(_EMAIL_TEXTS)
        lines = [TextLine(text=row, role="body", wrapped_continuation=cont)
                 for row, cont in word_wrap(text, self._width + 14)]
        return Screenshot(
            image_id=self._next_id("img"),
            kind=ImageKind.EMAIL_SCREENSHOT,
            skin=AppSkin.CUSTOM_THEMED,
            lines=lines,
        )

    def render_unrelated_photo(self) -> Screenshot:
        """A photo with no text at all (memes, pets, receipts...)."""
        return Screenshot(
            image_id=self._next_id("img"),
            kind=ImageKind.UNRELATED_PHOTO,
            skin=AppSkin.CUSTOM_THEMED,
            lines=[],
        )

    def render_decoy(self) -> Screenshot:
        roll = self._rng.random()
        if roll < 0.5:
            return self.render_awareness_poster()
        if roll < 0.8:
            return self.render_email_screenshot()
        return self.render_unrelated_photo()
