"""Structured screenshot model.

We do not rasterise pixels; a :class:`Screenshot` is a structured
description of what a messaging-app screenshot *shows* — app skin, header
sender line, timestamp line, wrapped text lines, colours and glyph-level
rendering quirks. This is exactly the information an OCR engine has to
recover, so the three extraction back-ends (:mod:`repro.imaging.ocr`,
:mod:`repro.imaging.vision_google`, :mod:`repro.imaging.vision_openai`)
can exhibit their documented failure modes (§3.2) mechanically:

* Pytesseract cannot cope with custom background themes and confuses
  look-alike glyphs (``l`` vs ``I``, ``0`` vs ``O``).
* Google Vision reads characters well but loses reading order on
  multi-column layouts, breaking URLs that wrap across lines.
* The OpenAI Vision extractor reconstructs full messages and rejects
  non-SMS images.
"""

from __future__ import annotations

import datetime as dt
import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class AppSkin(str, enum.Enum):
    """Messaging-app visual styles the renderer can produce."""

    IOS_MESSAGES = "ios_messages"
    ANDROID_MESSAGES = "android_messages"
    SAMSUNG_MESSAGES = "samsung_messages"
    WHATSAPP = "whatsapp"
    CUSTOM_THEMED = "custom_themed"  # user-customised colours/fonts

    @property
    def has_custom_background(self) -> bool:
        return self in (AppSkin.CUSTOM_THEMED, AppSkin.WHATSAPP)


class ImageKind(str, enum.Enum):
    """What the posted image actually is (§3.2: not all are SMS shots)."""

    SMS_SCREENSHOT = "sms_screenshot"
    EMAIL_SCREENSHOT = "email_screenshot"
    AWARENESS_POSTER = "awareness_poster"
    UNRELATED_PHOTO = "unrelated_photo"
    CHAT_SCREENSHOT = "chat_screenshot"  # non-SMS messenger thread


@dataclass(frozen=True)
class TextLine:
    """One physical line of rendered text inside the screenshot.

    ``column`` captures layout: real screenshots have side timestamps or
    reaction widgets that naive OCR interleaves with the message body.
    ``wrapped_continuation`` marks a line that continues the previous one
    (URL wraps rely on this).
    """

    text: str
    role: str  # "header", "timestamp", "body", "widget"
    column: int = 0
    wrapped_continuation: bool = False


@dataclass
class Screenshot:
    """A structured SMS screenshot (or something pretending to be one)."""

    image_id: str
    kind: ImageKind
    skin: AppSkin
    lines: List[TextLine] = field(default_factory=list)
    #: Ground-truth linkage for evaluation only — extractors MUST NOT read
    #: these fields (tests enforce that they produce output from ``lines``).
    truth_event_id: Optional[str] = None
    truth_text: Optional[str] = None
    truth_sender: Optional[str] = None
    truth_timestamp: Optional[dt.datetime] = None
    truth_url: Optional[str] = None
    #: Rendering facts extractors may legitimately perceive.
    sender_redacted: bool = False
    url_redacted: bool = False
    timestamp_has_date: bool = True
    language: str = "en"
    width_chars: int = 38

    @property
    def body_lines(self) -> List[TextLine]:
        return [line for line in self.lines if line.role == "body"]

    @property
    def header_line(self) -> Optional[TextLine]:
        for line in self.lines:
            if line.role == "header":
                return line
        return None

    @property
    def timestamp_line(self) -> Optional[TextLine]:
        for line in self.lines:
            if line.role == "timestamp":
                return line
        return None

    def visual_rows(self) -> List[Tuple[int, TextLine]]:
        """Lines in visual order with their row index (for OCR engines)."""
        return list(enumerate(self.lines))


def redact(text: str, *, keep_prefix: int = 3) -> str:
    """Reporter-style redaction: keep a short prefix, star the rest."""
    if len(text) <= keep_prefix:
        return "*" * len(text)
    return text[:keep_prefix] + "*" * (len(text) - keep_prefix)


def word_wrap(text: str, width: int) -> List[Tuple[str, bool]]:
    """Wrap text to ``width`` columns.

    Returns ``(row_text, hard_continuation)`` pairs. ``hard_continuation``
    is True only when the row continues a *token* split mid-way because it
    was longer than the line (URLs, typically) — soft word-wraps are not
    continuations. This distinction is what lets a layout-aware extractor
    re-join URLs while naive OCR truncates them (§3.2).
    """
    if width < 6:
        raise ValueError("width too small to render")
    rows: List[Tuple[str, bool]] = []
    for paragraph in text.split("\n"):
        current = ""
        current_is_cont = False
        for word in paragraph.split(" "):
            if not word:
                continue
            while True:
                sep = " " if current else ""
                if len(current) + len(sep) + len(word) <= width:
                    current += sep + word
                    break
                space_left = width - len(current) - len(sep)
                if len(word) > width and space_left >= 5:
                    # Fill the row with the head of the long token.
                    current += sep + word[:space_left]
                    word = word[space_left:]
                    rows.append((current, current_is_cont))
                    current = ""
                    current_is_cont = True
                elif current:
                    rows.append((current, current_is_cont))
                    current = ""
                    current_is_cont = False
                else:
                    # Long token on an empty row: hard split at width.
                    rows.append((word[:width], current_is_cont))
                    word = word[width:]
                    current_is_cont = True
        if current:
            rows.append((current, current_is_cont))
    return rows
