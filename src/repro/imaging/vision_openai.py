"""OpenAI-Vision-style extractor: prompt-driven structured extraction.

The paper's final pipeline (§3.2, prompt in Appendix D.1) sends each image
to a vision LLM with instructions to (a) dismiss images that are not SMS
screenshots, and (b) otherwise return JSON with ``timestamp``, ``text``,
``url`` and ``sender-id``. This simulator implements that contract: it
understands layout (re-joins wrapped lines, ignores UI widgets), reads the
header and timestamp rows, and returns empty fields for redacted or
missing values. A small residual error rate models imperfect extraction.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ExtractionError
from ..net.url import extract_urls
from ..utils.rng import stable_hash
from .screenshot import ImageKind, Screenshot

#: The extraction prompt of Appendix D.1 (verbatim contract).
VISION_PROMPT = (
    "You will receive a json object with an 'image'. The 'image' is "
    "reported by a user as a phishing SMS. This should most likely be a "
    "screenshot of the text message received on a user's mobile phone. "
    "Based on the instructions below, process the message and return a "
    "json object. Instructions: Do not extract the details if it is not a "
    "screenshot of the SMS message and return the below parameters empty. "
    "If it is a mobile message screenshot, you need to extract the "
    "following and return a JSON response consisting of the following: "
    "'timestamp': This should be the date and time in the screenshot when "
    "the SMS message was received. If the timestamp is not there, leave it "
    "empty. 'text': This should be the text in the SMS message. If "
    "unavailable in the screenshot, leave it empty. 'url': If the SMS "
    "contains a URL, extract it; otherwise, leave it empty. 'sender-id': "
    "This should be the sender ID (mobile number, alphanumeric sender ID, "
    "or email address) that sent the SMS message. If it is not available, "
    "leave it empty."
)


@dataclass
class VisionExtraction:
    """Structured result for one image (the Appendix D.1 JSON object)."""

    timestamp: str
    text: str
    url: str
    sender_id: str
    dismissed: bool = False

    def to_json(self) -> str:
        if self.dismissed:
            payload: Dict[str, str] = {
                "timestamp": "", "text": "", "url": "", "sender-id": ""
            }
        else:
            payload = {
                "timestamp": self.timestamp,
                "text": self.text,
                "url": self.url,
                "sender-id": self.sender_id,
            }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, raw: str) -> "VisionExtraction":
        data = json.loads(raw)
        extraction = cls(
            timestamp=data.get("timestamp", ""),
            text=data.get("text", ""),
            url=data.get("url", ""),
            sender_id=data.get("sender-id", ""),
        )
        if not any((extraction.timestamp, extraction.text, extraction.url,
                    extraction.sender_id)):
            extraction.dismissed = True
        return extraction


class OpenAiVisionExtractor:
    """Prompted vision extraction with layout understanding.

    ``miss_rate`` is the residual probability of dropping an optional
    field (timestamp or sender) despite it being visible; text extraction
    itself succeeds on every SMS screenshot, matching §3.2 ("we
    successfully extract the text from all the collected SMS-resembling
    images").

    The miss draws come from the shared positional ``rng`` by default,
    so the outcome for one image depends on how many images were
    processed before it. Passing ``stable_seed`` switches to one derived
    generator per image (hashed from the seed and the image id), making
    each extraction a pure function of the image — required by the
    incremental ingester, whose epoch slicing reorders the batch.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        prompt: str = VISION_PROMPT,
        miss_rate: float = 0.015,
        stable_seed: Optional[int] = None,
    ):
        if "json" not in prompt.lower():
            raise ExtractionError("vision prompt must request a JSON response")
        self._rng = rng
        self._miss_rate = miss_rate
        self._stable_seed = stable_seed
        self.prompt = prompt
        self.processed = 0
        self.dismissed = 0

    def _draws_for(self, screenshot: Screenshot) -> random.Random:
        """The generator feeding one image's miss draws."""
        if self._stable_seed is None:
            return self._rng
        return random.Random(stable_hash(
            f"vision:{self._stable_seed}:{screenshot.image_id}", 2 ** 62
        ))

    def extract(self, screenshot: Screenshot) -> VisionExtraction:
        """Process one image per the Appendix D.1 contract."""
        self.processed += 1
        if screenshot.kind is not ImageKind.SMS_SCREENSHOT:
            self.dismissed += 1
            return VisionExtraction("", "", "", "", dismissed=True)

        draws = self._draws_for(screenshot)
        text = self._reconstruct_body(screenshot)
        sender = ""
        header = screenshot.header_line
        if header is not None and not screenshot.sender_redacted:
            if draws.random() >= self._miss_rate:
                sender = header.text
        timestamp = ""
        ts_line = screenshot.timestamp_line
        if ts_line is not None and draws.random() >= self._miss_rate:
            timestamp = ts_line.text
        url = ""
        if not screenshot.url_redacted:
            urls = extract_urls(text)
            if urls:
                url = str(urls[0])
        return VisionExtraction(
            timestamp=timestamp, text=text, url=url, sender_id=sender
        )

    def _reconstruct_body(self, screenshot: Screenshot) -> str:
        """Re-join wrapped lines into flowing message text.

        Continuation rows are glued to their predecessor without a space
        (they are parts of one token, typically a URL); ordinary wraps are
        re-joined with a space.
        """
        parts: List[str] = []
        for line in screenshot.body_lines:
            if line.wrapped_continuation and parts:
                parts[-1] = parts[-1] + line.text
            else:
                parts.append(line.text)
        return " ".join(part for part in parts if part)

    @property
    def dismissal_rate(self) -> float:
        return self.dismissed / self.processed if self.processed else 0.0
