"""Pytesseract-style OCR simulator.

Reproduces the failure modes that made the paper abandon plain OCR
(§3.2): it returns a single undifferentiated text blob (no notion of
sender/timestamp/body), breaks on custom-themed backgrounds, interleaves
side-widgets into the text, and confuses look-alike glyphs — which is
fatal for squatting domains (``paypal.com`` vs ``paypaI.com``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ExtractionError
from .screenshot import ImageKind, Screenshot


@dataclass
class RawOcrResult:
    """Output of a blob-OCR engine: just text and a confidence score."""

    text: str
    confidence: float
    engine: str = "pytesseract-sim"


#: Glyph confusions applied at character level (visually similar pairs).
GLYPH_CONFUSIONS = {
    "l": "I", "I": "l", "0": "O", "O": "0", "1": "l", "5": "S",
    "rn": "m", "vv": "w",
}


def _confuse_glyphs(text: str, rng: random.Random, rate: float) -> str:
    chars: List[str] = []
    i = 0
    while i < len(text):
        pair = text[i:i + 2]
        if pair in ("rn", "vv") and rng.random() < rate:
            chars.append(GLYPH_CONFUSIONS[pair])
            i += 2
            continue
        ch = text[i]
        if ch in GLYPH_CONFUSIONS and rng.random() < rate:
            chars.append(GLYPH_CONFUSIONS[ch])
        else:
            chars.append(ch)
        i += 1
    return "".join(chars)


class PytesseractOcr:
    """Blob OCR with custom-theme blindness and glyph confusion.

    ``confusion_rate`` is the per-glyph substitution probability on plain
    themes; themed screenshots fail outright (raise) with probability
    ``theme_failure_rate`` and degrade heavily otherwise.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        confusion_rate: float = 0.04,
        theme_failure_rate: float = 0.65,
    ):
        self._rng = rng
        self._confusion_rate = confusion_rate
        self._theme_failure_rate = theme_failure_rate
        self.processed = 0
        self.failed = 0

    def image_to_text(self, screenshot: Screenshot) -> RawOcrResult:
        """OCR the screenshot or raise :class:`ExtractionError`.

        Note: unlike the vision extractors, this engine happily "reads"
        e-mail screenshots and posters — it cannot tell what an image *is*
        (the paper's first complaint about OCR).
        """
        self.processed += 1
        if screenshot.kind is ImageKind.UNRELATED_PHOTO or not screenshot.lines:
            self.failed += 1
            raise ExtractionError("no text regions detected")
        rate = self._confusion_rate
        if screenshot.skin.has_custom_background:
            if self._rng.random() < self._theme_failure_rate:
                self.failed += 1
                raise ExtractionError(
                    "binarisation failed on custom background theme"
                )
            rate = min(0.5, rate * 6)  # heavy degradation when it limps on
        # Visual order, widgets included, continuations NOT re-joined.
        pieces = [line.text for line in screenshot.lines]
        noisy = _confuse_glyphs("\n".join(pieces), self._rng, rate)
        confidence = max(0.05, 0.95 - rate * 4)
        return RawOcrResult(text=noisy, confidence=confidence)

    @property
    def failure_rate(self) -> float:
        return self.failed / self.processed if self.processed else 0.0
