"""Timestamp parsing for SMS screenshot headers.

The paper (§3.2) extracts the received-time shown inside the screenshot and
parses it with the ``dateparser`` library because every messaging app
renders timestamps differently. This module is a self-contained substitute
covering the formats our synthetic screenshot renderer produces — which are
modelled on real messaging apps:

* ISO-ish: ``2021-08-03 11:34``
* Numeric day-first and month-first: ``03/08/2021 11:34``, ``8/3/21, 11:34 AM``
* Long form: ``Tue, Aug 3, 11:34 AM`` / ``Tuesday 3 August 2021 11:34``
* Time-only headers: ``11:34`` / ``11:34 AM`` (apps drop the date within the
  current week — these parse to a time with no date, and the paper excludes
  them from the weekday analysis, §3.3.2)
* Relative headers: ``Today 11:34`` / ``Yesterday 11:34`` (resolve against a
  supplied reference date)
* Localised month and weekday names for the major languages in the dataset
  (Spanish, Dutch, French, German, Italian, Portuguese, Indonesian).

The public entry point is :func:`parse_screenshot_timestamp`, which returns
a :class:`ParsedTimestamp` marking which fields were actually present.
"""

from __future__ import annotations

import datetime as dt
import re
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ParseError

_MONTHS_EN = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
    "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
    "november": 11, "december": 12,
}

#: Localised month names mapped onto month numbers. Abbreviations are
#: derived automatically from the first three letters.
_MONTHS_LOCALISED: Dict[str, int] = {}


def _register_months(names: Dict[str, int]) -> None:
    for name, number in names.items():
        _MONTHS_LOCALISED[name] = number
        _MONTHS_LOCALISED[name[:3]] = number
        if len(name) >= 4:
            _MONTHS_LOCALISED[name[:4]] = number


_register_months(_MONTHS_EN)
_register_months({  # Spanish
    "enero": 1, "febrero": 2, "marzo": 3, "abril": 4, "mayo": 5, "junio": 6,
    "julio": 7, "agosto": 8, "septiembre": 9, "octubre": 10,
    "noviembre": 11, "diciembre": 12,
})
_register_months({  # Dutch
    "januari": 1, "februari": 2, "maart": 3, "april": 4, "mei": 5, "juni": 6,
    "juli": 7, "augustus": 8, "september": 9, "oktober": 10,
    "november": 11, "december": 12,
})
_register_months({  # French
    "janvier": 1, "fevrier": 2, "mars": 3, "avril": 4, "mai": 5, "juin": 6,
    "juillet": 7, "aout": 8, "septembre": 9, "octobre": 10,
    "novembre": 11, "decembre": 12,
})
_register_months({  # German
    "januar": 1, "februar": 2, "marz": 3, "april": 4, "mai": 5, "juni": 6,
    "juli": 7, "august": 8, "september": 9, "oktober": 10,
    "november": 11, "dezember": 12,
})
_register_months({  # Italian
    "gennaio": 1, "febbraio": 2, "marzo": 3, "aprile": 4, "maggio": 5,
    "giugno": 6, "luglio": 7, "agosto": 8, "settembre": 9, "ottobre": 10,
    "novembre": 11, "dicembre": 12,
})
_register_months({  # Portuguese
    "janeiro": 1, "fevereiro": 2, "marco": 3, "abril": 4, "maio": 5,
    "junho": 6, "julho": 7, "agosto": 8, "setembro": 9, "outubro": 10,
    "novembro": 11, "dezembro": 12,
})
_register_months({  # Indonesian
    "januari": 1, "februari": 2, "maret": 3, "april": 4, "mei": 5, "juni": 6,
    "juli": 7, "agustus": 8, "september": 9, "oktober": 10,
    "november": 11, "desember": 12,
})

_WEEKDAY_WORDS = {
    # English
    "monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
    "sunday", "mon", "tue", "tues", "wed", "thu", "thur", "thurs", "fri",
    "sat", "sun",
    # Spanish / Dutch / French / German / Italian / Portuguese / Indonesian
    "lunes", "martes", "miercoles", "jueves", "viernes", "sabado", "domingo",
    "maandag", "dinsdag", "woensdag", "donderdag", "vrijdag", "zaterdag",
    "zondag", "lundi", "mardi", "mercredi", "jeudi", "vendredi", "samedi",
    "dimanche", "montag", "dienstag", "mittwoch", "donnerstag", "freitag",
    "samstag", "sonntag", "lunedi", "martedi", "mercoledi", "giovedi",
    "venerdi", "sabato", "domenica", "segunda", "terca", "quarta", "quinta",
    "sexta", "senin", "selasa", "rabu", "kamis", "jumat", "sabtu", "minggu",
}

_RELATIVE_TODAY = {"today", "hoy", "vandaag", "aujourd'hui", "heute", "oggi",
                   "hoje", "hari ini"}
_RELATIVE_YESTERDAY = {"yesterday", "ayer", "gisteren", "hier", "gestern",
                       "ieri", "ontem", "kemarin"}

_TIME_RE = re.compile(
    r"(?P<hour>\d{1,2})[:.](?P<minute>\d{2})(?:[:.](?P<second>\d{2}))?"
    r"\s*(?P<ampm>[AaPp]\.?[Mm]\.?)?"
)
_ISO_DATE_RE = re.compile(r"(?P<year>\d{4})-(?P<month>\d{1,2})-(?P<day>\d{1,2})")
_NUMERIC_DATE_RE = re.compile(
    r"(?P<a>\d{1,2})[/.](?P<b>\d{1,2})[/.](?P<year>\d{2,4})"
)
_TEXT_MONTH_RE = re.compile(
    r"(?:(?P<day1>\d{1,2})\s+(?P<month1>[a-z']+)|(?P<month2>[a-z']+)\s+(?P<day2>\d{1,2}))"
    r"(?:\w{0,2})?,?\s*(?P<year>\d{4})?",
)


@dataclass(frozen=True)
class ParsedTimestamp:
    """Result of parsing a screenshot timestamp header.

    ``has_date`` is False when only a time was shown (the app omitted the
    date because the message arrived in the current week); such records are
    excluded from the weekday analysis exactly as the paper does.
    """

    value: dt.datetime
    has_date: bool
    has_time: bool
    raw: str

    @property
    def weekday_name(self) -> Optional[str]:
        if not self.has_date:
            return None
        return self.value.strftime("%A")


def _strip_accents(text: str) -> str:
    table = str.maketrans("áàâäãéèêëíìîïóòôöõúùûüçñ", "aaaaaeeeeiiiiooooouuuucn")
    return text.translate(table)


def _parse_time(text: str):
    match = _TIME_RE.search(text)
    if not match:
        return None
    hour = int(match.group("hour"))
    minute = int(match.group("minute"))
    second = int(match.group("second") or 0)
    ampm = match.group("ampm")
    if ampm:
        ampm = ampm.replace(".", "").lower()
        if ampm == "pm" and hour < 12:
            hour += 12
        elif ampm == "am" and hour == 12:
            hour = 0
    if hour > 23 or minute > 59 or second > 59:
        return None
    return dt.time(hour, minute, second)


def _parse_date(text: str, reference: Optional[dt.date], day_first: bool):
    iso = _ISO_DATE_RE.search(text)
    if iso:
        try:
            return dt.date(int(iso.group("year")), int(iso.group("month")),
                           int(iso.group("day")))
        except ValueError:
            return None
    numeric = _NUMERIC_DATE_RE.search(text)
    if numeric:
        a, b = int(numeric.group("a")), int(numeric.group("b"))
        year = int(numeric.group("year"))
        if year < 100:
            year += 2000
        if day_first:
            day, month = a, b
        else:
            month, day = a, b
        # Disambiguate impossible combinations regardless of the hint.
        if month > 12 and day <= 12:
            month, day = day, month
        try:
            return dt.date(year, month, day)
        except ValueError:
            return None
    # Relative words resolve against the reference date.
    words = set(_strip_accents(text.lower()).replace(",", " ").split())
    if reference is not None:
        if words & _RELATIVE_TODAY or "hari" in words and "ini" in words:
            return reference
        if words & _RELATIVE_YESTERDAY:
            return reference - dt.timedelta(days=1)
    # Textual month forms: "Aug 3, 2021" / "3 augustus 2021".
    for match in _TEXT_MONTH_RE.finditer(_strip_accents(text.lower())):
        month_word = match.group("month1") or match.group("month2")
        day_word = match.group("day1") or match.group("day2")
        if not month_word or not day_word:
            continue
        month = _MONTHS_LOCALISED.get(month_word) or _MONTHS_LOCALISED.get(
            month_word[:3]
        )
        if month is None:
            continue
        year = int(match.group("year")) if match.group("year") else (
            reference.year if reference else None
        )
        if year is None:
            continue
        try:
            return dt.date(year, month, int(day_word))
        except ValueError:
            continue
    return None


def parse_screenshot_timestamp(
    raw: str,
    *,
    reference: Optional[dt.date] = None,
    day_first: bool = True,
) -> ParsedTimestamp:
    """Parse a messaging-app timestamp header into a :class:`ParsedTimestamp`.

    ``reference`` anchors relative words ("Yesterday") and year-less dates.
    ``day_first`` selects the 03/08 = 3 August convention (most of the
    world) over month-first (US-styled apps).

    Raises :class:`~repro.errors.ParseError` if neither a date nor a time
    can be recovered.
    """
    if not raw or not raw.strip():
        raise ParseError("empty timestamp string")
    text = raw.strip()
    time_part = _parse_time(text)
    date_part = _parse_date(text, reference, day_first)
    if time_part is None and date_part is None:
        raise ParseError(f"unparseable timestamp: {raw!r}")
    if date_part is None:
        anchor = reference or dt.date(1970, 1, 1)
        value = dt.datetime.combine(anchor, time_part)
        return ParsedTimestamp(value=value, has_date=False, has_time=True, raw=raw)
    if time_part is None:
        value = dt.datetime.combine(date_part, dt.time(0, 0))
        return ParsedTimestamp(value=value, has_date=True, has_time=False, raw=raw)
    value = dt.datetime.combine(date_part, time_part)
    return ParsedTimestamp(value=value, has_date=True, has_time=True, raw=raw)


def format_app_timestamp(
    moment: dt.datetime, style: str, *, locale_months: Optional[Dict[int, str]] = None
) -> str:
    """Render ``moment`` the way a given messaging-app style would.

    Styles correspond to the screenshot renderer's app skins:

    * ``iso`` — ``2021-08-03 11:34``
    * ``numeric_dayfirst`` — ``03/08/2021 11:34``
    * ``numeric_monthfirst`` — ``8/3/21, 11:34 AM``
    * ``long`` — ``Tue, Aug 3, 11:34 AM``
    * ``time_only`` — ``11:34``
    * ``relative`` — ``Today 11:34``
    """
    if style == "iso":
        return moment.strftime("%Y-%m-%d %H:%M")
    if style == "numeric_dayfirst":
        return moment.strftime("%d/%m/%Y %H:%M")
    if style == "numeric_monthfirst":
        hour = moment.strftime("%I").lstrip("0") or "12"
        return (
            f"{moment.month}/{moment.day}/{moment.strftime('%y')}, "
            f"{hour}:{moment.strftime('%M %p')}"
        )
    if style == "long":
        month_name = (
            locale_months[moment.month]
            if locale_months
            else moment.strftime("%b")
        )
        hour = moment.strftime("%I").lstrip("0") or "12"
        return (
            f"{moment.strftime('%a')}, {month_name} {moment.day}, "
            f"{hour}:{moment.strftime('%M %p')}"
        )
    if style == "time_only":
        return moment.strftime("%H:%M")
    if style == "relative":
        return f"Today {moment.strftime('%H:%M')}"
    raise ValueError(f"unknown timestamp style: {style!r}")


#: Styles that omit the calendar date (excluded from weekday analysis).
DATELESS_STYLES = frozenset({"time_only"})

#: All renderer-supported styles.
TIMESTAMP_STYLES = (
    "iso",
    "numeric_dayfirst",
    "numeric_monthfirst",
    "long",
    "time_only",
    "relative",
)
