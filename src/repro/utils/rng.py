"""Deterministic randomness helpers.

Every stochastic component in the package draws from an explicitly passed
``random.Random`` instance. This module provides:

* :func:`derive` — fork an independent, reproducible child generator from a
  parent seed and a string label, so subsystems do not perturb each other's
  streams when the order of construction changes.
* :func:`weighted_choice` / :class:`WeightedSampler` — draw from discrete
  distributions given ``{outcome: weight}`` mappings (the calibrated
  marginals from the paper's tables are expressed this way).
* :func:`sample_zipf` — heavy-tailed popularity sampling used for campaign
  sizes and domain reuse.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
from typing import Dict, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def derive(seed: int, label: str) -> random.Random:
    """Return a new ``Random`` seeded from ``(seed, label)``.

    The derivation hashes the pair so that child streams are statistically
    independent and stable across runs and across insertion-order changes.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def weighted_choice(rng: random.Random, weights: Dict[T, float]) -> T:
    """Draw a single outcome from a ``{outcome: weight}`` mapping."""
    if not weights:
        raise ValueError("weighted_choice requires a non-empty mapping")
    outcomes = list(weights.keys())
    return rng.choices(outcomes, weights=[weights[o] for o in outcomes], k=1)[0]


class WeightedSampler:
    """Pre-computed cumulative-weight sampler for repeated draws.

    Building the cumulative table once makes each draw O(log n) instead of
    O(n), which matters when generating hundreds of thousands of messages.
    """

    def __init__(self, weights: Dict[T, float]):
        if not weights:
            raise ValueError("WeightedSampler requires a non-empty mapping")
        self._outcomes: List[T] = []
        cumulative: List[float] = []
        total = 0.0
        for outcome, weight in weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {outcome!r}")
            if weight == 0:
                continue
            total += weight
            self._outcomes.append(outcome)
            cumulative.append(total)
        if not self._outcomes:
            raise ValueError("all weights are zero")
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> T:
        """Draw one outcome."""
        point = rng.random() * self._total
        index = bisect.bisect_right(self._cumulative, point)
        if index >= len(self._outcomes):  # guard against float edge cases
            index = len(self._outcomes) - 1
        return self._outcomes[index]

    def sample_many(self, rng: random.Random, count: int) -> List[T]:
        """Draw ``count`` outcomes."""
        return [self.sample(rng) for _ in range(count)]

    @property
    def outcomes(self) -> Sequence[T]:
        return tuple(self._outcomes)


def sample_zipf(rng: random.Random, n: int, exponent: float = 1.1) -> int:
    """Sample an index in ``[0, n)`` with Zipf-like popularity decay.

    Used to model heavy-tailed reuse: a few campaigns send most messages, a
    few domains host most URLs, etc.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if point <= acc:
            return index
    return n - 1


def shuffled(rng: random.Random, items: Iterable[T]) -> List[T]:
    """Return a new shuffled list, leaving the input untouched."""
    result = list(items)
    rng.shuffle(result)
    return result


def partition_count(
    rng: random.Random, total: int, weights: Dict[T, float]
) -> Dict[T, int]:
    """Split ``total`` into integer counts proportional to ``weights``.

    Largest-remainder apportionment with a small random jitter on ties, so
    the counts always sum exactly to ``total``.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    exact: List[Tuple[T, float]] = [
        (outcome, total * weight / weight_sum) for outcome, weight in weights.items()
    ]
    counts = {outcome: int(value) for outcome, value in exact}
    remainder = total - sum(counts.values())
    # Distribute the remainder by largest fractional part, jittered for ties.
    by_fraction = sorted(
        exact, key=lambda item: (item[1] - int(item[1]), rng.random()), reverse=True
    )
    for outcome, _ in itertools.islice(itertools.cycle(by_fraction), remainder):
        counts[outcome] += 1
    return counts


def stable_hash(text: str, modulus: int = 2**32) -> int:
    """Process-independent string hash (unlike built-in ``hash``)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % modulus
