"""Statistical routines used by the paper's evaluation and analysis.

* :func:`cohens_kappa` — inter-rater reliability between two annotators
  (§3.4, used both for the human IRR and the GPT-4o-vs-human comparison).
* :func:`ks_two_sample` — two-sample Kolmogorov–Smirnov test used in §5.1
  to compare time-of-day sending distributions across weekdays.
* :func:`median` / :func:`summarise` — simple descriptive statistics used
  in several tables (e.g. per-URL TLS certificate counts, §4.5).

Implementations are from scratch (no scipy dependency in the library
itself) and validated against scipy in the test suite where available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple


def cohens_kappa(labels_a: Sequence[Hashable], labels_b: Sequence[Hashable]) -> float:
    """Cohen's kappa for two annotators over the same items.

    Returns 1.0 for perfect agreement, 0.0 for chance-level agreement and
    can be negative for below-chance agreement. Raises ``ValueError`` on
    empty or mismatched inputs.
    """
    if len(labels_a) != len(labels_b):
        raise ValueError("annotation sequences must have equal length")
    n = len(labels_a)
    if n == 0:
        raise ValueError("cannot compute kappa on zero items")
    observed_agreement = sum(1 for a, b in zip(labels_a, labels_b) if a == b) / n
    counts_a: Dict[Hashable, int] = {}
    counts_b: Dict[Hashable, int] = {}
    for a, b in zip(labels_a, labels_b):
        counts_a[a] = counts_a.get(a, 0) + 1
        counts_b[b] = counts_b.get(b, 0) + 1
    expected_agreement = sum(
        (counts_a.get(label, 0) / n) * (counts_b.get(label, 0) / n)
        for label in set(counts_a) | set(counts_b)
    )
    if math.isclose(expected_agreement, 1.0):
        return 1.0
    return (observed_agreement - expected_agreement) / (1.0 - expected_agreement)


def multilabel_kappa(
    sets_a: Sequence[frozenset], sets_b: Sequence[frozenset], universe: Sequence[Hashable]
) -> float:
    """Kappa for multi-label annotations (e.g. lure principles).

    Each item carries a *set* of labels. We binarise per label across the
    whole universe (one presence/absence decision per item per label) and
    compute Cohen's kappa over the pooled binary decisions, which is the
    standard approach for multi-label IRR on small taxonomies.
    """
    if len(sets_a) != len(sets_b):
        raise ValueError("annotation sequences must have equal length")
    decisions_a: List[bool] = []
    decisions_b: List[bool] = []
    for a, b in zip(sets_a, sets_b):
        for label in universe:
            decisions_a.append(label in a)
            decisions_b.append(label in b)
    return cohens_kappa(decisions_a, decisions_b)


def interpret_kappa(kappa: float) -> str:
    """Landis & Koch qualitative bands, as the paper phrases its results."""
    if kappa >= 0.81:
        return "near-perfect"
    if kappa >= 0.61:
        return "substantial"
    if kappa >= 0.41:
        return "moderate"
    if kappa >= 0.21:
        return "fair"
    if kappa > 0.0:
        return "slight"
    return "poor"


@dataclass(frozen=True)
class KsResult:
    """Two-sample KS statistic and asymptotic p-value."""

    statistic: float
    pvalue: float
    n1: int
    n2: int

    @property
    def significant(self) -> bool:
        """Significance at the paper's alpha = 0.05."""
        return self.pvalue < 0.05


def _ks_pvalue(statistic: float, n1: int, n2: int) -> float:
    """Asymptotic Kolmogorov distribution tail probability.

    Uses the standard series Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1}
    exp(-2 k^2 lambda^2) with the Stephens effective-n correction, matching
    scipy's ``mode='asymp'`` behaviour closely for the sample sizes the
    paper works with (hundreds to thousands per weekday).
    """
    if statistic <= 0:
        return 1.0
    en = math.sqrt(n1 * n2 / (n1 + n2))
    lam = (en + 0.12 + 0.11 / en) * statistic
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-10:
            break
    return min(max(total, 0.0), 1.0)


def ks_two_sample(sample1: Sequence[float], sample2: Sequence[float]) -> KsResult:
    """Two-sample Kolmogorov–Smirnov test (asymptotic p-value).

    Used to test whether the time-of-day sending distribution differs
    between pairs of weekdays (§5.1).
    """
    n1, n2 = len(sample1), len(sample2)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")
    xs = sorted(sample1)
    ys = sorted(sample2)
    i = j = 0
    cdf1 = cdf2 = 0.0
    statistic = 0.0
    while i < n1 and j < n2:
        x, y = xs[i], ys[j]
        value = min(x, y)
        while i < n1 and xs[i] == value:
            i += 1
        while j < n2 and ys[j] == value:
            j += 1
        cdf1 = i / n1
        cdf2 = j / n2
        statistic = max(statistic, abs(cdf1 - cdf2))
    return KsResult(statistic=statistic, pvalue=_ks_pvalue(statistic, n1, n2),
                    n1=n1, n2=n2)


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class Summary:
    """Descriptive summary of a numeric sample."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float


def summarise(values: Sequence[float]) -> Summary:
    """Compute count/min/max/mean/median in one pass-ish."""
    if not values:
        raise ValueError("cannot summarise an empty sequence")
    return Summary(
        count=len(values),
        minimum=float(min(values)),
        maximum=float(max(values)),
        mean=sum(values) / len(values),
        median=median(values),
    )


def seconds_of_day(hour: int, minute: int, second: int = 0) -> int:
    """Convert a wall-clock time to seconds since midnight."""
    return hour * 3600 + minute * 60 + second


def format_seconds_of_day(seconds: float) -> str:
    """Format seconds-since-midnight as HH:MM:SS (used for Fig. 2 medians)."""
    seconds = int(round(seconds)) % 86400
    hours, remainder = divmod(seconds, 3600)
    minutes, secs = divmod(remainder, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def pairwise(items: Sequence) -> List[Tuple]:
    """All unordered pairs of a sequence (for pairwise KS tests)."""
    result = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            result.append((items[i], items[j]))
    return result
