"""Plain-text and CSV rendering for analysis tables.

Every analysis builder in :mod:`repro.analysis` returns a :class:`Table`,
which benchmark harnesses print so the output visually matches the paper's
tables (rank, counts, percentages).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_count_pct(count: int, total: int, *, digits: int = 1) -> str:
    """Render ``1,166 (13.3%)`` style cells used throughout the paper."""
    if total <= 0:
        return f"{count:,}"
    return f"{count:,} ({100.0 * count / total:.{digits}f}%)"


def _render_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


@dataclass
class Table:
    """A titled grid of cells with named columns."""

    title: str
    columns: Sequence[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        """Extract one column by name."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned monospace table."""
        rendered = [[_render_cell(c) for c in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in rendered:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (header row + data rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(["" if c is None else c for c in row])
        return buffer.getvalue()

    def to_records(self) -> List[dict]:
        """Render as a list of ``{column: value}`` dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def ranked_table(
    title: str,
    label_column: str,
    count_column: str,
    counts: Iterable,
    *,
    top: Optional[int] = 10,
    total_for_pct: Optional[int] = None,
) -> Table:
    """Build a 'Top N' table from ``(label, count)`` pairs.

    Sorts by count descending (label ascending on ties for determinism) and
    optionally renders counts as ``count (pct%)`` against a total.
    """
    pairs = sorted(counts, key=lambda item: (-item[1], str(item[0])))
    if top is not None:
        pairs = pairs[:top]
    table = Table(title=title, columns=[label_column, count_column])
    for label, count in pairs:
        if total_for_pct:
            table.add_row(str(label), format_count_pct(count, total_for_pct))
        else:
            table.add_row(str(label), count)
    return table
