"""Country registry: dial codes, numbering shapes, and primary languages.

This is the geographic substrate for the synthetic smishing world. The
catalogue covers every country named in the paper's tables (Tables 4, 8,
14 and the Vodafone footprint list) plus enough others to give the long
tail of languages and origin countries the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import NotFound


@dataclass(frozen=True)
class Country:
    """One country and the numbering facts the simulation needs.

    ``mobile_prefixes`` / ``landline_prefixes`` are the leading digits of
    national (significant) numbers; ``national_length`` is the digit count
    of the full national number (prefix included). These are simplified
    but shaped like the real plans.
    """

    iso3: str
    iso2: str
    name: str
    dial_code: str
    languages: Tuple[str, ...]
    mobile_prefixes: Tuple[str, ...]
    landline_prefixes: Tuple[str, ...]
    national_length: int

    @property
    def primary_language(self) -> str:
        return self.languages[0]


_CATALOGUE: List[Country] = [
    Country("IND", "IN", "India", "91", ("en", "hi"), ("9", "8", "7", "6"), ("11", "22", "33", "44"), 10),
    Country("USA", "US", "United States of America", "1", ("en", "es"), ("2", "3", "4", "5", "6", "7", "8", "9"), ("2", "3"), 10),
    Country("GBR", "GB", "United Kingdom", "44", ("en",), ("74", "75", "77", "78", "79"), ("20", "121", "161"), 10),
    Country("NLD", "NL", "Netherlands", "31", ("nl", "en"), ("6",), ("20", "10", "70"), 9),
    Country("ESP", "ES", "Spain", "34", ("es",), ("6", "7"), ("91", "93"), 9),
    Country("AUS", "AU", "Australia", "61", ("en",), ("4",), ("2", "3", "7", "8"), 9),
    Country("FRA", "FR", "France", "33", ("fr",), ("6", "7"), ("1", "2", "3", "4", "5"), 9),
    Country("BEL", "BE", "Belgium", "32", ("nl", "fr"), ("4",), ("2", "3", "9"), 9),
    Country("IDN", "ID", "Indonesia", "62", ("id",), ("81", "82", "85"), ("21", "22"), 10),
    Country("DEU", "DE", "Germany", "49", ("de",), ("15", "16", "17"), ("30", "40", "89"), 10),
    Country("ITA", "IT", "Italy", "39", ("it",), ("3",), ("02", "06"), 10),
    Country("PRT", "PT", "Portugal", "351", ("pt",), ("9",), ("21", "22"), 9),
    Country("IRL", "IE", "Ireland", "353", ("en",), ("8",), ("1", "21"), 9),
    Country("CZE", "CZ", "Czechia", "420", ("cs",), ("6", "7"), ("2",), 9),
    Country("HUN", "HU", "Hungary", "36", ("hu",), ("20", "30", "70"), ("1",), 9),
    Country("ROU", "RO", "Romania", "40", ("ro",), ("7",), ("2", "3"), 9),
    Country("TUR", "TR", "Turkey", "90", ("tr",), ("5",), ("2", "3"), 10),
    Country("UKR", "UA", "Ukraine", "380", ("uk",), ("5", "6", "9"), ("44",), 9),
    Country("ZAF", "ZA", "South Africa", "27", ("en",), ("6", "7", "8"), ("1", "2"), 9),
    Country("GHA", "GH", "Ghana", "233", ("en",), ("2", "5"), ("3",), 9),
    Country("NZL", "NZ", "New Zealand", "64", ("en",), ("2",), ("3", "4", "9"), 9),
    Country("QAT", "QA", "Qatar", "974", ("ar", "en"), ("3", "5", "6", "7"), ("4",), 8),
    Country("COD", "CD", "DR Congo", "243", ("fr",), ("8", "9"), ("1",), 9),
    Country("KEN", "KE", "Kenya", "254", ("en", "sw"), ("7", "1"), ("2",), 9),
    Country("LKA", "LK", "Sri Lanka", "94", ("si", "en"), ("7",), ("11",), 9),
    Country("MWI", "MW", "Malawi", "265", ("en",), ("8", "9"), ("1",), 9),
    Country("NGA", "NG", "Nigeria", "234", ("en",), ("70", "80", "81", "90"), ("1",), 10),
    Country("JPN", "JP", "Japan", "81", ("ja",), ("70", "80", "90"), ("3", "6"), 10),
    Country("BRA", "BR", "Brazil", "55", ("pt",), ("9",), ("11", "21"), 11),
    Country("MEX", "MX", "Mexico", "52", ("es",), ("1", "55"), ("55", "33"), 10),
    Country("ARG", "AR", "Argentina", "54", ("es",), ("9",), ("11",), 10),
    Country("CHL", "CL", "Chile", "56", ("es",), ("9",), ("2",), 9),
    Country("COL", "CO", "Colombia", "57", ("es",), ("3",), ("1",), 10),
    Country("PHL", "PH", "Philippines", "63", ("tl", "en"), ("9",), ("2",), 10),
    Country("MYS", "MY", "Malaysia", "60", ("ms", "en"), ("1",), ("3",), 9),
    Country("SGP", "SG", "Singapore", "65", ("en", "zh"), ("8", "9"), ("6",), 8),
    Country("THA", "TH", "Thailand", "66", ("th",), ("6", "8", "9"), ("2",), 9),
    Country("VNM", "VN", "Vietnam", "84", ("vi",), ("3", "7", "9"), ("24", "28"), 9),
    Country("KOR", "KR", "South Korea", "82", ("ko",), ("10",), ("2",), 10),
    Country("CHN", "CN", "China", "86", ("zh",), ("13", "15", "18"), ("10", "21"), 11),
    Country("HKG", "HK", "Hong Kong", "852", ("zh", "en"), ("5", "6", "9"), ("2", "3"), 8),
    Country("PAK", "PK", "Pakistan", "92", ("ur", "en"), ("3",), ("21", "42"), 10),
    Country("BGD", "BD", "Bangladesh", "880", ("bn",), ("1",), ("2",), 10),
    Country("RUS", "RU", "Russia", "7", ("ru",), ("9",), ("495",), 10),
    Country("POL", "PL", "Poland", "48", ("pl",), ("5", "6", "7", "8"), ("22",), 9),
    Country("SWE", "SE", "Sweden", "46", ("sv",), ("7",), ("8",), 9),
    Country("NOR", "NO", "Norway", "47", ("no",), ("4", "9"), ("2",), 8),
    Country("DNK", "DK", "Denmark", "45", ("da",), ("2", "3", "4", "5"), ("3",), 8),
    Country("FIN", "FI", "Finland", "358", ("fi",), ("4", "5"), ("9",), 9),
    Country("GRC", "GR", "Greece", "30", ("el",), ("69",), ("21",), 10),
    Country("AUT", "AT", "Austria", "43", ("de",), ("6",), ("1",), 10),
    Country("CHE", "CH", "Switzerland", "41", ("de", "fr", "it"), ("7",), ("44", "22"), 9),
    Country("ARE", "AE", "United Arab Emirates", "971", ("ar", "en"), ("5",), ("4",), 9),
    Country("SAU", "SA", "Saudi Arabia", "966", ("ar",), ("5",), ("11",), 9),
    Country("EGY", "EG", "Egypt", "20", ("ar",), ("10", "11", "12"), ("2",), 10),
    Country("MAR", "MA", "Morocco", "212", ("ar", "fr"), ("6", "7"), ("5",), 9),
    Country("ISR", "IL", "Israel", "972", ("he", "en"), ("5",), ("2", "3"), 9),
    Country("GLP", "GP", "Guadeloupe", "590", ("fr",), ("690",), ("590",), 9),
    Country("CAN", "CA", "Canada", "1", ("en", "fr"), ("2", "3", "4", "5", "6", "7", "8", "9"), ("4", "5"), 10),
]


class CountryRegistry:
    """Lookup by ISO3/ISO2 code plus dial-code prefix matching."""

    def __init__(self, catalogue: Optional[List[Country]] = None):
        self._by_iso3: Dict[str, Country] = {}
        self._by_iso2: Dict[str, Country] = {}
        self._dial_index: List[Tuple[str, Country]] = []
        for country in catalogue if catalogue is not None else _CATALOGUE:
            self.add(country)

    def add(self, country: Country) -> None:
        self._by_iso3[country.iso3] = country
        self._by_iso2[country.iso2] = country
        self._dial_index.append((country.dial_code, country))
        # Longest dial codes first so +971 wins over +9.
        self._dial_index.sort(key=lambda item: -len(item[0]))

    def __len__(self) -> int:
        return len(self._by_iso3)

    def __iter__(self):
        return iter(self._by_iso3.values())

    def __contains__(self, code: str) -> bool:
        return code.upper() in self._by_iso3 or code.upper() in self._by_iso2

    def get(self, code: str) -> Country:
        """Lookup by ISO3 (preferred) or ISO2 code."""
        key = code.upper()
        if key in self._by_iso3:
            return self._by_iso3[key]
        if key in self._by_iso2:
            return self._by_iso2[key]
        raise NotFound(f"unknown country code: {code!r}", service="geography")

    def by_dial_code(self, digits: str) -> Country:
        """Resolve an international number's leading digits to a country.

        NANP numbers (dial code 1) resolve to the USA — the registry lists
        the USA before Canada; this matches HLR behaviour of reporting the
        plan country.
        """
        text = digits.lstrip("+")
        for dial, country in self._dial_index:
            if text.startswith(dial):
                return country
        raise NotFound(f"no dial plan matches: {digits!r}", service="geography")

    def all_iso3(self) -> List[str]:
        return sorted(self._by_iso3)


_DEFAULT: Optional[CountryRegistry] = None


def default_countries() -> CountryRegistry:
    """Shared country registry instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = CountryRegistry()
    return _DEFAULT
