"""Smishing message template library.

Each :class:`Template` couples a parameterised SMS text with its ground
truth: scam type, language, the lure principles its wording applies
(Stajano–Wilson, Table 13), whether it carries a URL, and an English gloss
used as translation ground truth for non-English texts.

Coverage: rich hand-written templates for the languages that dominate
Table 11 (en, es, nl, fr, de, it, id, pt, ja, hi) and a composed fallback
for the long tail of languages, built from each language's marker lexicon
so that language identification remains a genuine text-classification
problem rather than a label pass-through.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..types import LurePrinciple, ScamType
from .languages import LanguageRegistry, default_languages

_L = LurePrinciple


def _lures(*principles: LurePrinciple) -> FrozenSet[LurePrinciple]:
    return frozenset(principles)


@dataclass(frozen=True)
class Template:
    """One message skeleton.

    ``text`` contains ``{placeholders}``: ``brand``, ``url``, ``name``,
    ``amount``, ``currency``, ``code``, ``tracking``, ``phone``. Only the
    placeholders present are filled; ``needs_url`` declares whether the
    rendered message carries a link (conversation scams do not, §5.5).
    """

    scam_type: ScamType
    language: str
    text: str
    lures: FrozenSet[LurePrinciple]
    needs_url: bool = True
    english_gloss: str = ""

    def render(self, slots: Dict[str, str]) -> str:
        try:
            return self.text.format(**slots)
        except KeyError as exc:
            raise ConfigurationError(
                f"template missing slot value: {exc}"
            ) from None


# ---------------------------------------------------------------------------
# English templates (the bulk of the dataset, §5.3).
# ---------------------------------------------------------------------------

_EN: List[Template] = [
    # Banking
    Template(ScamType.BANKING, "en",
             "{brand} alert: Your account has been temporarily locked due to unusual activity. Please verify your details immediately at {url} to avoid suspension.",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.BANKING, "en",
             "Dear customer, your {brand} net banking will be suspended today. Update your KYC now: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.BANKING, "en",
             "{brand}: A payment of {currency}{amount} was attempted from a new device. If this was NOT you, cancel it here: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY, _L.DISTRACTION)),
    Template(ScamType.BANKING, "en",
             "Your {brand} rewards points worth {currency}{amount} expire today! Redeem now at {url}",
             _lures(_L.NEED_AND_GREED, _L.TIME_URGENCY)),
    Template(ScamType.BANKING, "en",
             "{brand} security team: we detected a login from a new location. Confirm your identity within 24 hours: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.BANKING, "en",
             "ALERT: Your {brand} debit card has been blocked. To reactivate visit {url} or your account will be closed.",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    # Delivery
    Template(ScamType.DELIVERY, "en",
             "{brand}: Your parcel {tracking} could not be delivered due to an incomplete address. Reschedule within 12 hours: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.DELIVERY, "en",
             "{brand}: A {currency}{amount} customs fee is due on your package {tracking}. Pay now to release it: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.DELIVERY, "en",
             "Your {brand} delivery is on hold. Track and confirm here: {url}",
             _lures(_L.AUTHORITY)),
    # Government
    Template(ScamType.GOVERNMENT, "en",
             "{brand}: You are eligible for a tax refund of {currency}{amount}. Claim before the deadline: {url}",
             _lures(_L.AUTHORITY, _L.NEED_AND_GREED, _L.TIME_URGENCY)),
    Template(ScamType.GOVERNMENT, "en",
             "{brand} FINAL NOTICE: unpaid road toll of {currency}{amount}. Settle today to avoid a penalty: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.GOVERNMENT, "en",
             "{brand}: your benefit payment was suspended pending verification. Restore access at {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    # Telecom
    Template(ScamType.TELECOM, "en",
             "{brand}: your last bill payment failed. Update your payment details to keep your line active: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.TELECOM, "en",
             "{brand}: thanks for being with us! You've earned a loyalty gift. Choose yours: {url}",
             _lures(_L.AUTHORITY, _L.NEED_AND_GREED)),
    Template(ScamType.TELECOM, "en",
             "{brand} notice: your SIM will be deactivated within 24 hrs. Re-register here: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    # Hey mum/dad (conversation; no URL, §5.5)
    Template(ScamType.HEY_MUM_DAD, "en",
             "Hi mum, I dropped my phone down the toilet :( this is my new number. Can you text me back on WhatsApp asap? It's urgent x",
             _lures(_L.KINDNESS, _L.DISTRACTION, _L.TIME_URGENCY), needs_url=False),
    Template(ScamType.HEY_MUM_DAD, "en",
             "Hey dad it's me, my phone broke so I'm using a friend's. I need to pay a bill today and can't log in to my bank. Can you help? Message me here.",
             _lures(_L.KINDNESS, _L.DISTRACTION, _L.TIME_URGENCY), needs_url=False),
    # Wrong number (conversation)
    Template(ScamType.WRONG_NUMBER, "en",
             "Hi Anna, are we still on for dinner at 7? It's been ages!",
             _lures(_L.DISTRACTION, _L.KINDNESS), needs_url=False),
    Template(ScamType.WRONG_NUMBER, "en",
             "Hello, is this Dr. Lee's office? I'd like to reschedule my appointment for Thursday.",
             _lures(_L.DISTRACTION), needs_url=False),
    Template(ScamType.WRONG_NUMBER, "en",
             "Hey, it was lovely meeting you at the conference last week! Is this still your number?",
             _lures(_L.DISTRACTION, _L.KINDNESS), needs_url=False),
    # Others — crypto / jobs / tech impersonation / OTP call-back
    Template(ScamType.OTHERS, "en",
             "{brand}: your account will be permanently deleted due to inactivity. Keep your account: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.OTHERS, "en",
             "Your {brand} subscription payment was declined. Update billing within 48h to keep watching: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY)),
    Template(ScamType.OTHERS, "en",
             "We reviewed your CV — earn {currency}{amount}/day working from home, flexible hours. Join thousands already earning: {url}",
             _lures(_L.NEED_AND_GREED, _L.HERD)),
    Template(ScamType.OTHERS, "en",
             "{brand}: your verification code is {code}. If you did not request this, secure your account: {url}",
             _lures(_L.AUTHORITY, _L.DISTRACTION)),
    Template(ScamType.OTHERS, "en",
             "Exclusive pre-sale: our investors doubled their crypto in 30 days. Guaranteed returns, limited slots: {url}",
             _lures(_L.NEED_AND_GREED, _L.HERD, _L.TIME_URGENCY)),
    Template(ScamType.OTHERS, "en",
             "Get instant cash now! No credit check, everyone approved. Some conditions may not be strictly legal ;) {url}",
             _lures(_L.DISHONESTY, _L.NEED_AND_GREED)),
    # Spam (annoying, not fraudulent)
    Template(ScamType.SPAM, "en",
             "MEGA CASINO: 150 free spins waiting for you! 18+ T&Cs apply. Join the winners today: {url}",
             _lures(_L.HERD, _L.NEED_AND_GREED)),
    Template(ScamType.SPAM, "en",
             "FLASH SALE! Up to 80% off designer sunglasses this weekend only: {url}",
             _lures(_L.NEED_AND_GREED, _L.TIME_URGENCY)),
    Template(ScamType.SPAM, "en",
             "You have been selected for our monthly prize draw! Reply WIN to enter. Msg rates apply.",
             _lures(_L.NEED_AND_GREED, _L.HERD), needs_url=False),
]

# ---------------------------------------------------------------------------
# Other major languages. Glosses give the translation ground truth.
# ---------------------------------------------------------------------------

_ES: List[Template] = [
    Template(ScamType.BANKING, "es",
             "{brand}: su cuenta ha sido bloqueada por actividad sospechosa. Por favor verifique sus datos en {url} para evitar la suspension.",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been blocked due to suspicious activity. Please verify your details at {url} to avoid suspension."),
    Template(ScamType.BANKING, "es",
             "{brand} aviso: un cargo de {currency}{amount} fue detectado. Si no fue usted, cancele aqui: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY, _L.DISTRACTION),
             english_gloss="{brand} notice: a charge of {currency}{amount} was detected. If it was not you, cancel here: {url}"),
    Template(ScamType.DELIVERY, "es",
             "{brand}: su paquete {tracking} esta retenido por una tasa de aduana de {currency}{amount}. Pague ahora: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} is held for a customs fee of {currency}{amount}. Pay now: {url}"),
    Template(ScamType.GOVERNMENT, "es",
             "{brand}: usted tiene derecho a una devolucion de {currency}{amount}. Solicite antes de la fecha limite: {url}",
             _lures(_L.AUTHORITY, _L.NEED_AND_GREED, _L.TIME_URGENCY),
             english_gloss="{brand}: you are entitled to a refund of {currency}{amount}. Claim before the deadline: {url}"),
    Template(ScamType.TELECOM, "es",
             "{brand}: el pago de su factura ha fallado. Actualice sus datos para mantener su linea activa: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your bill payment failed. Update your details to keep your line active: {url}"),
    Template(ScamType.HEY_MUM_DAD, "es",
             "Hola mama, se me rompio el telefono y este es mi numero nuevo. Escribeme por favor, es urgente.",
             _lures(_L.KINDNESS, _L.DISTRACTION, _L.TIME_URGENCY), needs_url=False,
             english_gloss="Hi mum, my phone broke and this is my new number. Please text me, it's urgent."),
    Template(ScamType.WRONG_NUMBER, "es",
             "Hola Maria, ¿seguimos quedando manana para el cafe?",
             _lures(_L.DISTRACTION, _L.KINDNESS), needs_url=False,
             english_gloss="Hi Maria, are we still meeting tomorrow for coffee?"),
    Template(ScamType.OTHERS, "es",
             "{brand}: su suscripcion sera cancelada hoy. Actualice su pago: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your subscription will be cancelled today. Update your payment: {url}"),
    Template(ScamType.SPAM, "es",
             "CASINO: ¡150 giros gratis para una cuenta nueva! Unase a los ganadores hoy: {url}",
             _lures(_L.HERD, _L.NEED_AND_GREED),
             english_gloss="CASINO: 150 free spins for a new account! Join the winners today: {url}"),
]

_NL: List[Template] = [
    Template(ScamType.BANKING, "nl",
             "{brand}: uw rekening is tijdelijk geblokkeerd wegens verdachte activiteit. Klik om uw gegevens te verifieren: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account is temporarily blocked due to suspicious activity. Click to verify your details: {url}"),
    Template(ScamType.BANKING, "nl",
             "{brand}: uw bankpas verloopt vandaag. Vraag direct een nieuwe pas aan om te blijven betalen: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your bank card expires today. Request a new card immediately to keep paying: {url}"),
    Template(ScamType.DELIVERY, "nl",
             "{brand}: uw pakket {tracking} kon niet worden bezorgd. Plan een nieuwe bezorging binnen 12 uur: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} could not be delivered. Schedule a new delivery within 12 hours: {url}"),
    Template(ScamType.GOVERNMENT, "nl",
             "{brand}: u heeft nog een openstaande schuld van {currency}{amount}. Betaal vandaag om beslaglegging te voorkomen: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: you have an outstanding debt of {currency}{amount}. Pay today to avoid seizure: {url}"),
    Template(ScamType.TELECOM, "nl",
             "{brand}: het is niet gelukt uw factuur te incasseren. Werk uw gegevens bij om uw nummer actief te houden: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: we could not collect your bill. Update your details to keep your number active: {url}"),
    Template(ScamType.HEY_MUM_DAD, "nl",
             "Hoi mam, mijn telefoon is kapot en dit is mijn nieuwe nummer. Kun je me zo snel mogelijk een berichtje sturen? Het is dringend.",
             _lures(_L.KINDNESS, _L.DISTRACTION, _L.TIME_URGENCY), needs_url=False,
             english_gloss="Hi mum, my phone is broken and this is my new number. Can you message me as soon as possible? It's urgent."),
    Template(ScamType.OTHERS, "nl",
             "{brand}: uw account wordt het verwijderd wegens inactiviteit. Behoud uw account: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account will be deleted due to inactivity. Keep your account: {url}"),
]

_FR: List[Template] = [
    Template(ScamType.BANKING, "fr",
             "{brand}: votre compte a été suspendu suite à une activité inhabituelle. Veuillez vérifier vos informations: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been suspended following unusual activity. Please verify your information: {url}"),
    Template(ScamType.DELIVERY, "fr",
             "{brand}: votre colis {tracking} est en attente. Des frais de {currency}{amount} sont requis: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} is pending. Fees of {currency}{amount} are required: {url}"),
    Template(ScamType.GOVERNMENT, "fr",
             "{brand}: vous avez un remboursement de {currency}{amount} en attente. Réclamez-le avant la date limite: {url}",
             _lures(_L.AUTHORITY, _L.NEED_AND_GREED, _L.TIME_URGENCY),
             english_gloss="{brand}: you have a refund of {currency}{amount} pending. Claim it before the deadline: {url}"),
    Template(ScamType.GOVERNMENT, "fr",
             "{brand}: votre vignette Crit'Air doit être mise à jour. Commandez-la aujourd'hui: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your Crit'Air sticker must be updated. Order it today: {url}"),
    Template(ScamType.TELECOM, "fr",
             "{brand}: le paiement de votre facture a échoué. Mettez à jour vos coordonnées pour garder votre ligne: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your bill payment failed. Update your details to keep your line: {url}"),
    Template(ScamType.HEY_MUM_DAD, "fr",
             "Coucou maman, j'ai cassé mon téléphone, voici mon nouveau numéro. Écris-moi vite, c'est urgent.",
             _lures(_L.KINDNESS, _L.DISTRACTION, _L.TIME_URGENCY), needs_url=False,
             english_gloss="Hi mum, I broke my phone, here is my new number. Write to me quickly, it's urgent."),
    Template(ScamType.OTHERS, "fr",
             "{brand}: votre abonnement sera résilié aujourd'hui. Mettez à jour votre paiement: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your subscription will be cancelled today. Update your payment: {url}"),
]

_DE: List[Template] = [
    Template(ScamType.BANKING, "de",
             "{brand}: Ihr Konto wurde wegen verdächtiger Aktivitäten gesperrt. Bitte bestätigen Sie Ihre Daten: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account was locked due to suspicious activity. Please confirm your details: {url}"),
    Template(ScamType.DELIVERY, "de",
             "{brand}: Ihr Paket {tracking} konnte nicht zugestellt werden. Bitte bestätigen Sie Ihre Adresse: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} could not be delivered. Please confirm your address: {url}"),
    Template(ScamType.GOVERNMENT, "de",
             "{brand}: Ihnen steht eine Steuererstattung von {currency}{amount} zu. Jetzt beantragen: {url}",
             _lures(_L.AUTHORITY, _L.NEED_AND_GREED),
             english_gloss="{brand}: you are entitled to a tax refund of {currency}{amount}. Apply now: {url}"),
    Template(ScamType.TELECOM, "de",
             "{brand}: Ihre letzte Rechnung konnte nicht abgebucht werden. Aktualisieren Sie Ihre Zahlungsdaten: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your last bill could not be debited. Update your payment details: {url}"),
    Template(ScamType.HEY_MUM_DAD, "de",
             "Hallo Mama, mein Handy ist kaputt und das ist meine neue Nummer. Schreib mir bitte schnell, es ist dringend.",
             _lures(_L.KINDNESS, _L.DISTRACTION, _L.TIME_URGENCY), needs_url=False,
             english_gloss="Hi mum, my phone is broken and this is my new number. Please write to me quickly, it's urgent."),
]

_IT: List[Template] = [
    Template(ScamType.BANKING, "it",
             "{brand}: il tuo conto è stato bloccato per attività sospetta. Gentile cliente, verifica i tuoi dati: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been blocked for suspicious activity. Dear customer, verify your details: {url}"),
    Template(ScamType.DELIVERY, "it",
             "{brand}: il tuo pacco {tracking} è in giacenza. Paga {currency}{amount} per lo svincolo: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} is in storage. Pay {currency}{amount} to release it: {url}"),
    Template(ScamType.TELECOM, "it",
             "{brand}: il pagamento della tua fattura non è andato a buon fine. Aggiorna i dati per mantenere la linea: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your bill payment failed. Update your details to keep your line: {url}"),
]

_ID: List[Template] = [
    Template(ScamType.BANKING, "id",
             "{brand}: akun anda telah diblokir karena aktivitas mencurigakan. Silakan verifikasi data anda di {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been blocked due to suspicious activity. Please verify your details at {url}"),
    Template(ScamType.OTHERS, "id",
             "Selamat! Anda terpilih untuk pekerjaan paruh waktu dengan gaji {currency}{amount} per hari. Ribuan orang sudah bergabung dengan kami: {url}",
             _lures(_L.NEED_AND_GREED, _L.HERD),
             english_gloss="Congratulations! You were selected for a part-time job paying {currency}{amount} per day. Thousands have already joined us: {url}"),
    Template(ScamType.WRONG_NUMBER, "id",
             "Halo kak, apakah ini nomor Pak Budi? Saya mau konfirmasi pesanan untuk besok.",
             _lures(_L.DISTRACTION), needs_url=False,
             english_gloss="Hello, is this Mr. Budi's number? I want to confirm the order for tomorrow."),
    Template(ScamType.SPAM, "id",
             "PROMO! Diskon 80% untuk semua produk akhir pekan ini saja: {url}",
             _lures(_L.NEED_AND_GREED, _L.TIME_URGENCY),
             english_gloss="PROMO! 80% off all products this weekend only: {url}"),
]

_PT: List[Template] = [
    Template(ScamType.BANKING, "pt",
             "{brand}: sua conta foi bloqueada por atividade suspeita. Por favor, clique para verificar seus dados: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account was blocked for suspicious activity. Please click to verify your details: {url}"),
    Template(ScamType.DELIVERY, "pt",
             "{brand}: sua encomenda {tracking} está retida. Pague a taxa de {currency}{amount} para liberar: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} is held. Pay the fee of {currency}{amount} to release it: {url}"),
]

_JA: List[Template] = [
    Template(ScamType.BANKING, "ja",
             "{brand}お客様、アカウントに異常なログインが検出されました。こちらで確認してください: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand} customer, an unusual login was detected on your account. Please confirm here: {url}"),
    Template(ScamType.DELIVERY, "ja",
             "{brand}です。お荷物のお届けにあがりましたが不在のため持ち帰りました。ご確認ください: {url}",
             _lures(_L.AUTHORITY),
             english_gloss="This is {brand}. We attempted to deliver your package but you were absent. Please confirm: {url}"),
    Template(ScamType.WRONG_NUMBER, "ja",
             "こんにちは、田中さんですか？先週の件でご連絡しました。",
             _lures(_L.DISTRACTION), needs_url=False,
             english_gloss="Hello, is this Mr. Tanaka? I am contacting you about last week's matter."),
]

_HI: List[Template] = [
    Template(ScamType.BANKING, "hi",
             "{brand}: आपका खाता निलंबित कर दिया गया है। कृपया तुरंत अपना KYC अपडेट करें: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been suspended. Please update your KYC immediately: {url}"),
    Template(ScamType.BANKING, "hi",
             "{brand} के ग्राहक, आपके खाते में {currency}{amount} का इनाम है। अभी प्राप्त करें: {url}",
             _lures(_L.NEED_AND_GREED, _L.TIME_URGENCY),
             english_gloss="{brand} customer, you have a reward of {currency}{amount} in your account. Claim now: {url}"),
]

_PL: List[Template] = [
    Template(ScamType.BANKING, "pl",
             "{brand}: twoje konto zostało zablokowane. Proszę kliknij aby zweryfikować dane: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been blocked. Please click to verify your details: {url}"),
    Template(ScamType.DELIVERY, "pl",
             "{brand}: twoje paczka {tracking} czeka. Proszę kliknij i dopłać {amount}: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} is waiting. Please click and pay {amount}: {url}"),
]

_TR: List[Template] = [
    Template(ScamType.BANKING, "tr",
             "{brand}: hesabınız askıya alındı. Lütfen bilgilerinizi doğrulamak için tıklayın: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been suspended. Please click to verify your details: {url}"),
    Template(ScamType.TELECOM, "tr",
             "{brand}: faturanız ödenmedi. Hattınız için lütfen tıklayın: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your bill is unpaid. Please click for your line: {url}"),
]

_RO: List[Template] = [
    Template(ScamType.BANKING, "ro",
             "{brand}: contul dumneavoastră a fost blocat. Vă rugăm să confirmați datele pentru banca: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been blocked. Please confirm your details for the bank: {url}"),
    Template(ScamType.DELIVERY, "ro",
             "{brand}: coletul {tracking} este reținut. Vă rugăm să plătiți taxa pentru livrare: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: parcel {tracking} is held. Please pay the delivery fee: {url}"),
]

_CS: List[Template] = [
    Template(ScamType.BANKING, "cs",
             "{brand}: váš účet byl zablokován. Prosím klikněte a ověřte údaje pro banka: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been blocked. Please click and verify your details for the bank: {url}"),
    Template(ScamType.DELIVERY, "cs",
             "{brand}: váš balík {tracking} čeká. Prosím klikněte a zaplaťte poplatek: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} is waiting. Please click and pay the fee: {url}"),
]

_RU: List[Template] = [
    Template(ScamType.BANKING, "ru",
             "{brand}: ваш счет заблокирован. Пожалуйста, подтвердите данные для банк: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account is blocked. Please confirm your details for the bank: {url}"),
    Template(ScamType.OTHERS, "ru",
             "{brand}: ваш аккаунт будет удален. Пожалуйста, войдите для сохранения: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account will be deleted. Please log in to keep it: {url}"),
]

_SV: List[Template] = [
    Template(ScamType.BANKING, "sv",
             "{brand}: ditt konto har spärrats. Vänligen klicka för att verifiera hos banken: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your account has been blocked. Please click to verify with the bank: {url}"),
    Template(ScamType.DELIVERY, "sv",
             "{brand}: ditt paket {tracking} väntar. Vänligen klicka och betala avgiften: {url}",
             _lures(_L.AUTHORITY, _L.TIME_URGENCY),
             english_gloss="{brand}: your parcel {tracking} is waiting. Please click and pay the fee: {url}"),
]

_HAND_WRITTEN: Dict[str, List[Template]] = {
    "en": _EN, "es": _ES, "nl": _NL, "fr": _FR, "de": _DE, "it": _IT,
    "id": _ID, "pt": _PT, "ja": _JA, "hi": _HI, "pl": _PL, "tr": _TR,
    "ro": _RO, "cs": _CS, "ru": _RU, "sv": _SV,
}

#: Fallback skeletons for the language long tail, composed from each
#: language's marker lexicon: ``{m0}``.. are marker words, giving texts a
#: genuinely detectable language signal.
_FALLBACK_SHAPES: List[Tuple[ScamType, str, FrozenSet[LurePrinciple], bool]] = [
    (ScamType.BANKING, "{brand} {m0} {m1} {m2} {m3}: {url}", _lures(_L.AUTHORITY, _L.TIME_URGENCY), True),
    (ScamType.DELIVERY, "{brand} {m1} {m0} {tracking} {m2}: {url}", _lures(_L.AUTHORITY, _L.TIME_URGENCY), True),
    (ScamType.GOVERNMENT, "{brand} {m2} {m0} {amount} {m3}: {url}", _lures(_L.AUTHORITY, _L.NEED_AND_GREED), True),
    (ScamType.TELECOM, "{brand} {m0} {m3} {m1}: {url}", _lures(_L.AUTHORITY, _L.TIME_URGENCY), True),
    (ScamType.OTHERS, "{brand} {m1} {m2} {m0}: {url}", _lures(_L.AUTHORITY, _L.TIME_URGENCY), True),
    (ScamType.WRONG_NUMBER, "{m0} {m1} {m2}?", _lures(_L.DISTRACTION), False),
    (ScamType.SPAM, "{m3} {m2} {m0}! {url}", _lures(_L.NEED_AND_GREED), True),
]


class TemplateLibrary:
    """Indexed access to all templates, with long-tail fallbacks."""

    def __init__(self, languages: Optional[LanguageRegistry] = None):
        self._languages = languages or default_languages()
        self._index: Dict[Tuple[ScamType, str], List[Template]] = {}
        for language, templates in _HAND_WRITTEN.items():
            for template in templates:
                self._index.setdefault(
                    (template.scam_type, language), []
                ).append(template)
        self._build_fallbacks()

    def _build_fallbacks(self) -> None:
        for language in self._languages:
            for scam_type, shape, lures, needs_url in _FALLBACK_SHAPES:
                key = (scam_type, language.code)
                if key in self._index:
                    continue
                markers = list(language.markers)
                while len(markers) < 4:
                    markers.append(markers[-1])
                text = shape.format(
                    m0=markers[0], m1=markers[1], m2=markers[2], m3=markers[3],
                    brand="{brand}", url="{url}", tracking="{tracking}",
                    amount="{amount}",
                )
                gloss = {
                    ScamType.BANKING: "{brand}: your account has been blocked. Verify at {url}",
                    ScamType.DELIVERY: "{brand}: your parcel {tracking} is held. Confirm: {url}",
                    ScamType.GOVERNMENT: "{brand}: a refund of {amount} awaits you: {url}",
                    ScamType.TELECOM: "{brand}: your bill payment failed: {url}",
                    ScamType.OTHERS: "{brand}: action required on your account: {url}",
                    ScamType.WRONG_NUMBER: "Hello, is this the right number?",
                    ScamType.SPAM: "Big promotion! {url}",
                }[scam_type]
                self._index.setdefault(key, []).append(
                    Template(scam_type, language.code, text, lures,
                             needs_url=needs_url, english_gloss=gloss)
                )

    def languages_for(self, scam_type: ScamType) -> List[str]:
        return sorted({lang for st, lang in self._index if st is scam_type})

    def templates(self, scam_type: ScamType, language: str) -> List[Template]:
        """All templates for a (scam type, language) pair.

        Falls back to English when the pair has no coverage at all (e.g.
        Hey mum/dad in a tail language — the paper finds these scams only
        in a handful of Western languages, §5.3).
        """
        key = (scam_type, language)
        if key in self._index:
            return list(self._index[key])
        return list(self._index.get((scam_type, "en"), []))

    def pick(
        self, scam_type: ScamType, language: str, rng: random.Random
    ) -> Template:
        """Pick one template uniformly for the pair."""
        options = self.templates(scam_type, language)
        if not options:
            raise ConfigurationError(
                f"no templates for {scam_type}/{language}"
            )
        return rng.choice(options)

    def all_templates(self) -> List[Template]:
        result: List[Template] = []
        for templates in self._index.values():
            result.extend(templates)
        return result


_DEFAULT: Optional[TemplateLibrary] = None


def default_templates() -> TemplateLibrary:
    """Shared template library instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TemplateLibrary()
    return _DEFAULT
