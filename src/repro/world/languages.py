"""Language registry: codes, names, speaker populations, and marker words.

Serves two purposes:

* The right-hand side of Table 11 (most-spoken languages worldwide, with
  speaker populations and country counts) against which the paper
  contrasts the observed message-language skew.
* Function-word banks per language that both the template library (to
  write messages) and the language-identification component of the NLP
  annotator (to detect them) share. The banks contain genuinely
  language-distinctive high-frequency words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import NotFound


@dataclass(frozen=True)
class Language:
    """One language with ISO 639-1 code and detection lexicon."""

    code: str
    name: str
    #: First-language+second-language speakers, millions (Ethnologue-ish).
    speakers_millions: int
    #: Number of countries where it is official/major (Table 11).
    country_count: int
    #: Distinctive high-frequency words used for detection and templates.
    markers: Tuple[str, ...]
    #: Uses a non-Latin script (detection can shortcut on codepoints).
    script: str = "latin"


_CATALOGUE: List[Language] = [
    Language("en", "English", 1500, 46, ("the", "your", "has", "been", "please", "click", "account", "to", "is", "we")),
    Language("zh", "Mandarin Chinese", 1200, 2, ("的", "您", "请", "账户", "点击", "银行", "我们"), script="han"),
    Language("hi", "Hindi", 609, 2, ("आपका", "कृपया", "खाता", "बैंक", "के", "लिए", "है", "आपके", "में", "अभी", "करें"), script="devanagari"),
    Language("es", "Spanish", 558, 21, ("su", "cuenta", "ha", "sido", "por", "favor", "haga", "clic", "el", "una", "usted", "aviso", "hola", "aqui", "fue", "derecho", "solicite")),
    Language("ar", "Arabic", 335, 24, ("حسابك", "يرجى", "البنك", "تم", "إلى", "من"), script="arabic"),
    Language("fr", "French", 312, 29, ("votre", "compte", "été", "veuillez", "cliquez", "vous", "une", "pour", "colis", "avant", "remboursement", "aujourd'hui", "maman", "voici", "doit", "vos")),
    Language("bn", "Bengali", 284, 2, ("আপনার", "অ্যাকাউন্ট", "ব্যাংক", "করুন"), script="bengali"),
    Language("pt", "Portuguese", 267, 9, ("sua", "conta", "foi", "por", "favor", "clique", "você", "para", "uma", "banco")),
    Language("ru", "Russian", 253, 4, ("ваш", "счет", "пожалуйста", "банк", "был", "для"), script="cyrillic"),
    Language("id", "Indonesian", 252, 2, ("anda", "akun", "telah", "silakan", "klik", "untuk", "kami", "ini", "dengan")),
    Language("de", "German", 134, 6, ("ihr", "konto", "wurde", "bitte", "klicken", "sie", "die", "und", "eine", "für", "ihre", "ihnen", "jetzt", "rechnung", "hallo", "meine", "nummer")),
    Language("ja", "Japanese", 125, 1, ("お客様", "アカウント", "ください", "銀行", "です", "ます"), script="kana"),
    Language("nl", "Dutch", 25, 3, ("uw", "rekening", "is", "geblokkeerd", "klik", "om", "een", "wij", "het", "voor")),
    Language("it", "Italian", 68, 2, ("il", "tuo", "conto", "stato", "clicca", "per", "una", "gentile", "cliente", "banca")),
    Language("tr", "Turkish", 90, 1, ("hesabınız", "lütfen", "tıklayın", "banka", "için", "bir")),
    Language("ko", "Korean", 82, 1, ("고객님", "계좌", "은행", "해주세요", "입니다"), script="hangul")
    ,
    Language("vi", "Vietnamese", 86, 1, ("tài", "khoản", "của", "bạn", "vui", "lòng", "ngân", "hàng")),
    Language("th", "Thai", 61, 1, ("บัญชี", "ของคุณ", "กรุณา", "ธนาคาร"), script="thai"),
    Language("pl", "Polish", 41, 1, ("twoje", "konto", "zostało", "proszę", "kliknij", "bank")),
    Language("uk", "Ukrainian", 33, 1, ("ваш", "рахунок", "будь", "ласка", "банку"), script="cyrillic"),
    Language("ro", "Romanian", 25, 2, ("contul", "dumneavoastră", "vă", "rugăm", "pentru", "banca")),
    Language("el", "Greek", 13, 2, ("ο", "λογαριασμός", "σας", "παρακαλώ", "τράπεζα"), script="greek"),
    Language("cs", "Czech", 11, 1, ("váš", "účet", "byl", "prosím", "klikněte", "banka")),
    Language("hu", "Hungarian", 13, 1, ("az", "ön", "számlája", "kérjük", "kattintson")),
    Language("sv", "Swedish", 13, 2, ("ditt", "konto", "har", "vänligen", "klicka", "banken")),
    Language("da", "Danish", 6, 1, ("din", "konto", "er", "venligst", "klik", "banken")),
    Language("no", "Norwegian", 5, 1, ("din", "konto", "har", "vennligst", "klikk", "banken")),
    Language("fi", "Finnish", 5, 1, ("tilisi", "ole", "hyvä", "klikkaa", "pankki")),
    Language("tl", "Tagalog", 83, 1, ("ang", "iyong", "ay", "paki", "bangko", "mo", "na")),
    Language("ms", "Malay", 77, 2, ("akaun", "anda", "telah", "sila", "klik")),
    Language("ur", "Urdu", 232, 2, ("آپ", "اکاؤنٹ", "براہ", "کرم", "بینک"), script="arabic"),
    Language("sw", "Swahili", 72, 4, ("akaunti", "yako", "tafadhali", "bonyeza", "benki")),
    Language("he", "Hebrew", 9, 1, ("החשבון", "שלך", "אנא", "לחץ", "בנק"), script="hebrew"),
    Language("si", "Sinhala", 17, 1, ("ඔබගේ", "ගිණුම", "කරුණාකර", "බැංකුව"), script="sinhala"),
    Language("ca", "Catalan", 9, 1, ("teu", "vostre", "plau", "fes", "enllaç")),
    Language("bg", "Bulgarian", 8, 1, ("вашата", "сметка", "моля", "кликнете", "банка"), script="cyrillic"),
    Language("hr", "Croatian", 5, 2, ("vaš", "račun", "molimo", "kliknite", "banka")),
    Language("sk", "Slovak", 5, 1, ("váš", "účet", "bol", "prosím", "kliknite", "banka")),
    Language("sl", "Slovenian", 2, 1, ("vaš", "račun", "prosimo", "kliknite", "banka")),
    Language("lt", "Lithuanian", 3, 1, ("jūsų", "sąskaita", "prašome", "spustelėkite", "bankas")),
    Language("lv", "Latvian", 2, 1, ("jūsu", "konts", "lūdzu", "noklikšķiniet", "banka")),
    Language("et", "Estonian", 1, 1, ("teie", "konto", "palun", "klõpsake", "pank")),
    Language("sr", "Serbian", 10, 2, ("ваш", "рачун", "молимо", "кликните", "банка"), script="cyrillic"),
    Language("fa", "Persian", 79, 2, ("حساب", "شما", "لطفا", "بانک"), script="arabic"),
    Language("ta", "Tamil", 87, 3, ("உங்கள்", "கணக்கு", "தயவுசெய்து", "வங்கி"), script="tamil"),
    Language("te", "Telugu", 96, 1, ("మీ", "ఖాతా", "దయచేసి", "బ్యాంక్"), script="telugu"),
    Language("mr", "Marathi", 99, 1, ("तुमचे", "खाते", "कृपया", "बँक"), script="devanagari"),
    Language("gu", "Gujarati", 62, 1, ("તમારું", "ખાતું", "કૃપા", "બેંક"), script="gujarati"),
    Language("kn", "Kannada", 59, 1, ("ನಿಮ್ಮ", "ಖಾತೆ", "ದಯವಿಟ್ಟು", "ಬ್ಯಾಂಕ್"), script="kannada"),
    Language("ml", "Malayalam", 37, 1, ("നിങ്ങളുടെ", "അക്കൗണ്ട്", "ദയവായി", "ബാങ്ക്"), script="malayalam"),
]


class LanguageRegistry:
    """Lookup by ISO code plus Table 11's most-spoken ranking."""

    def __init__(self, catalogue: Optional[List[Language]] = None):
        self._by_code: Dict[str, Language] = {}
        for language in catalogue if catalogue is not None else _CATALOGUE:
            self.add(language)

    def add(self, language: Language) -> None:
        self._by_code[language.code] = language

    def __len__(self) -> int:
        return len(self._by_code)

    def __iter__(self):
        return iter(self._by_code.values())

    def __contains__(self, code: str) -> bool:
        return code in self._by_code

    def get(self, code: str) -> Language:
        try:
            return self._by_code[code]
        except KeyError:
            raise NotFound(f"unknown language: {code!r}", service="languages") from None

    def codes(self) -> List[str]:
        return sorted(self._by_code)

    def most_spoken(self, top: int = 10) -> List[Language]:
        """Most-spoken languages worldwide (Table 11's right columns)."""
        ordered = sorted(
            self._by_code.values(), key=lambda lang: -lang.speakers_millions
        )
        return ordered[:top]

    def marker_lexicon(self) -> Dict[str, Tuple[str, ...]]:
        """code -> marker words, the shared detection lexicon."""
        return {lang.code: lang.markers for lang in self._by_code.values()}


_DEFAULT: Optional[LanguageRegistry] = None


def default_languages() -> LanguageRegistry:
    """Shared language registry instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = LanguageRegistry()
    return _DEFAULT
