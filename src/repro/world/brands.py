"""Brand registry: organisations scammers impersonate.

Calibrated to Table 12 (SBI, PayTM, HDFC, Santander, Amazon, IRS,
Rabobank, BBVA, Netflix, CaixaBank at the top) with a long tail across the
banking, delivery, government, telecom and tech sectors. Each brand knows:

* the scam category it is typically used for,
* the countries/languages of its customer base (campaigns select language
  accordingly — §5.3/§5.4 note e.g. Santander texts in Spanish, SBI in
  English because English is an official language of India),
* *evasion aliases*: leetspeak/homoglyph spellings scammers substitute to
  slip past MNO keyword filters (``N3tfl!x``, §3.3.6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NotFound
from ..types import ScamType
from ..utils.rng import WeightedSampler

_LEET_SUBSTITUTIONS = {
    "a": "4", "e": "3", "i": "1", "o": "0", "s": "5", "t": "7", "l": "1",
}


def leetify(name: str, rng: random.Random, *, max_subs: int = 2) -> str:
    """Produce a filter-evasion spelling of a brand name.

    Replaces up to ``max_subs`` letters with look-alike digits/symbols and
    sometimes swaps a vowel for ``!``. Deterministic under the given RNG.
    """
    chars = list(name)
    candidates = [i for i, ch in enumerate(chars) if ch.lower() in _LEET_SUBSTITUTIONS]
    rng.shuffle(candidates)
    subs = 0
    for index in candidates:
        if subs >= max_subs:
            break
        lower = chars[index].lower()
        if lower in "ei" and rng.random() < 0.3:
            chars[index] = "!"
        else:
            chars[index] = _LEET_SUBSTITUTIONS[lower]
        subs += 1
    return "".join(chars)


@dataclass(frozen=True)
class Brand:
    """One impersonatable organisation."""

    name: str
    category: ScamType
    countries: Tuple[str, ...]
    languages: Tuple[str, ...]
    #: Relative share of impersonation (drives Table 12's ranking).
    weight: float = 0.1
    #: Fixed alias spellings beyond generated leetspeak.
    aliases: Tuple[str, ...] = ()
    #: Stock-ticker style short code shown in the paper's Table 12.
    short: str = ""

    @property
    def primary_language(self) -> str:
        return self.languages[0]


_CATALOGUE: List[Brand] = [
    # Banking — India (top of Table 12; texts in English, §5.4)
    Brand("State Bank of India", ScamType.BANKING, ("IND",), ("en", "hi"), 11.6, ("SBI", "SBl", "S8I"), "SBI"),
    Brand("PayTM", ScamType.BANKING, ("IND",), ("en", "hi"), 3.0, ("PayTM KYC", "PaytM"), "PAYTM"),
    Brand("HDFC Bank", ScamType.BANKING, ("IND",), ("en",), 2.9, ("HDFC", "HDFC NetBanking"), "HDFC"),
    Brand("ICICI Bank", ScamType.BANKING, ("IND",), ("en",), 0.9, ("ICICI",)),
    Brand("Axis Bank", ScamType.BANKING, ("IND",), ("en",), 0.6),
    Brand("Kotak Bank", ScamType.BANKING, ("IND",), ("en",), 0.4),
    Brand("Punjab National Bank", ScamType.BANKING, ("IND",), ("en",), 0.4, ("PNB",)),
    # Banking — Europe / Americas
    Brand("Santander", ScamType.BANKING, ("ESP", "GBR", "BRA", "MEX"), ("es", "en", "pt"), 1.5, ("Santander Seguro",), "SAN"),
    Brand("Rabobank", ScamType.BANKING, ("NLD",), ("nl",), 1.1),
    Brand("BBVA", ScamType.BANKING, ("ESP", "MEX"), ("es",), 1.1),
    Brand("CaixaBank", ScamType.BANKING, ("ESP", "PRT"), ("es", "pt"), 1.0, ("Caixa",)),
    Brand("ING", ScamType.BANKING, ("NLD", "BEL", "DEU"), ("nl", "fr", "de"), 0.9),
    Brand("ABN AMRO", ScamType.BANKING, ("NLD",), ("nl",), 0.7),
    Brand("Barclays", ScamType.BANKING, ("GBR",), ("en",), 0.8),
    Brand("HSBC", ScamType.BANKING, ("GBR", "HKG"), ("en", "zh"), 0.8),
    Brand("Lloyds Bank", ScamType.BANKING, ("GBR",), ("en",), 0.7),
    Brand("NatWest", ScamType.BANKING, ("GBR",), ("en",), 0.7),
    Brand("Monzo", ScamType.BANKING, ("GBR",), ("en",), 0.3),
    Brand("Revolut", ScamType.BANKING, ("GBR", "IRL"), ("en",), 0.4),
    Brand("Chase", ScamType.BANKING, ("USA",), ("en", "es"), 0.9),
    Brand("Bank of America", ScamType.BANKING, ("USA",), ("en", "es"), 0.8, ("BofA",)),
    Brand("Wells Fargo", ScamType.BANKING, ("USA",), ("en", "es"), 0.7),
    Brand("Citibank", ScamType.BANKING, ("USA",), ("en",), 0.5),
    Brand("BNP Paribas", ScamType.BANKING, ("FRA",), ("fr",), 0.5),
    Brand("Credit Agricole", ScamType.BANKING, ("FRA",), ("fr",), 0.5),
    Brand("Societe Generale", ScamType.BANKING, ("FRA",), ("fr",), 0.4),
    Brand("Deutsche Bank", ScamType.BANKING, ("DEU",), ("de",), 0.4),
    Brand("Commerzbank", ScamType.BANKING, ("DEU",), ("de",), 0.4),
    Brand("Sparkasse", ScamType.BANKING, ("DEU",), ("de",), 0.6),
    Brand("Intesa Sanpaolo", ScamType.BANKING, ("ITA",), ("it",), 0.5),
    Brand("UniCredit", ScamType.BANKING, ("ITA",), ("it",), 0.4),
    Brand("Poste Italiane", ScamType.BANKING, ("ITA",), ("it",), 0.5, ("PosteInfo",)),
    Brand("Itau", ScamType.BANKING, ("BRA",), ("pt",), 0.4),
    Brand("Bradesco", ScamType.BANKING, ("BRA",), ("pt",), 0.3),
    Brand("Maybank", ScamType.BANKING, ("MYS",), ("ms", "en"), 0.3),
    Brand("DBS", ScamType.BANKING, ("SGP",), ("en",), 0.3),
    Brand("Commonwealth Bank", ScamType.BANKING, ("AUS",), ("en",), 0.5, ("CommBank",)),
    Brand("Westpac", ScamType.BANKING, ("AUS",), ("en",), 0.4),
    Brand("BCA", ScamType.BANKING, ("IDN",), ("id",), 0.4),
    Brand("Bank Mandiri", ScamType.BANKING, ("IDN",), ("id",), 0.3),
    Brand("Sberbank", ScamType.BANKING, ("RUS",), ("ru",), 0.2),
    Brand("MUFG", ScamType.BANKING, ("JPN",), ("ja",), 0.3),
    # Delivery / parcel
    Brand("USPS", ScamType.DELIVERY, ("USA",), ("en",), 1.0),
    Brand("Correos", ScamType.DELIVERY, ("ESP",), ("es",), 0.8),
    Brand("DHL", ScamType.DELIVERY, ("DEU", "GBR", "NLD", "FRA"), ("de", "en", "nl", "fr"), 0.9),
    Brand("Royal Mail", ScamType.DELIVERY, ("GBR",), ("en",), 0.9),
    Brand("Evri", ScamType.DELIVERY, ("GBR",), ("en",), 0.5, ("Hermes",)),
    Brand("PostNL", ScamType.DELIVERY, ("NLD",), ("nl",), 0.7),
    Brand("La Poste", ScamType.DELIVERY, ("FRA",), ("fr",), 0.7, ("Colissimo",)),
    Brand("Chronopost", ScamType.DELIVERY, ("FRA",), ("fr",), 0.4),
    Brand("Ceska Posta", ScamType.DELIVERY, ("CZE",), ("cs",), 0.3),
    Brand("Australia Post", ScamType.DELIVERY, ("AUS",), ("en",), 0.5, ("AusPost",)),
    Brand("Canada Post", ScamType.DELIVERY, ("CAN",), ("en", "fr"), 0.4),
    Brand("FedEx", ScamType.DELIVERY, ("USA",), ("en",), 0.5),
    Brand("UPS", ScamType.DELIVERY, ("USA", "GBR"), ("en",), 0.5),
    Brand("Deutsche Post", ScamType.DELIVERY, ("DEU",), ("de",), 0.4),
    Brand("Correios", ScamType.DELIVERY, ("BRA",), ("pt",), 0.3),
    Brand("Japan Post", ScamType.DELIVERY, ("JPN",), ("ja",), 0.4),
    Brand("SDA", ScamType.DELIVERY, ("ITA",), ("it",), 0.2),
    Brand("bpost", ScamType.DELIVERY, ("BEL",), ("nl", "fr"), 0.3),
    Brand("J&T Express", ScamType.DELIVERY, ("IDN",), ("id",), 0.3),
    # Government
    Brand("Internal Revenue Service", ScamType.GOVERNMENT, ("USA",), ("en", "es"), 1.2, ("IRS",), "IRS"),
    Brand("HMRC", ScamType.GOVERNMENT, ("GBR",), ("en",), 0.8),
    Brand("DVLA", ScamType.GOVERNMENT, ("GBR",), ("en",), 0.5),
    Brand("GOV.UK", ScamType.GOVERNMENT, ("GBR",), ("en",), 0.4),
    Brand("NHS", ScamType.GOVERNMENT, ("GBR",), ("en",), 0.4),
    Brand("Agencia Tributaria", ScamType.GOVERNMENT, ("ESP",), ("es",), 0.5),
    Brand("DGFiP", ScamType.GOVERNMENT, ("FRA",), ("fr",), 0.5, ("impots.gouv",)),
    Brand("Ameli", ScamType.GOVERNMENT, ("FRA",), ("fr",), 0.4),
    Brand("Belastingdienst", ScamType.GOVERNMENT, ("NLD",), ("nl",), 0.5),
    Brand("CRA", ScamType.GOVERNMENT, ("CAN",), ("en", "fr"), 0.3),
    Brand("ATO", ScamType.GOVERNMENT, ("AUS",), ("en",), 0.4, ("myGov",)),
    Brand("Finanzamt", ScamType.GOVERNMENT, ("DEU",), ("de",), 0.3),
    Brand("Agenzia Entrate", ScamType.GOVERNMENT, ("ITA",), ("it",), 0.3),
    Brand("Income Tax Dept", ScamType.GOVERNMENT, ("IND",), ("en",), 0.4),
    # Telecom
    Brand("Vodafone", ScamType.TELECOM, ("GBR", "ESP", "IND", "DEU"), ("en", "es", "de"), 0.6),
    Brand("O2", ScamType.TELECOM, ("GBR", "DEU"), ("en", "de"), 0.5),
    Brand("EE", ScamType.TELECOM, ("GBR",), ("en",), 0.5),
    Brand("Three UK", ScamType.TELECOM, ("GBR",), ("en",), 0.3),
    Brand("Orange", ScamType.TELECOM, ("FRA", "ESP"), ("fr", "es"), 0.5),
    Brand("SFR", ScamType.TELECOM, ("FRA",), ("fr",), 0.3),
    Brand("AT&T", ScamType.TELECOM, ("USA",), ("en",), 0.4),
    Brand("Verizon", ScamType.TELECOM, ("USA",), ("en",), 0.4),
    Brand("T-Mobile", ScamType.TELECOM, ("USA", "NLD"), ("en", "nl"), 0.4),
    Brand("KPN", ScamType.TELECOM, ("NLD",), ("nl",), 0.3),
    Brand("Telstra", ScamType.TELECOM, ("AUS",), ("en",), 0.3),
    Brand("Movistar", ScamType.TELECOM, ("ESP",), ("es",), 0.3),
    Brand("Airtel", ScamType.TELECOM, ("IND",), ("en", "hi"), 0.5),
    Brand("China Telecom", ScamType.TELECOM, ("CHN",), ("zh",), 0.2),
    # Tech / others
    Brand("Amazon", ScamType.OTHERS, ("USA", "GBR", "ESP", "JPN"), ("en", "es", "ja"), 1.4, ("AMZ", "Amaz0n"), "AMZ"),
    Brand("Netflix", ScamType.OTHERS, ("USA", "GBR", "FRA", "ESP"), ("en", "fr", "es"), 1.1, ("N3tfl!x", "NETFLX"), "NFLX"),
    Brand("Apple", ScamType.OTHERS, ("USA", "GBR"), ("en",), 0.6, ("iCloud",)),
    Brand("Google", ScamType.OTHERS, ("USA",), ("en",), 0.4),
    Brand("Facebook", ScamType.OTHERS, ("USA", "IDN"), ("en", "id"), 0.7, ("FB",)),
    Brand("WhatsApp", ScamType.OTHERS, ("IND", "IDN", "ESP"), ("en", "id", "es"), 0.7),
    Brand("Telegram", ScamType.OTHERS, ("IDN", "RUS"), ("en", "id", "ru"), 0.5),
    Brand("PayPal", ScamType.OTHERS, ("USA", "GBR", "DEU"), ("en", "de"), 0.7),
    Brand("eBay", ScamType.OTHERS, ("USA", "GBR"), ("en",), 0.3),
    Brand("Coinbase", ScamType.OTHERS, ("USA",), ("en",), 0.4),
    Brand("Binance", ScamType.OTHERS, ("USA", "GBR"), ("en",), 0.4),
    Brand("Microsoft", ScamType.OTHERS, ("USA",), ("en",), 0.3),
    Brand("Instagram", ScamType.OTHERS, ("USA", "IDN"), ("en", "id"), 0.3),
    Brand("Spotify", ScamType.OTHERS, ("USA", "SWE"), ("en", "sv"), 0.2),
    Brand("DANA", ScamType.OTHERS, ("IDN",), ("id",), 0.3),
]


class BrandRegistry:
    """Brand catalogue with alias-aware lookup and abuse-weighted sampling."""

    def __init__(self, catalogue: Optional[Sequence[Brand]] = None):
        self._by_name: Dict[str, Brand] = {}
        self._alias_index: Dict[str, str] = {}
        self._by_category: Dict[ScamType, List[Brand]] = {}
        for brand in catalogue if catalogue is not None else _CATALOGUE:
            self.add(brand)

    def add(self, brand: Brand) -> None:
        self._by_name[brand.name] = brand
        self._alias_index[brand.name.lower()] = brand.name
        for alias in brand.aliases:
            self._alias_index[alias.lower()] = brand.name
        if brand.short:
            self._alias_index[brand.short.lower()] = brand.name
        self._by_category.setdefault(brand.category, []).append(brand)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def get(self, name: str) -> Brand:
        try:
            return self._by_name[name]
        except KeyError:
            raise NotFound(f"unknown brand: {name!r}", service="brands") from None

    def resolve_alias(self, text: str) -> Optional[Brand]:
        """Exact alias lookup (case-insensitive); leet handled in NLP."""
        name = self._alias_index.get(text.lower().strip())
        return self._by_name[name] if name else None

    def in_category(self, category: ScamType) -> List[Brand]:
        return list(self._by_category.get(category, []))

    def sampler_for(self, category: ScamType) -> WeightedSampler:
        brands = self.in_category(category)
        if not brands:
            raise NotFound(f"no brands in category {category}", service="brands")
        return WeightedSampler({b.name: b.weight for b in brands})

    def all_alias_forms(self) -> Dict[str, str]:
        """alias (lowercase) -> canonical name; used by the NER lexicon."""
        return dict(self._alias_index)


_DEFAULT: Optional[BrandRegistry] = None


def default_brands() -> BrandRegistry:
    """Shared brand registry instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BrandRegistry()
    return _DEFAULT
