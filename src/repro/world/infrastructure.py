"""Web infrastructure the synthetic scammers stand up.

For each campaign the builder registers domains (choosing TLD and
registrar), places hosting (cloud AS, optionally fronted by Cloudflare, or
a bulletproof provider), issues TLS certificates (CA mix and renewal
cadence calibrated to Table 7), optionally deploys on free website-builder
suffixes (web.app, ngrok.io — §4.3), wires URL-shortener redirects
(Table 5), and marks some hosts as Android APK droppers (§6).

The resulting :class:`DomainAsset` records are the ground truth that the
WHOIS, crt.sh, passive-DNS and web-host service simulators answer from.
"""

from __future__ import annotations

import datetime as dt
import random
import string
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.asn import AsRegistry, HostingChoice
from ..net.ipaddr import IPv4
from ..net.tld import TldRegistry, default_registry
from ..net.url import Url
from ..types import ScamType
from ..utils.rng import WeightedSampler, stable_hash

# ---------------------------------------------------------------------------
# Calibrated catalogues (Tables 5, 6, 7, 17).
# ---------------------------------------------------------------------------

#: Registrar popularity among smishing domains (Table 17) plus a tail.
REGISTRAR_WEIGHTS: Dict[str, float] = {
    "GoDaddy": 464, "NameCheap": 153, "Gname": 98, "Dynadot": 79,
    "Tucows": 74, "PublicDomainRegistry": 71, "NameSilo": 64,
    "Key-Systems": 60, "MarkMonitor": 53, "Gandi": 52, "Hostinger": 40,
    "OVH": 35, "IONOS": 30, "Porkbun": 28, "Regery": 20, "Alibaba Cloud": 18,
    "WebNic": 15, "Openprovider": 12, "Sav.com": 10, "Epik": 8,
}

#: Per-scam-type registrar bias: Gname dominates government scams (§4.4).
REGISTRAR_SCAM_BIAS: Dict[ScamType, Dict[str, float]] = {
    ScamType.GOVERNMENT: {"Gname": 6.0},
    ScamType.BANKING: {"GoDaddy": 1.5},
    ScamType.DELIVERY: {"GoDaddy": 1.4},
    ScamType.TELECOM: {"GoDaddy": 1.3},
}

#: TLD popularity for scammer-registered smishing domains (Table 6, left).
TLD_WEIGHTS: Dict[str, float] = {
    "com": 4951, "info": 574, "in": 404, "me": 291, "net": 286, "co": 234,
    "top": 225, "us": 202, "online": 201, "xyz": 159, "org": 120,
    "site": 95, "club": 80, "shop": 76, "live": 70, "vip": 64, "icu": 58,
    "work": 52, "link": 48, "click": 45, "buzz": 40, "fun": 36, "cn": 34,
    "space": 33, "store": 31, "tech": 29, "website": 27, "world": 25,
    "today": 23, "cloud": 21, "uk": 38, "de": 30, "fr": 26, "es": 24,
    "nl": 22, "it": 19, "ru": 17, "br": 15, "jp": 14, "id": 13, "pt": 11,
    "au": 10, "mx": 9, "pl": 8, "tr": 7, "za": 6, "be": 6, "ch": 5,
    "at": 5, "ie": 5, "cz": 4, "ro": 4, "ua": 4, "ke": 3, "ng": 3,
    "lk": 2, "gh": 2, "biz": 12, "name": 6, "pro": 9, "mobi": 7,
    "sbs": 10, "cfd": 9, "bond": 8, "beauty": 4, "quest": 4, "monster": 4,
    "loan": 5, "men": 4, "win": 5, "bid": 4, "date": 3, "download": 3,
    "racing": 2, "review": 3, "stream": 3, "trade": 3, "party": 2,
    "science": 2, "faith": 2, "cricket": 1, "gdn": 1, "tokyo": 2,
    "asia": 3, "best": 3, "cash": 3, "chat": 2, "city": 2, "codes": 1,
    "credit": 2, "deals": 2, "direct": 1, "events": 1, "exchange": 2,
    "finance": 3, "money": 3, "group": 2, "guru": 1, "help": 2, "life": 3,
    "ltd": 2, "media": 2, "one": 3, "plus": 2, "run": 1, "sale": 2,
    "social": 1, "team": 1, "tips": 1, "tools": 1, "zone": 2, "gov": 0,
}

#: Free website-builder suffixes and their observed counts (§4.3).
FREE_HOSTING_WEIGHTS: Dict[str, float] = {
    "web.app": 303, "ngrok.io": 186, "firebaseapp.com": 60,
    "herokuapp.com": 50, "vercel.app": 40, "netlify.app": 34,
}

#: Fraction of campaign domains deployed on free hosting.
FREE_HOSTING_FRACTION = 0.08

#: Certificate authorities (Table 7): weight = share of *domains*.
CA_DOMAIN_WEIGHTS: Dict[str, float] = {
    "Let's Encrypt": 4773, "Sectigo": 1372, "Google Trust Services": 957,
    "cPanel": 915, "DigiCert": 736, "Cloudflare": 683, "Amazon": 273,
    "Comodo": 250, "Globalsign": 144, "Entrust": 73, "Buypass": 40,
    "ZeroSSL": 60,
}

#: Mean certificates issued per domain per CA. Let's Encrypt's 90-day
#: renewals inflate its per-domain count (Table 7: 141,878 certs over
#: 4,773 domains ≈ 30/domain), while Sectigo sells long-validity certs
#: (6,477 over 1,372 ≈ 4.7).
CA_CERT_RATE: Dict[str, float] = {
    "Let's Encrypt": 29.7, "DigiCert": 26.3, "cPanel": 19.3,
    "Google Trust Services": 17.5, "Globalsign": 106.5, "Comodo": 56.5,
    "Amazon": 28.4, "Entrust": 90.4, "Sectigo": 4.7, "Cloudflare": 6.0,
    "Buypass": 5.0, "ZeroSSL": 8.0,
}

CA_VALIDITY_DAYS: Dict[str, int] = {
    "Let's Encrypt": 90, "cPanel": 90, "ZeroSSL": 90,
    "Google Trust Services": 90, "Cloudflare": 365, "Amazon": 395,
    "DigiCert": 397, "Globalsign": 397, "Comodo": 365, "Entrust": 365,
    "Sectigo": 365, "Buypass": 180,
}

#: Hosting AS mix for origin placement (Table 8 shapes the IP counts).
ORIGIN_AS_WEIGHTS: Dict[int, float] = {
    16509: 120, 14618: 68, 63949: 147, 15169: 40, 396982: 19, 35916: 49,
    47846: 31, 45102: 10, 37963: 6, 132203: 15, 53667: 11, 17444: 11,
    20473: 11, 198953: 8, 44477: 7, 16276: 9, 24940: 8, 14061: 9,
    26496: 10, 8075: 6, 55293: 4, 22612: 5, 19871: 3,
}

#: Fraction of (resolving) domains fronted by Cloudflare (§4.6: 18.8%).
CLOUDFLARE_FRACTION = 0.188
CLOUDFLARE_ASN = 13335

#: URL shortener services and per-scam-type weights (Table 5).
SHORTENER_BASE_WEIGHTS: Dict[str, float] = {
    "bit.ly": 1830, "is.gd": 1023, "cutt.ly": 516, "tinyurl.com": 443,
    "bit.do": 404, "shrtco.de": 271, "rb.gy": 230, "t.ly": 172,
    "bitly.ws": 161, "t.co": 157, "ow.ly": 60, "buff.ly": 40,
    "rebrand.ly": 35, "shorturl.at": 55, "tiny.cc": 30, "v.gd": 25,
    "qr.ae": 10, "s.id": 28, "lnkd.in": 8, "soo.gd": 12, "clck.ru": 15,
    "goo.su": 10, "u.to": 9, "x.gd": 7, "me2.do": 6, "han.gl": 5,
    "zpr.io": 5,
}

#: Scam-type multipliers shaping Table 5's per-column ranking.
SHORTENER_SCAM_BIAS: Dict[ScamType, Dict[str, float]] = {
    ScamType.BANKING: {"bit.ly": 1.3, "is.gd": 1.5, "shrtco.de": 3.0,
                       "bitly.ws": 1.8},
    ScamType.DELIVERY: {"cutt.ly": 2.4, "t.co": 2.2, "bit.do": 1.4},
    ScamType.GOVERNMENT: {"cutt.ly": 2.0, "t.ly": 2.2, "bit.ly": 1.3},
    ScamType.TELECOM: {"bit.do": 2.0, "bit.ly": 1.4},
    ScamType.WRONG_NUMBER: {"t.co": 3.0},
}

#: Share of smishing URLs that go out behind a shortener (§4.2).
SHORTENED_FRACTION = 0.30

_WORDS = (
    "secure", "verify", "account", "update", "service", "support", "portal",
    "login", "online", "alert", "safety", "check", "billing", "customer",
    "care", "info", "notice", "access", "auth", "confirm", "wallet", "pay",
    "track", "parcel", "post", "refund", "tax", "gov", "mobile", "net",
    "user", "page", "id", "help", "team", "bank",
)

# ---------------------------------------------------------------------------
# Multi-step funnel blueprints (§6 active investigation).
# ---------------------------------------------------------------------------

#: Page kinds a scam funnel walks through, in order. Depth-1 funnels stop
#: at the landing page; depth-3 funnels harvest credentials and then ask
#: for payment/OTP confirmation (the full kit the case study navigated).
FUNNEL_PAGE_KINDS: Tuple[str, ...] = (
    "landing", "credential_form", "payment_otp",
)

#: Form fields each funnel page solicits (what a playbook's
#: ``submit_form`` step fills with synthetic PII).
FUNNEL_FORM_FIELDS: Dict[str, Tuple[str, ...]] = {
    "landing": (),
    "credential_form": ("full_name", "username", "password"),
    "payment_otp": ("card_number", "card_expiry", "otp_code"),
}

#: URL paths the non-landing funnel pages live on.
FUNNEL_PAGE_PATHS: Dict[str, str] = {
    "credential_form": "/verify",
    "payment_otp": "/confirm",
}


def funnel_blueprint(fqdn: str) -> Tuple[int, str]:
    """Deterministic funnel shape for one host: ``(depth, device_gate)``.

    ``depth`` is how many of :data:`FUNNEL_PAGE_KINDS` the kit deploys
    (1–3); ``device_gate`` is which device class the pages beyond the
    landing are served to (``"any"``, ``"android"`` or ``"desktop"`` —
    real kits fingerprint clients, §6). Derived purely from a stable
    hash of the hostname so the builder's RNG streams — and therefore
    every previously generated world — are untouched.
    """
    depth = 1 + stable_hash("funnel-depth:" + fqdn) % len(FUNNEL_PAGE_KINDS)
    gate = ("any", "android", "desktop", "any")[
        stable_hash("funnel-gate:" + fqdn) % 4
    ]
    return depth, gate


@dataclass(frozen=True)
class TlsCertificate:
    """One certificate as crt.sh would log it."""

    serial: str
    issuer: str
    issued_at: dt.date
    expires_at: dt.date
    common_name: str


@dataclass
class DomainAsset:
    """One scammer-controlled hostname with all its ground truth."""

    fqdn: str
    registered_domain: str
    tld: str
    campaign_id: str
    scam_type: ScamType
    created_at: dt.date
    registrar: Optional[str]
    is_free_hosting: bool
    hosting: HostingChoice
    certificates: List[TlsCertificate] = field(default_factory=list)
    serves_apk: bool = False
    #: Whether Spamhaus' passive DNS sensors observed resolutions (§4.6
    #: finds only a subset of domains in pDNS).
    pdns_observed: bool = False

    @property
    def landing_url(self) -> Url:
        return Url(scheme="https" if self.certificates else "http",
                   host=self.fqdn, path="/")


@dataclass(frozen=True)
class SmishingLink:
    """The URL placed in a message: either direct or shortened."""

    destination: DomainAsset
    url: Url
    shortener: Optional[str] = None
    short_token: Optional[str] = None

    @property
    def is_shortened(self) -> bool:
        return self.shortener is not None


class InfrastructureBuilder:
    """Registers domains and builds links for campaigns."""

    def __init__(
        self,
        rng: random.Random,
        *,
        as_registry: AsRegistry,
        tld_registry: Optional[TldRegistry] = None,
        apk_fraction: float = 0.02,
    ):
        self._rng = rng
        self._as_registry = as_registry
        self._tlds = tld_registry or default_registry()
        self._apk_fraction = apk_fraction
        self._registrar_samplers: Dict[Optional[ScamType], WeightedSampler] = {}
        self._tld_sampler = WeightedSampler(
            {tld: w for tld, w in TLD_WEIGHTS.items() if w > 0 and tld in self._tlds}
        )
        self._free_sampler = WeightedSampler(FREE_HOSTING_WEIGHTS)
        self._ca_sampler = WeightedSampler(CA_DOMAIN_WEIGHTS)
        self._origin_sampler = WeightedSampler(ORIGIN_AS_WEIGHTS)
        self._shortener_samplers: Dict[ScamType, WeightedSampler] = {}
        self._issued_names: set = set()
        self._short_tokens: set = set()
        self.assets: List[DomainAsset] = []

    # -- name construction --------------------------------------------------

    def _brand_slug(self, brand: Optional[str]) -> str:
        if not brand:
            return self._rng.choice(_WORDS)
        slug = "".join(ch for ch in brand.lower() if ch.isalnum())
        return slug[:12] or self._rng.choice(_WORDS)

    def _random_label(self, brand: Optional[str]) -> str:
        style = self._rng.random()
        slug = self._brand_slug(brand)
        word = self._rng.choice(_WORDS)
        if style < 0.45:
            label = f"{slug}-{word}"
        elif style < 0.7:
            label = f"{word}-{slug}{self._rng.randrange(10, 99)}"
        elif style < 0.85:
            label = f"{slug}{word}"
        else:
            label = "".join(
                self._rng.choice(string.ascii_lowercase) for _ in range(8)
            )
        return label

    def _unique_name(self, build) -> str:
        for _ in range(64):
            name = build()
            if name not in self._issued_names:
                self._issued_names.add(name)
                return name
        raise RuntimeError("could not find a unique domain name")

    # -- component choices ---------------------------------------------------

    def _registrar_for(self, scam_type: ScamType) -> str:
        sampler = self._registrar_samplers.get(scam_type)
        if sampler is None:
            weights = dict(REGISTRAR_WEIGHTS)
            for name, factor in REGISTRAR_SCAM_BIAS.get(scam_type, {}).items():
                weights[name] = weights.get(name, 1.0) * factor
            sampler = WeightedSampler(weights)
            self._registrar_samplers[scam_type] = sampler
        return sampler.sample(self._rng)

    def _hosting_choice(self) -> HostingChoice:
        origin_asn = self._origin_sampler.sample(self._rng)
        proxy = None
        if self._rng.random() < CLOUDFLARE_FRACTION:
            proxy = CLOUDFLARE_ASN
        visible_asn = proxy if proxy is not None else origin_asn
        address_count = 1 + (1 if self._rng.random() < 0.35 else 0) + (
            1 if self._rng.random() < 0.12 else 0
        )
        addresses: List[IPv4] = [
            self._as_registry.allocate_address(visible_asn, self._rng)
            for _ in range(address_count)
        ]
        return HostingChoice(origin_asn=origin_asn, proxy_asn=proxy,
                             addresses=addresses)

    def _issue_certificates(
        self, fqdn: str, created_at: dt.date, horizon: dt.date
    ) -> List[TlsCertificate]:
        if self._rng.random() < 0.12:
            return []  # plain-HTTP host
        ca = self._ca_sampler.sample(self._rng)
        validity = CA_VALIDITY_DAYS[ca]
        rate = CA_CERT_RATE[ca]
        # Heavy-tailed renewal count around the CA's mean.
        mean_certs = max(1.0, rate * self._rng.uniform(0.2, 1.8))
        count = max(1, int(self._rng.expovariate(1.0 / mean_certs)))
        count = min(count, 4800)
        certificates: List[TlsCertificate] = []
        # All `count` certificates fit inside the observation horizon:
        # short-validity CAs renew on schedule, and busy domains also
        # accumulate overlapping SAN-variant issuances (this is what
        # inflates Let's Encrypt's per-domain counts in Table 7).
        span_days = max((horizon - created_at).days, 1)
        step_days = max(1, span_days // count)
        issue = created_at
        for index in range(count):
            expires = issue + dt.timedelta(days=validity)
            certificates.append(
                TlsCertificate(
                    serial=f"{abs(hash((fqdn, index))) % 16**12:012x}",
                    issuer=ca,
                    issued_at=issue,
                    expires_at=expires,
                    common_name=fqdn,
                )
            )
            issue = issue + dt.timedelta(
                days=max(1, int(step_days * self._rng.uniform(0.6, 1.3)))
            )
            if issue > horizon:
                issue = created_at + dt.timedelta(
                    days=self._rng.randrange(span_days)
                )
        return certificates

    # -- public API -----------------------------------------------------------

    def register_domain(
        self,
        campaign_id: str,
        scam_type: ScamType,
        brand: Optional[str],
        created_at: dt.date,
        *,
        serves_apk: Optional[bool] = None,
    ) -> DomainAsset:
        """Stand up one hostname for a campaign."""
        free = self._rng.random() < FREE_HOSTING_FRACTION
        if free:
            suffix = self._free_sampler.sample(self._rng)
            label = self._unique_name(
                lambda: f"{self._random_label(brand)}.{suffix}"
            )
            fqdn = label
            registered = label
            tld = suffix
            registrar = None
        else:
            tld = self._tld_sampler.sample(self._rng)
            registered = self._unique_name(
                lambda: f"{self._random_label(brand)}.{tld}"
            )
            sub_roll = self._rng.random()
            if sub_roll < 0.25:
                fqdn = f"{self._rng.choice(_WORDS)}.{registered}"
            else:
                fqdn = registered
            registrar = self._registrar_for(scam_type)
        if serves_apk is None:
            serves_apk = self._rng.random() < self._apk_fraction
        horizon = created_at + dt.timedelta(days=400)
        asset = DomainAsset(
            fqdn=fqdn,
            registered_domain=registered,
            tld=tld,
            campaign_id=campaign_id,
            scam_type=scam_type,
            created_at=created_at,
            registrar=registrar,
            is_free_hosting=free,
            hosting=self._hosting_choice(),
            certificates=self._issue_certificates(fqdn, created_at, horizon),
            serves_apk=bool(serves_apk),
            pdns_observed=self._rng.random() < 0.045,
        )
        self.assets.append(asset)
        return asset

    def _shortener_sampler(self, scam_type: ScamType) -> WeightedSampler:
        sampler = self._shortener_samplers.get(scam_type)
        if sampler is None:
            weights = dict(SHORTENER_BASE_WEIGHTS)
            for name, factor in SHORTENER_SCAM_BIAS.get(scam_type, {}).items():
                weights[name] = weights.get(name, 1.0) * factor
            sampler = WeightedSampler(weights)
            self._shortener_samplers[scam_type] = sampler
        return sampler

    def _short_token(self) -> str:
        alphabet = string.ascii_letters + string.digits
        while True:
            token = "".join(self._rng.choice(alphabet) for _ in range(7))
            if token not in self._short_tokens:
                self._short_tokens.add(token)
                return token

    def build_link(
        self, asset: DomainAsset, scam_type: ScamType
    ) -> SmishingLink:
        """Build the link a message will carry: direct or shortened."""
        if asset.serves_apk and self._rng.random() < 0.3:
            # Some campaigns link the package directly (§6 found 89 such
            # URLs, e.g. ceskaposta[.]online/PostaOnlineTracking.apk).
            path = self._rng.choice(
                ("/internet.apk", "/PostaOnlineTracking.apk", "/s1.apk",
                 "/update.apk")
            )
        else:
            path = self._rng.choice(
                ("/", "/login", "/verify", "/secure", "/update", "/track",
                 "/claim", "/refund", "/billing", "/confirm")
            )
        destination_url = Url(
            scheme="https" if asset.certificates else "http",
            host=asset.fqdn,
            path=path,
        )
        if self._rng.random() < SHORTENED_FRACTION:
            shortener = self._shortener_sampler(scam_type).sample(self._rng)
            token = self._short_token()
            short_url = Url(scheme="https", host=shortener, path=f"/{token}")
            return SmishingLink(destination=asset, url=short_url,
                                shortener=shortener, short_token=token)
        return SmishingLink(destination=asset, url=destination_url)

    def build_whatsapp_link(self, phone_digits: str) -> Url:
        """A ``wa.me`` conversation-starter link (§4.2, 205 observed)."""
        return Url(scheme="https", host="wa.me", path=f"/{phone_digits}")
