"""Scenario assembly: build a complete synthetic smishing world.

:func:`build_world` wires every substrate together: it draws campaigns,
generates ground-truth events, has the reporter population post them to
the five forums, and initialises every measurement service against the
world's ground truth. The result is a :class:`World` the pipeline
(:mod:`repro.core`) measures exactly as the paper measured the internet.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..forums.base import ForumService
from ..forums.pastebin import PastebinService
from ..forums.reddit import RedditService
from ..forums.smishingeu import SmishingEuService
from ..forums.smishtank import SmishtankService
from ..forums.twitter import TwitterService
from ..imaging.renderer import ScreenshotRenderer
from ..net.asn import AsRegistry
from ..net.dns import DnsResolver, DnsZoneDatabase
from ..net.tld import TldRegistry, default_registry
from ..services.androzoo import AndroZooService
from ..services.base import SimClock
from ..services.crtsh import CrtShService
from ..services.gsb import GoogleSafeBrowsingService
from ..services.hlr import HlrLookupService
from ..services.passivedns import IpInfoService, PassiveDnsService
from ..services.shorteners import ShortenerResolver
from ..services.virustotal import VirusTotalService
from ..services.webhost import WebHostService
from ..services.whois import WhoisService
from ..sms.message import SmishingEvent
from ..types import Forum
from ..utils.rng import derive
from .adversarial import generate_hostile_posts
from .brands import BrandRegistry, default_brands
from .campaigns import Campaign, CampaignFactory
from .geography import CountryRegistry, default_countries
from .infrastructure import InfrastructureBuilder
from .mno import OperatorRegistry, default_operators
from .numbering import NumberFactory, NumberLedger
from .reporters import ReporterOutput, ReporterPopulation
from .templates import TemplateLibrary, default_templates


@dataclass
class ScenarioConfig:
    """Knobs controlling world size and timeline.

    The default scale produces a world a laptop builds in seconds; the
    benchmark harness scales it up. ``include_sbi_burst`` injects the 2021
    Indian flash campaign §5.1 singles out.
    """

    seed: int = 7726  # the UK scam-reporting shortcode, naturally
    n_campaigns: int = 120
    mean_campaign_volume: float = 28.0
    timeline_start: dt.date = dt.date(2017, 1, 1)
    timeline_end: dt.date = dt.date(2023, 9, 30)
    include_sbi_burst: bool = True
    sbi_burst_volume: int = 120
    apk_campaign_fraction: float = 0.06
    androzoo_corpus_size: int = 2_000
    #: Adversarial reporter profile (:mod:`repro.world.adversarial`):
    #: "none" (default), "noisy", or "poison".
    hostile: str = "none"

    def scaled(self, factor: float) -> "ScenarioConfig":
        """A copy scaled up/down for benchmarking."""
        return ScenarioConfig(
            seed=self.seed,
            n_campaigns=max(1, int(self.n_campaigns * factor)),
            mean_campaign_volume=self.mean_campaign_volume,
            timeline_start=self.timeline_start,
            timeline_end=self.timeline_end,
            include_sbi_burst=self.include_sbi_burst,
            sbi_burst_volume=max(10, int(self.sbi_burst_volume * factor)),
            apk_campaign_fraction=self.apk_campaign_fraction,
            androzoo_corpus_size=self.androzoo_corpus_size,
            hostile=self.hostile,
        )


@dataclass
class World:
    """A fully built synthetic smishing ecosystem."""

    config: ScenarioConfig
    clock: SimClock
    countries: CountryRegistry
    operators: OperatorRegistry
    brands: BrandRegistry
    templates: TemplateLibrary
    tlds: TldRegistry
    as_registry: AsRegistry
    ledger: NumberLedger
    infrastructure: InfrastructureBuilder
    campaigns: List[Campaign]
    events: List[SmishingEvent]
    reporter_output: ReporterOutput
    forums: Dict[Forum, ForumService]
    hlr: HlrLookupService
    whois: WhoisService
    crtsh: CrtShService
    passivedns: PassiveDnsService
    ipinfo: IpInfoService
    virustotal: VirusTotalService
    gsb: GoogleSafeBrowsingService
    shortener_resolver: ShortenerResolver
    webhost: WebHostService
    androzoo: AndroZooService
    dns: DnsResolver = None  # type: ignore[assignment]
    _events_by_id: Dict[str, SmishingEvent] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._events_by_id:
            self._events_by_id = {e.event_id: e for e in self.events}

    def event(self, event_id: str) -> Optional[SmishingEvent]:
        """Ground-truth lookup (evaluation only)."""
        return self._events_by_id.get(event_id)

    @property
    def twitter(self) -> TwitterService:
        return self.forums[Forum.TWITTER]  # type: ignore[return-value]

    @property
    def reddit(self) -> RedditService:
        return self.forums[Forum.REDDIT]  # type: ignore[return-value]

    @property
    def smishtank(self) -> SmishtankService:
        return self.forums[Forum.SMISHTANK]  # type: ignore[return-value]

    @property
    def smishing_eu(self) -> SmishingEuService:
        return self.forums[Forum.SMISHING_EU]  # type: ignore[return-value]

    @property
    def pastebin(self) -> PastebinService:
        return self.forums[Forum.PASTEBIN]  # type: ignore[return-value]


def build_world(config: Optional[ScenarioConfig] = None) -> World:
    """Assemble the full synthetic ecosystem from a config."""
    config = config or ScenarioConfig()
    clock = SimClock()
    countries = default_countries()
    operators = default_operators()
    brands = default_brands()
    templates = default_templates()
    tlds = default_registry()
    as_registry = AsRegistry()

    ledger = NumberLedger()
    number_factory = NumberFactory(
        derive(config.seed, "numbers"), countries=countries, ledger=ledger
    )
    infrastructure = InfrastructureBuilder(
        derive(config.seed, "infra"),
        as_registry=as_registry,
        tld_registry=tlds,
        apk_fraction=config.apk_campaign_fraction,
    )
    factory = CampaignFactory(
        derive(config.seed, "campaigns"),
        infrastructure=infrastructure,
        number_factory=number_factory,
        brands=brands,
        operators=operators,
        countries=countries,
        templates=templates,
        timeline=(config.timeline_start, config.timeline_end),
    )

    campaigns: List[Campaign] = []
    events: List[SmishingEvent] = []
    event_rng = derive(config.seed, "events")
    volume_rng = derive(config.seed, "volumes")
    # Guarantee coverage: the first few campaigns walk through every scam
    # type once, so small worlds still exhibit all eight categories.
    from ..types import ScamType

    forced_types = list(ScamType)
    for index in range(config.n_campaigns):
        volume = max(3, int(volume_rng.expovariate(1 / config.mean_campaign_volume)))
        forced = forced_types[index] if index < len(forced_types) else None
        if forced is not None:
            volume = max(volume, 15)
        campaign = factory.create_campaign(scam_type=forced, volume=volume)
        campaigns.append(campaign)
        events.extend(campaign.generate_events(event_rng))
    if config.include_sbi_burst:
        burst = factory.create_sbi_burst_campaign(volume=config.sbi_burst_volume)
        campaigns.append(burst)
        events.extend(burst.generate_events(event_rng))

    renderer = ScreenshotRenderer(derive(config.seed, "renderer"))
    population = ReporterPopulation(derive(config.seed, "reporters"), renderer)
    reporter_output = population.generate(events)
    # Hostile posts draw from their own RNG stream, after the clean
    # population is complete — the clean posts are byte-identical with
    # and without hostility (the differential harness's foundation).
    hostile_posts = generate_hostile_posts(
        config.seed, reporter_output.report_count, config.hostile
    )
    for post in hostile_posts:
        reporter_output.add(post)
    reporter_output.hostile_count = len(hostile_posts)

    forums: Dict[Forum, ForumService] = {
        Forum.TWITTER: TwitterService(),
        Forum.REDDIT: RedditService(),
        Forum.SMISHTANK: SmishtankService(),
        Forum.SMISHING_EU: SmishingEuService(),
        Forum.PASTEBIN: PastebinService(),
    }
    for forum, posts in reporter_output.posts_by_forum.items():
        forums[forum].add_posts(posts)

    webhost = WebHostService(infrastructure.assets)
    virustotal = VirusTotalService(
        clock=clock,
        apk_ground_truth=webhost.apk_ground_truth(),
        known_bad_hosts=[a.fqdn for a in infrastructure.assets if a.serves_apk],
    )
    world = World(
        config=config,
        clock=clock,
        countries=countries,
        operators=operators,
        brands=brands,
        templates=templates,
        tlds=tlds,
        as_registry=as_registry,
        ledger=ledger,
        infrastructure=infrastructure,
        campaigns=campaigns,
        events=events,
        reporter_output=reporter_output,
        forums=forums,
        hlr=HlrLookupService(ledger, clock=clock, countries=countries),
        whois=WhoisService(infrastructure.assets, clock=clock),
        crtsh=CrtShService(infrastructure.assets, clock=clock),
        passivedns=PassiveDnsService(infrastructure.assets, clock=clock),
        ipinfo=IpInfoService(as_registry, clock=clock),
        virustotal=virustotal,
        gsb=GoogleSafeBrowsingService(clock=clock),
        shortener_resolver=ShortenerResolver(
            [link for campaign in campaigns for link in campaign.links]
        ),
        webhost=webhost,
        androzoo=AndroZooService(config.androzoo_corpus_size),
        dns=DnsResolver(DnsZoneDatabase.from_assets(infrastructure.assets)),
    )
    return world
