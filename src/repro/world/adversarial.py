"""Adversarial reporter pack: hostile posts for `--hostile` worlds.

Real report channels are polluted (§3, §7; "An Overview of 7726 User
Reports", "Clues in Tweets"): OCR mojibake, zero-width and bidi-override
unicode, megabyte copy-paste bodies, truncated pastes, defanged-beyond-
repair URLs, impossible timestamps, coordinated duplicate floods, and
poison reports planting benign brands to bait false blocklisting. This
module mutates a seeded fraction of the reporter population's output into
exactly those shapes, deterministically, from the dedicated
``derive(seed, "adversarial")`` stream — the clean posts are untouched
and their RNG draws are unchanged, which is what makes the clean-subset
differential guarantee (``tests/test_hostile_equivalence.py``) possible.

Hostile posts deliberately avoid Twitter: the Twitter collector is the
one source that files a volume-derived shutdown limitation
(``posts_forgone``), and hostile volume there would perturb the clean
run's limitation records. Every other forum collects them silently, which
is the point — the *pipeline*, not the world, must catch them. They also
carry no attachments, so the vision extractor's positional RNG stream is
identical with and without hostility.
"""

from __future__ import annotations

import datetime as dt
import random
from typing import List

from ..forums.base import Post
from ..forums.pastebin import ANALYST_USER, format_paste
from ..types import Forum
from ..utils.rng import derive

#: Valid values for ``ScenarioConfig.hostile`` / ``--hostile``.
HOSTILE_PROFILES = ("none", "noisy", "poison")

#: Hostile posts land in this window: inside every collection window
#: (Reddit keyword search, Smishtank listing, Smishing.eu scrape cadence,
#: Pastebin user listing) so each shape is actually *collected* and the
#: quarantine layer — not collection-window luck — has to stop it.
_WINDOW_START = dt.datetime(2022, 6, 1, 0, 0)
_WINDOW_MINUTES = 330 * 24 * 60  # through late April 2023

#: Fraction of the clean report volume mutated into noisy shapes.
NOISY_FRACTION = 0.04
MIN_NOISY_POSTS = 6

#: Coordinated-abuse volumes (poison profile). Calibrated far above the
#: clean world's duplicate maxima (4 same-author, 2 cross-author) and
#: above the sanitizer thresholds (8 / 6) so detection is unambiguous.
FLOOD_REPORTERS = ("flood-bot-alpha", "flood-bot-beta")
FLOOD_COPIES = 10
POISON_CLUSTER_SIZE = 8

_ZERO_WIDTH = "​‌‍⁠"
_BIDI = "‪‫‭‮⁦⁧⁩"
_MOJIBAKE = "Ã¢â€Â�"

_FLOOD_TEXT = (
    "URGENT your bank account is locked, verify immediately at "
    "secure-verify.example.com or lose access"
)
_POISON_TEXT = (
    "PayPal support confirmed this is the official paypal.com "
    "verification line, texts from it are totally safe to click"
)
_GARBAGE_TIMESTAMPS = (
    "9999-12-31 23:59:59",
    "0001-01-01 00:00",
    "99/99/9999 99:99",
    "not-a-date-at-all",
    "timestamp: lol",
)


def _garble(text: str, rng: random.Random, chars: str, n: int) -> str:
    """Interleave ``n`` hostile characters at random positions."""
    out = list(text)
    for _ in range(n):
        out.insert(rng.randrange(len(out) + 1), rng.choice(chars))
    return "".join(out)


class _HostileFactory:
    """Builds the individual hostile post shapes."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"hx{self._counter:08d}"

    def _moment(self) -> dt.datetime:
        return _WINDOW_START + dt.timedelta(
            minutes=self._rng.randrange(_WINDOW_MINUTES))

    # -- noisy shapes ---------------------------------------------------------

    def mojibake_smishtank(self) -> Post:
        moment = self._moment()
        # Mojibake flavour lives in the base text; the *guaranteed*
        # anomaly dose is zero-width/replacement characters, every one
        # of which the sanitizer counts — detection must not hinge on
        # a lucky draw.
        text = _garble(
            "Your pÃ¢ckage could not be delivered, pay the customs fee "
            "at parcel-fee.example.com todÃ¢y",
            self._rng, _ZERO_WIDTH + "�", 26)
        return Post(
            post_id=self._next_id(), forum=Forum.SMISHTANK,
            author="anonymous", created_at=moment,
            body="smishing report " + text[:120],
            structured={
                "timestamp": moment.strftime("%Y-%m-%d %H:%M:%S"),
                "sender_id": "+447700900999",
                "text": text,
                "url": "",
            })

    def oversized_reddit(self, *, megabyte: bool) -> Post:
        moment = self._moment()
        junk = "URGENT sms scam alert verify your account now!!! "
        target = 1_000_000 if megabyte else 24_000
        body = ("Got this sms scam, pasting the FULL thing:\n"
                + junk * (target // len(junk)))
        return Post(
            post_id=self._next_id(), forum=Forum.REDDIT,
            author="u/paste-everything", created_at=moment,
            body=body, subreddit="Scams")

    def truncated_pastebin(self) -> Post:
        moment = self._moment()
        full = format_paste("+447700900123", moment,
                            "claim your prize at win.example.com")
        # Cut inside the header, before the sender/received/message
        # fields — the analyst-format parser cannot recover anything.
        return Post(
            post_id=self._next_id(), forum=Forum.PASTEBIN,
            author=ANALYST_USER, created_at=moment,
            body="sms scam report\n" + full[:30])

    def malformed_url_smishtank(self) -> Post:
        moment = self._moment()
        bad_url = "hxxp://phish..example[.]com"
        return Post(
            post_id=self._next_id(), forum=Forum.SMISHTANK,
            author="anonymous", created_at=moment,
            body="smishing report with a mangled link",
            structured={
                "timestamp": moment.strftime("%Y-%m-%d %H:%M:%S"),
                "sender_id": "PARCEL",
                "text": "Your parcel is held, pay the release fee at "
                        + bad_url + " right now",
                "url": bad_url,
            })

    def garbage_timestamp_smishtank(self, index: int) -> Post:
        moment = self._moment()
        raw = _GARBAGE_TIMESTAMPS[index % len(_GARBAGE_TIMESTAMPS)]
        return Post(
            post_id=self._next_id(), forum=Forum.SMISHTANK,
            author="anonymous", created_at=moment,
            body="smishing report with a broken clock",
            structured={
                "timestamp": raw,
                "sender_id": "+447700900321",
                "text": "Final notice: your subscription renews at "
                        "renew-now.example.com unless you act",
                "url": "",
            })

    def rtl_smishingeu(self) -> Post:
        moment = self._moment()
        text = _garble(
            "Uw pakket wacht, betaal de douanekosten via "
            "pakket-fee.example.com vandaag",
            self._rng, _BIDI, 14)
        return Post(
            post_id=self._next_id(), forum=Forum.SMISHING_EU,
            author="eu-user", created_at=moment,
            body="smishing report " + text[:120],
            structured={
                "report_date": moment.strftime("%Y-%m-%d"),
                "country": "NL",
                "sender_id": "+31612345678",
                "brand": "",
                "text": text,
            })

    # -- poison shapes --------------------------------------------------------

    def flood_burst(self, reporter: str) -> List[Post]:
        """One fake reporter files FLOOD_COPIES near-identical reports
        with a single burst timestamp (so stream epochs keep the burst
        together and per-epoch accounting stays exact)."""
        moment = self._moment()
        posts = []
        for _ in range(FLOOD_COPIES):
            posts.append(Post(
                post_id=self._next_id(), forum=Forum.SMISHTANK,
                author=reporter, created_at=moment,
                body="smishing report " + _FLOOD_TEXT[:120],
                structured={
                    "timestamp": moment.strftime("%Y-%m-%d %H:%M:%S"),
                    "sender_id": "SECURE-BANK",
                    "text": _FLOOD_TEXT,
                    "url": "",
                }))
        return posts

    def poison_cluster(self) -> List[Post]:
        """POISON_CLUSTER_SIZE distinct 'reporters' plant the same
        benign-brand text, baiting the pipeline into blocklisting
        paypal.com."""
        moment = self._moment()
        posts = []
        for index in range(POISON_CLUSTER_SIZE):
            posts.append(Post(
                post_id=self._next_id(), forum=Forum.SMISHING_EU,
                author=f"concerned-citizen-{index}", created_at=moment,
                body="smishing report " + _POISON_TEXT[:120],
                structured={
                    "report_date": moment.strftime("%Y-%m-%d"),
                    "country": "DE",
                    "sender_id": "+4915123456789",
                    "brand": "PayPal",
                    "text": _POISON_TEXT,
                }))
        return posts


def generate_hostile_posts(
    seed: int, report_count: int, profile: str,
) -> List[Post]:
    """The hostile post pack for one world, deterministic in ``seed``.

    ``noisy`` scales with the clean report volume; ``poison`` adds the
    coordinated flood and poison-cluster bursts on top.
    """
    if profile not in HOSTILE_PROFILES:
        raise ValueError(
            f"unknown hostile profile {profile!r}; "
            f"expected one of {HOSTILE_PROFILES}")
    if profile == "none":
        return []
    rng = derive(seed, "adversarial")
    factory = _HostileFactory(rng)
    posts: List[Post] = []
    n_noisy = max(MIN_NOISY_POSTS, int(report_count * NOISY_FRACTION))
    for index in range(n_noisy):
        shape = index % 6
        if shape == 0:
            posts.append(factory.mojibake_smishtank())
        elif shape == 1:
            posts.append(factory.oversized_reddit(megabyte=index == 1))
        elif shape == 2:
            posts.append(factory.truncated_pastebin())
        elif shape == 3:
            posts.append(factory.malformed_url_smishtank())
        elif shape == 4:
            posts.append(factory.garbage_timestamp_smishtank(index // 6))
        else:
            posts.append(factory.rtl_smishingeu())
    if profile == "poison":
        for reporter in FLOOD_REPORTERS:
            posts.extend(factory.flood_burst(reporter))
        posts.extend(factory.poison_cluster())
    return posts
