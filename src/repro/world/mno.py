"""Mobile network operator registry.

Calibrated to Table 4: Vodafone operates (and is abused) across 18
countries, Airtel across India and several African/Asian markets, and so
on. Each country also gets generic local operators so that the long tail
exists. The HLR simulator reports these operators as the *original* MNO of
a number (§3.3.1 — the paper only trusts the original operator because
numbers get recycled).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import NotFound
from ..utils.rng import WeightedSampler


@dataclass(frozen=True)
class Operator:
    """A mobile network operator and its country footprint."""

    name: str
    countries: Tuple[str, ...]
    #: Relative likelihood that a scammer sources numbers from this
    #: operator (drives Table 4's ranking).
    abuse_weight: float = 1.0

    def operates_in(self, iso3: str) -> bool:
        return iso3 in self.countries


#: Multi-country and flagship operators, weights shaped to Table 4.
_NAMED_OPERATORS: List[Operator] = [
    Operator("Vodafone", ("ESP", "IND", "GBR", "NLD", "AUS", "CZE", "DEU",
                          "GHA", "HUN", "IRL", "ITA", "NZL", "PRT", "QAT",
                          "ROU", "TUR", "UKR", "ZAF"), abuse_weight=13.3),
    Operator("AirTel", ("IND", "COD", "KEN", "LKA", "MWI", "NGA"), abuse_weight=10.9),
    Operator("BSNL Mobile", ("IND",), abuse_weight=7.7),
    Operator("Reliance Jio", ("IND",), abuse_weight=5.6),
    Operator("O2", ("GBR", "DEU", "IRL"), abuse_weight=4.9),
    Operator("T-Mobile", ("USA", "NLD", "CZE"), abuse_weight=4.5),
    Operator("Lycamobile", ("NLD", "BEL", "ESP", "FRA", "AUS", "DEU", "IRL"),
             abuse_weight=3.0),
    Operator("SFR", ("FRA", "GLP"), abuse_weight=2.2),
    Operator("KPN Mobile", ("NLD",), abuse_weight=2.2),
    Operator("EE Limited", ("GBR",), abuse_weight=2.1),
    Operator("Verizon", ("USA",), abuse_weight=1.9),
    Operator("AT&T", ("USA",), abuse_weight=1.8),
    Operator("Orange", ("FRA", "ESP", "BEL", "ROU", "POL"), abuse_weight=1.7),
    Operator("Telstra", ("AUS",), abuse_weight=1.2),
    Operator("Optus", ("AUS",), abuse_weight=1.0),
    Operator("Telkomsel", ("IDN",), abuse_weight=1.4),
    Operator("Indosat Ooredoo", ("IDN",), abuse_weight=0.9),
    Operator("Proximus", ("BEL",), abuse_weight=0.8),
    Operator("Base", ("BEL",), abuse_weight=0.5),
    Operator("Movistar", ("ESP", "MEX", "ARG", "CHL", "COL"), abuse_weight=1.6),
    Operator("Three", ("GBR", "IRL"), abuse_weight=0.9),
    Operator("Deutsche Telekom", ("DEU",), abuse_weight=0.8),
    Operator("Telefonica DE", ("DEU",), abuse_weight=0.4),
    Operator("NTT Docomo", ("JPN",), abuse_weight=0.6),
    Operator("SoftBank", ("JPN",), abuse_weight=0.4),
    Operator("Vi India", ("IND",), abuse_weight=2.4),
    Operator("TIM", ("ITA", "BRA"), abuse_weight=0.7),
    Operator("WindTre", ("ITA",), abuse_weight=0.5),
    Operator("MEO", ("PRT",), abuse_weight=0.4),
    Operator("NOS", ("PRT",), abuse_weight=0.3),
    Operator("Safaricom", ("KEN",), abuse_weight=0.5),
    Operator("MTN", ("NGA", "ZAF", "GHA"), abuse_weight=0.7),
    Operator("Globe Telecom", ("PHL",), abuse_weight=0.5),
    Operator("Smart", ("PHL",), abuse_weight=0.4),
    Operator("Maxis", ("MYS",), abuse_weight=0.3),
    Operator("Singtel", ("SGP",), abuse_weight=0.3),
    Operator("AIS", ("THA",), abuse_weight=0.3),
    Operator("Viettel", ("VNM",), abuse_weight=0.3),
    Operator("China Mobile", ("CHN",), abuse_weight=0.2),
    Operator("Jazz", ("PAK",), abuse_weight=0.3),
    Operator("Grameenphone", ("BGD",), abuse_weight=0.2),
    Operator("MTS", ("RUS",), abuse_weight=0.2),
    Operator("Turkcell", ("TUR",), abuse_weight=0.3),
    Operator("Etisalat", ("ARE", "EGY"), abuse_weight=0.3),
    Operator("STC", ("SAU",), abuse_weight=0.2),
    Operator("Telia", ("SWE", "FIN"), abuse_weight=0.2),
    Operator("Telenor", ("NOR", "DNK"), abuse_weight=0.2),
    Operator("Cosmote", ("GRC",), abuse_weight=0.2),
    Operator("Swisscom", ("CHE",), abuse_weight=0.2),
    Operator("A1", ("AUT",), abuse_weight=0.2),
    Operator("Rogers", ("CAN",), abuse_weight=0.3),
    Operator("Bell", ("CAN",), abuse_weight=0.2),
    Operator("Claro", ("BRA", "ARG", "CHL", "COL", "MEX"), abuse_weight=0.6),
    Operator("Kyivstar", ("UKR",), abuse_weight=0.2),
    Operator("Play", ("POL",), abuse_weight=0.2),
    Operator("SK Telecom", ("KOR",), abuse_weight=0.2),
    Operator("CSL", ("HKG",), abuse_weight=0.2),
    Operator("Pelephone", ("ISR",), abuse_weight=0.1),
    Operator("Maroc Telecom", ("MAR",), abuse_weight=0.2),
    Operator("Magyar Telekom", ("HUN",), abuse_weight=0.2),
    Operator("Vodacom", ("ZAF", "COD"), abuse_weight=0.3),
    Operator("Dialog", ("LKA",), abuse_weight=0.2),
    Operator("TNM", ("MWI",), abuse_weight=0.1),
    Operator("Ooredoo", ("QAT",), abuse_weight=0.1),
    Operator("Spark", ("NZL",), abuse_weight=0.1),
]


class OperatorRegistry:
    """All operators, indexed by name and by country."""

    def __init__(self, operators: Optional[List[Operator]] = None):
        self._by_name: Dict[str, Operator] = {}
        self._by_country: Dict[str, List[Operator]] = {}
        for operator in operators if operators is not None else _NAMED_OPERATORS:
            self.add(operator)

    def add(self, operator: Operator) -> None:
        self._by_name[operator.name] = operator
        for iso3 in operator.countries:
            self._by_country.setdefault(iso3, []).append(operator)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def get(self, name: str) -> Operator:
        try:
            return self._by_name[name]
        except KeyError:
            raise NotFound(f"unknown operator: {name!r}", service="mno") from None

    def in_country(self, iso3: str) -> List[Operator]:
        """Operators with a network in ``iso3`` (possibly empty)."""
        return list(self._by_country.get(iso3, []))

    def abuse_sampler(self) -> WeightedSampler:
        """Sampler over (operator, country) pairs weighted by abuse rates.

        A multi-country operator's weight is split across its footprint
        with a bias towards its first-listed (home/top) market, mirroring
        how Table 4 shows Vodafone abuse concentrated in a few countries.
        """
        weights: Dict[Tuple[str, str], float] = {}
        for operator in self._by_name.values():
            n = len(operator.countries)
            for rank, iso3 in enumerate(operator.countries):
                share = 1.0 / (rank + 1)
                weights[(operator.name, iso3)] = (
                    operator.abuse_weight * share / sum(1.0 / (r + 1) for r in range(n))
                )
        return WeightedSampler(weights)

    def pick_for_country(self, iso3: str, rng: random.Random) -> Operator:
        """Pick an operator serving ``iso3``, abuse-weighted.

        A multi-country operator's global abuse weight is spread across
        its footprint so one pan-European brand does not dominate every
        national market it merely has a presence in.
        """
        candidates = self.in_country(iso3)
        if not candidates:
            raise NotFound(f"no operators in {iso3}", service="mno")
        weights = {
            op.name: op.abuse_weight / len(op.countries) ** 0.75
            for op in candidates
        }
        sampler = WeightedSampler(weights)
        return self._by_name[sampler.sample(rng)]


_DEFAULT: Optional[OperatorRegistry] = None


def default_operators() -> OperatorRegistry:
    """Shared operator registry instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = OperatorRegistry()
    return _DEFAULT
