"""Reporter population: turns received smishes into public forum posts.

Users who receive a smish sometimes report it publicly (§3.1): most post a
screenshot on Twitter with a warning, a few use Reddit, the dedicated
sites (Smishtank, Smishing.eu) take structured reports, and one
threat-intel analyst publishes Pastebin pastes. The population also
produces the *noise* the pipeline must survive: keyword-matching chatter
without attachments, awareness posters, mistaken e-mail screenshots,
duplicate reports of the same campaign text, and post deletions.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..forums.base import COLLECTION_KEYWORDS, Post
from ..forums.pastebin import ANALYST_USER, format_paste
from ..forums.reddit import KNOWN_SUBREDDITS
from ..imaging.renderer import ScreenshotRenderer
from ..sms.message import SmishingEvent
from ..types import Forum
from ..utils.rng import WeightedSampler, sample_zipf

#: Forum share of reported messages (Table 1's message column).
FORUM_WEIGHTS: Dict[Forum, float] = {
    Forum.TWITTER: 92.1,
    Forum.SMISHTANK: 6.0,
    Forum.REDDIT: 1.1,
    Forum.SMISHING_EU: 0.4,
    Forum.PASTEBIN: 0.4,
}

#: How many separate reports one event attracts (duplicates inflate the
#: total-vs-unique gap in Table 1).
REPORT_COUNT_WEIGHTS: Dict[int, float] = {0: 0.22, 1: 0.62, 2: 0.12, 3: 0.04}

_COMMENTARY = (
    "Just got this {kw} text, stay safe everyone!",
    "Reporting this {kw} — @{brand} is this really you?",
    "Another day another {kw}. When will operators block these?",
    "PSA: {kw} doing the rounds again. Do not click!",
    "Is this legit or {kw}? Got it this morning.",
    "My gran nearly fell for this {kw}, sharing so you don't.",
)

_CHATTER = (
    "Thread: how to protect your parents from smishing and sms scam texts.",
    "We're hiring an analyst to work on phishing sms detection!",
    "New blog post: the anatomy of an sms scam campaign.",
    "Reminder that you can forward any sms fraud to 7726 for free.",
    "Great talk today on smishing trends in 2023.",
    "Why is sms fraud still so easy in 2022? A rant.",
    "Has anyone else noticed more phishing sms since the breach?",
)

_HANDLES = (
    "alex_sec", "jmartin", "priya.k", "scamwatcher", "0xdefender",
    "maria_g", "tomh", "nlwaarschuwing", "infosec_amy", "davidb",
)


@dataclass
class ReporterOutput:
    """Everything the population produced, routed per forum."""

    posts_by_forum: Dict[Forum, List[Post]] = field(default_factory=dict)
    report_count: int = 0
    chatter_count: int = 0
    decoy_count: int = 0
    #: Adversarial posts appended by :mod:`repro.world.adversarial`
    #: (zero unless the scenario runs with ``hostile != "none"``).
    hostile_count: int = 0

    def add(self, post: Post) -> None:
        self.posts_by_forum.setdefault(post.forum, []).append(post)

    def all_posts(self) -> List[Post]:
        result: List[Post] = []
        for posts in self.posts_by_forum.values():
            result.extend(posts)
        return result


class ReporterPopulation:
    """Generates forum posts from ground-truth events."""

    def __init__(
        self,
        rng: random.Random,
        renderer: ScreenshotRenderer,
        *,
        chatter_ratio: float = 2.4,
        decoy_ratio: float = 0.06,
        deletion_rate: float = 0.03,
        keyword_miss_rate: float = 0.08,
    ):
        self._rng = rng
        self._renderer = renderer
        self._chatter_ratio = chatter_ratio
        self._decoy_ratio = decoy_ratio
        self._deletion_rate = deletion_rate
        self._keyword_miss_rate = keyword_miss_rate
        self._forum_sampler = WeightedSampler(FORUM_WEIGHTS)
        self._report_count_sampler = WeightedSampler(REPORT_COUNT_WEIGHTS)
        self._post_counter = 0

    def _next_post_id(self, forum: Forum) -> str:
        self._post_counter += 1
        prefix = {
            Forum.TWITTER: "tw", Forum.REDDIT: "rd", Forum.SMISHTANK: "st",
            Forum.SMISHING_EU: "eu", Forum.PASTEBIN: "pb",
        }[forum]
        return f"{prefix}{self._post_counter:08d}"

    def _report_moment(self, event: SmishingEvent) -> dt.datetime:
        delay_hours = self._rng.expovariate(1 / 18.0)
        delay_hours = min(delay_hours, 24 * 7.0)
        return event.received_at + dt.timedelta(hours=delay_hours)

    def _commentary(self, event: SmishingEvent) -> str:
        keyword = self._rng.choice(COLLECTION_KEYWORDS)
        if self._rng.random() < self._keyword_miss_rate:
            keyword = "scam text"  # report invisible to keyword collection
        template = self._rng.choice(_COMMENTARY)
        brand = (event.brand or "operator").replace(" ", "")
        return template.format(kw=keyword, brand=brand)

    # -- per-forum report builders ------------------------------------------------

    def _twitter_report(self, event: SmishingEvent) -> List[Post]:
        moment = self._report_moment(event)
        author = self._rng.choice(_HANDLES) + str(self._rng.randrange(1000))
        screenshot = self._renderer.render_event(event, captured_at=moment)
        posts: List[Post] = []
        if self._rng.random() < 0.18:
            # Keyword appears in a reply; the screenshot sits on the
            # original tweet (§3.1.1 collects both).
            original = Post(
                post_id=self._next_post_id(Forum.TWITTER),
                forum=Forum.TWITTER,
                author=author,
                created_at=moment,
                body=f"@{(event.brand or 'support').replace(' ', '')} got this today, is it you?",
                attachments=[screenshot],
                language=event.language,
                truth_event_id=event.event_id,
            )
            reply = Post(
                post_id=self._next_post_id(Forum.TWITTER),
                forum=Forum.TWITTER,
                author=self._rng.choice(_HANDLES),
                created_at=moment + dt.timedelta(minutes=self._rng.randrange(2, 240)),
                body=self._commentary(event),
                language="en",
                truth_event_id=event.event_id,
                in_reply_to=original.post_id,
            )
            posts.extend([original, reply])
        else:
            body = self._commentary(event)
            if self._rng.random() < 0.25 and event.message.text:
                # Some users paste the smishing text into the tweet body.
                body += ' Text was: "' + event.message.text[:180] + '"'
            posts.append(Post(
                post_id=self._next_post_id(Forum.TWITTER),
                forum=Forum.TWITTER,
                author=author,
                created_at=moment,
                body=body,
                attachments=[screenshot],
                language=event.language,
                truth_event_id=event.event_id,
            ))
        for post in posts:
            post.deleted = self._rng.random() < self._deletion_rate
        return posts

    def _reddit_report(self, event: SmishingEvent) -> List[Post]:
        moment = self._report_moment(event)
        subreddit = KNOWN_SUBREDDITS[
            sample_zipf(self._rng, len(KNOWN_SUBREDDITS), 1.3)
        ]
        screenshot = self._renderer.render_event(event, captured_at=moment)
        body = (
            f"{self._commentary(event)}\n\nGot this SMS today "
            f"({event.message.recipient_country}). Anyone else?"
        )
        return [Post(
            post_id=self._next_post_id(Forum.REDDIT),
            forum=Forum.REDDIT,
            author="u/" + self._rng.choice(_HANDLES),
            created_at=moment,
            body=body,
            attachments=[screenshot] if self._rng.random() < 0.82 else [],
            language=event.language,
            truth_event_id=event.event_id,
            subreddit=subreddit,
        )]

    def _smishtank_report(self, event: SmishingEvent) -> List[Post]:
        moment = self._report_moment(event)
        attach = [self._renderer.render_event(event, captured_at=moment)] if self._rng.random() < 0.85 else []
        structured = {
            "timestamp": moment.strftime("%Y-%m-%d %H:%M:%S"),
            "sender_id": event.sender.raw if self._rng.random() > 0.05 else "",
            "text": event.message.text,
            "url": str(event.url) if event.url else "",
        }
        return [Post(
            post_id=self._next_post_id(Forum.SMISHTANK),
            forum=Forum.SMISHTANK,
            author="anonymous",
            created_at=moment,
            body="smishing report " + event.message.text[:120],
            attachments=attach,
            language=event.language,
            truth_event_id=event.event_id,
            structured=structured,
        )]

    def _smishingeu_report(self, event: SmishingEvent) -> List[Post]:
        moment = self._report_moment(event)
        structured = {
            # The form asks for the date the smish was *received* (§3.3.2
            # notes these reports carry the date but not the time of day).
            "report_date": event.received_at.strftime("%Y-%m-%d"),
            "country": event.message.recipient_country,
            "sender_id": event.sender.raw,
            "brand": event.brand or "",
            "text": event.message.text,
        }
        return [Post(
            post_id=self._next_post_id(Forum.SMISHING_EU),
            forum=Forum.SMISHING_EU,
            author="eu-user",
            created_at=moment,
            body="smishing report " + event.message.text[:120],
            language=event.language,
            truth_event_id=event.event_id,
            structured=structured,
        )]

    def _pastebin_report(self, event: SmishingEvent) -> List[Post]:
        moment = self._report_moment(event)
        body = format_paste(event.sender.raw, event.received_at,
                            event.message.text)
        return [Post(
            post_id=self._next_post_id(Forum.PASTEBIN),
            forum=Forum.PASTEBIN,
            author=ANALYST_USER,
            created_at=moment,
            body="sms scam report\n" + body,
            language=event.language,
            truth_event_id=event.event_id,
        )]

    # -- population-level generation --------------------------------------------------

    def report_event(self, event: SmishingEvent, output: ReporterOutput) -> None:
        """Produce 0..3 reports for one event."""
        count = self._report_count_sampler.sample(self._rng)
        for _ in range(count):
            forum = self._forum_sampler.sample(self._rng)
            builder = {
                Forum.TWITTER: self._twitter_report,
                Forum.REDDIT: self._reddit_report,
                Forum.SMISHTANK: self._smishtank_report,
                Forum.SMISHING_EU: self._smishingeu_report,
                Forum.PASTEBIN: self._pastebin_report,
            }[forum]
            for post in builder(event):
                output.add(post)
            output.report_count += 1

    def _chatter_post(self, when: dt.datetime) -> Post:
        forum = Forum.TWITTER if self._rng.random() < 0.93 else Forum.REDDIT
        post = Post(
            post_id=self._next_post_id(forum),
            forum=forum,
            author=self._rng.choice(_HANDLES),
            created_at=when,
            body=self._rng.choice(_CHATTER),
            subreddit="cybersecurity" if forum is Forum.REDDIT else None,
        )
        return post

    def _decoy_post(self, when: dt.datetime) -> Post:
        forum = Forum.TWITTER if self._rng.random() < 0.9 else Forum.REDDIT
        return Post(
            post_id=self._next_post_id(forum),
            forum=forum,
            author=self._rng.choice(_HANDLES),
            created_at=when,
            body="sharing this about smishing / sms scam awareness",
            attachments=[self._renderer.render_decoy()],
            subreddit="Scams" if forum is Forum.REDDIT else None,
        )

    def generate(
        self,
        events: Sequence[SmishingEvent],
        *,
        timeline: Optional[Sequence[dt.datetime]] = None,
    ) -> ReporterOutput:
        """Reports + chatter + decoys for a batch of events."""
        output = ReporterOutput()
        for event in events:
            self.report_event(event, output)
        moments = timeline or [e.received_at for e in events]
        if moments:
            chatter_n = int(output.report_count * self._chatter_ratio)
            for _ in range(chatter_n):
                when = self._rng.choice(moments) + dt.timedelta(
                    hours=self._rng.randrange(0, 72)
                )
                output.add(self._chatter_post(when))
                output.chatter_count += 1
            decoy_n = int(output.report_count * self._decoy_ratio)
            for _ in range(decoy_n):
                when = self._rng.choice(moments) + dt.timedelta(
                    hours=self._rng.randrange(0, 72)
                )
                output.add(self._decoy_post(when))
                output.decoy_count += 1
        return output
