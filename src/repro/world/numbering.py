"""Phone-number generation against per-country numbering plans.

The generator issues E.164 numbers of every flavour Table 3 observes:
ordinary mobile lines, mobile-or-landline ranges, VoIP, toll-free, pagers,
landlines (suspicious as SMS senders), voicemail-only lines, and outright
*bad-format* spoofed strings with more digits than any plan allows.

Issued numbers are recorded in a :class:`NumberLedger`, which the HLR
service (:mod:`repro.services.hlr`) uses as its subscriber database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import ValidationError
from ..types import LineStatus, PhoneNumberType
from ..utils.rng import WeightedSampler, weighted_choice
from .geography import Country, CountryRegistry, default_countries
from .mno import Operator


@dataclass(frozen=True)
class IssuedNumber:
    """One number the world has issued, with its HLR ground truth."""

    e164: str  # digits with leading '+'
    country_iso3: str
    number_type: PhoneNumberType
    original_operator: Optional[str]
    current_operator: Optional[str]
    status: LineStatus

    @property
    def digits(self) -> str:
        return self.e164.lstrip("+")


#: Distribution of number types among *scammer sender IDs*, calibrated to
#: Table 3 (n=12,299). Bad Format is generated separately by
#: :meth:`NumberFactory.bad_format_number`.
SENDER_TYPE_WEIGHTS: Dict[PhoneNumberType, float] = {
    PhoneNumberType.MOBILE: 66.7,
    PhoneNumberType.MOBILE_OR_LANDLINE: 2.3,
    PhoneNumberType.VOIP: 2.0,
    PhoneNumberType.TOLL_FREE: 0.6,
    PhoneNumberType.PAGER: 0.1,
    PhoneNumberType.UNIVERSAL_ACCESS: 0.05,
    PhoneNumberType.PERSONAL: 0.02,
    PhoneNumberType.OTHER: 0.1,
    PhoneNumberType.BAD_FORMAT: 24.3,
    PhoneNumberType.LANDLINE: 3.8,
    PhoneNumberType.VOICEMAIL_ONLY: 0.02,
}

#: Special-service leading digits layered on top of the country plan.
_SERVICE_PREFIXES: Dict[PhoneNumberType, str] = {
    PhoneNumberType.VOIP: "560",
    PhoneNumberType.TOLL_FREE: "800",
    PhoneNumberType.PAGER: "740",
    PhoneNumberType.UNIVERSAL_ACCESS: "300",
    PhoneNumberType.PERSONAL: "700",
    PhoneNumberType.OTHER: "990",
    PhoneNumberType.VOICEMAIL_ONLY: "170",
}

#: Live/inactive/dead mix for issued lines. Table 14 shows only a minority
#: of sender numbers are still live by lookup time.
_STATUS_WEIGHTS: Dict[LineStatus, float] = {
    LineStatus.LIVE: 0.25,
    LineStatus.INACTIVE: 0.45,
    LineStatus.DEAD: 0.30,
}


class NumberLedger:
    """Registry of every number the world has issued (the HLR database)."""

    def __init__(self) -> None:
        self._by_digits: Dict[str, IssuedNumber] = {}

    def register(self, number: IssuedNumber) -> None:
        self._by_digits[number.digits] = number

    def lookup(self, digits: str) -> Optional[IssuedNumber]:
        return self._by_digits.get(digits.lstrip("+"))

    def __len__(self) -> int:
        return len(self._by_digits)

    def __iter__(self) -> Iterable[IssuedNumber]:
        return iter(self._by_digits.values())


class NumberFactory:
    """Issues unique numbers from country plans and records ground truth."""

    def __init__(
        self,
        rng: random.Random,
        *,
        countries: Optional[CountryRegistry] = None,
        ledger: Optional[NumberLedger] = None,
    ):
        self._rng = rng
        self._countries = countries or default_countries()
        self.ledger = ledger if ledger is not None else NumberLedger()
        self._issued: set = set()
        self._type_sampler = WeightedSampler(SENDER_TYPE_WEIGHTS)

    def _unique_digits(self, dial_code: str, national: str) -> str:
        digits = dial_code + national
        attempt = 0
        while digits in self._issued:
            # Nudge the last digits until unique; deterministic under seed.
            attempt += 1
            tail = str((int(national[-4:]) + attempt) % 10000).zfill(4)
            digits = dial_code + national[:-4] + tail
        self._issued.add(digits)
        return digits

    def _national_number(self, country: Country, prefix: str) -> str:
        body_len = country.national_length - len(prefix)
        if body_len < 0:
            raise ValidationError(
                f"prefix {prefix!r} longer than plan for {country.iso3}"
            )
        body = "".join(str(self._rng.randrange(10)) for _ in range(body_len))
        return prefix + body

    def mobile_number(
        self,
        country: Country,
        operator: Operator,
        *,
        status: Optional[LineStatus] = None,
        number_type: PhoneNumberType = PhoneNumberType.MOBILE,
    ) -> IssuedNumber:
        """Issue a mobile (or mobile-or-landline) line on an operator."""
        prefix = self._rng.choice(country.mobile_prefixes)
        national = self._national_number(country, prefix)
        digits = self._unique_digits(country.dial_code, national)
        issued = IssuedNumber(
            e164="+" + digits,
            country_iso3=country.iso3,
            number_type=number_type,
            original_operator=operator.name,
            current_operator=self._maybe_recycled_operator(country, operator),
            status=status or weighted_choice(self._rng, _STATUS_WEIGHTS),
        )
        self.ledger.register(issued)
        return issued

    def _maybe_recycled_operator(
        self, country: Country, original: Operator
    ) -> Optional[str]:
        """Numbers get recycled/ported; ~15% now sit on a different MNO.

        This is why the paper only reports the *original* operator.
        """
        if self._rng.random() >= 0.15:
            return original.name
        from .mno import default_operators

        candidates = [
            op for op in default_operators().in_country(country.iso3)
            if op.name != original.name
        ]
        if not candidates:
            return original.name
        return self._rng.choice(candidates).name

    def landline_number(self, country: Country) -> IssuedNumber:
        """A landline — cannot send SMS, so suspicious as a sender ID."""
        prefix = self._rng.choice(country.landline_prefixes)
        national = self._national_number(country, prefix)
        digits = self._unique_digits(country.dial_code, national)
        issued = IssuedNumber(
            e164="+" + digits,
            country_iso3=country.iso3,
            number_type=PhoneNumberType.LANDLINE,
            original_operator=None,
            current_operator=None,
            status=LineStatus.INACTIVE,
        )
        self.ledger.register(issued)
        return issued

    def service_number(
        self, country: Country, number_type: PhoneNumberType
    ) -> IssuedNumber:
        """VoIP / toll-free / pager / UAN / personal / voicemail lines."""
        prefix = _SERVICE_PREFIXES[number_type]
        length = max(country.national_length, len(prefix) + 4)
        body = "".join(str(self._rng.randrange(10)) for _ in range(length - len(prefix)))
        digits = self._unique_digits(country.dial_code, prefix + body)
        issued = IssuedNumber(
            e164="+" + digits,
            country_iso3=country.iso3,
            number_type=number_type,
            original_operator=None,
            current_operator=None,
            status=weighted_choice(self._rng, _STATUS_WEIGHTS),
        )
        self.ledger.register(issued)
        return issued

    def bad_format_number(self, country: Optional[Country] = None) -> IssuedNumber:
        """A spoofed sender: more digits than any valid plan (Table 3).

        These strings never existed in any HLR; the ledger records them so
        lookups can answer "Bad Format" deterministically.
        """
        if country is None:
            iso3 = self._rng.choice(self._countries.all_iso3())
            country = self._countries.get(iso3)
        extra = self._rng.randrange(2, 7)
        length = country.national_length + extra
        national = "".join(str(self._rng.randrange(10)) for _ in range(length))
        digits = self._unique_digits(country.dial_code, national)
        issued = IssuedNumber(
            e164="+" + digits,
            country_iso3=country.iso3,
            number_type=PhoneNumberType.BAD_FORMAT,
            original_operator=None,
            current_operator=None,
            status=LineStatus.DEAD,
        )
        self.ledger.register(issued)
        return issued

    def sender_number(
        self, country: Country, operator: Operator
    ) -> IssuedNumber:
        """Issue a sender number with the Table 3 type mix."""
        number_type = self._type_sampler.sample(self._rng)
        if number_type in (PhoneNumberType.MOBILE, PhoneNumberType.MOBILE_OR_LANDLINE):
            return self.mobile_number(country, operator, number_type=number_type)
        if number_type is PhoneNumberType.LANDLINE:
            return self.landline_number(country)
        if number_type is PhoneNumberType.BAD_FORMAT:
            return self.bad_format_number(country)
        return self.service_number(country, number_type)
