"""Campaign modelling: who sends what, from where, and when.

A :class:`Campaign` bundles one scam operation: a scam type, an
impersonated brand (for impersonation scams), a language, a sending
identity pool (mobile numbers on specific MNOs, alphanumeric shortcodes
via aggregators, or iMessage email addresses), web infrastructure, and a
sending schedule. :class:`CampaignFactory` draws campaigns from marginals
calibrated to the paper's Tables 3, 4, 10, 14 and Figures 2-3, and
:meth:`Campaign.generate_events` emits ground-truth
:class:`~repro.sms.message.SmishingEvent` records.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sms.message import SmishingEvent, SmsMessage
from ..sms.senderid import SenderId, classify_sender_id
from ..types import LurePrinciple, ScamType, SenderIdKind, URL_BEARING_SCAM_TYPES
from ..utils.rng import WeightedSampler, sample_zipf
from .brands import Brand, BrandRegistry, default_brands, leetify
from .geography import CountryRegistry, default_countries
from .infrastructure import InfrastructureBuilder, SmishingLink
from .mno import OperatorRegistry, default_operators
from .numbering import NumberFactory
from .templates import Template, TemplateLibrary, default_templates

# ---------------------------------------------------------------------------
# Calibrated marginals.
# ---------------------------------------------------------------------------

#: Scam-category mix (Table 10).
SCAM_TYPE_WEIGHTS: Dict[ScamType, float] = {
    ScamType.BANKING: 45.1,
    ScamType.DELIVERY: 11.3,
    ScamType.GOVERNMENT: 9.6,
    ScamType.TELECOM: 6.6,
    ScamType.WRONG_NUMBER: 0.9,
    ScamType.HEY_MUM_DAD: 0.8,
    ScamType.OTHERS: 20.6,
    ScamType.SPAM: 5.0,
}

#: Sender-ID kind mix (§4.1).
SENDER_KIND_WEIGHTS: Dict[SenderIdKind, float] = {
    SenderIdKind.PHONE_NUMBER: 65.6,
    SenderIdKind.ALPHANUMERIC: 30.7,
    SenderIdKind.EMAIL: 3.7,
}

#: Language skew of the dataset (Table 11): heavy English head.
LANGUAGE_WEIGHTS: Dict[str, float] = {
    "en": 65.2, "es": 13.7, "nl": 5.7, "fr": 3.4, "de": 2.4, "it": 1.9,
    "id": 1.0, "pt": 0.8, "ja": 0.8, "hi": 0.5, "pl": 0.4, "tr": 0.35,
    "ro": 0.3, "cs": 0.28, "ru": 0.25, "el": 0.2, "sv": 0.2, "da": 0.15,
    "no": 0.14, "fi": 0.13, "hu": 0.13, "tl": 0.3, "ms": 0.2, "th": 0.15,
    "vi": 0.14, "ko": 0.13, "zh": 0.15, "ar": 0.2, "uk": 0.12, "bg": 0.1,
    "hr": 0.08, "sk": 0.08, "sl": 0.06, "lt": 0.05, "lv": 0.05, "et": 0.04,
    "sr": 0.06, "he": 0.07, "fa": 0.06, "ur": 0.08, "sw": 0.06, "ca": 0.1,
    "ta": 0.07, "te": 0.06, "mr": 0.06, "gu": 0.05, "kn": 0.05, "ml": 0.05,
    "bn": 0.08, "si": 0.05,
}

#: Sender-number origin countries per scam type (Table 14 + Fig. 3).
ORIGIN_COUNTRY_BY_SCAM: Dict[ScamType, Dict[str, float]] = {
    ScamType.BANKING: {"IND": 55, "USA": 12, "GBR": 6, "NLD": 7, "ESP": 6,
                       "FRA": 4, "AUS": 3, "BEL": 2, "DEU": 2, "ITA": 2,
                       "PRT": 1, "IRL": 1, "IDN": 1, "BRA": 1},
    ScamType.DELIVERY: {"USA": 18, "GBR": 16, "NLD": 12, "ESP": 11,
                        "FRA": 10, "DEU": 6, "AUS": 6, "BEL": 4, "ITA": 4,
                        "CZE": 2, "JPN": 3, "IND": 3},
    ScamType.GOVERNMENT: {"GBR": 22, "USA": 18, "FRA": 16, "ESP": 8,
                          "NLD": 7, "AUS": 7, "DEU": 4, "BEL": 3, "IND": 4},
    ScamType.TELECOM: {"GBR": 20, "FRA": 18, "NLD": 12, "USA": 10,
                       "ESP": 9, "DEU": 6, "AUS": 5, "IND": 8, "BEL": 3},
    ScamType.WRONG_NUMBER: {"USA": 40, "JPN": 15, "IDN": 12, "GBR": 8,
                            "AUS": 6, "ESP": 5, "IND": 3},
    ScamType.HEY_MUM_DAD: {"GBR": 30, "AUS": 20, "DEU": 12, "NLD": 10,
                           "USA": 10, "ESP": 6, "IRL": 4, "NZL": 3},
    ScamType.OTHERS: {"USA": 30, "IDN": 14, "IND": 12, "GBR": 8, "NLD": 6,
                      "ESP": 5, "FRA": 5, "AUS": 4, "JPN": 3, "PHL": 3,
                      "BEL": 2, "DEU": 2},
    ScamType.SPAM: {"USA": 25, "IDN": 15, "IND": 12, "GBR": 10, "ESP": 8,
                    "PHL": 8, "NGA": 4, "KEN": 3},
}

#: Median send hour per weekday, minutes since midnight (Fig. 2).
_WEEKDAY_MEDIAN_MINUTES = {
    0: 12 * 60 + 38, 1: 12 * 60 + 26, 2: 14 * 60 + 36, 3: 14 * 60 + 24,
    4: 13 * 60 + 17, 5: 14 * 60 + 38, 6: 13 * 60 + 19,
}

#: Relative daily volume; weekdays dominate (§5.1).
_WEEKDAY_VOLUME = {0: 1.0, 1: 1.05, 2: 1.0, 3: 0.95, 4: 0.9, 5: 0.55, 6: 0.5}

_FIRST_NAMES = ("Anna", "Maria", "John", "Sam", "Alex", "Emma", "Lucas",
                "Sofia", "David", "Laura", "Tom", "Nina")
_CURRENCIES = {"IND": "₹", "USA": "$", "GBR": "£", "AUS": "$", "CAN": "$",
               "NZL": "$", "JPN": "¥", "IDN": "Rp", "CHE": "CHF"}


def _currency_for(language: str, country: str) -> str:
    return _CURRENCIES.get(country, "€" if language in
                           ("es", "nl", "fr", "de", "it", "pt", "el") else "$")


@dataclass
class SenderIdentity:
    """One sending identity a campaign rotates through."""

    sender: SenderId
    delivery_path: str  # "mno" | "aggregator" | "imessage" | "sim_farm" | "blaster"
    origin_country: Optional[str] = None
    operator: Optional[str] = None


@dataclass
class Campaign:
    """A single scam operation with its infrastructure and schedule."""

    campaign_id: str
    scam_type: ScamType
    brand: Optional[Brand]
    language: str
    target_country: str
    origin_country: str
    identities: List[SenderIdentity]
    links: List[SmishingLink]
    templates: List[Template]
    start: dt.date
    end: dt.date
    volume: int
    serves_apk: bool = False
    #: Fixed burst moment for flash campaigns (the 2021 SBI campaign sent
    #: >850 texts at Tue 2021-08-03 11:34, §5.1).
    burst_at: Optional[dt.datetime] = None

    def _sample_moment(self, rng: random.Random) -> dt.datetime:
        if self.burst_at is not None:
            jitter = dt.timedelta(seconds=rng.randrange(0, 50))
            return self.burst_at + jitter
        span_days = max((self.end - self.start).days, 1)
        for _ in range(32):
            day = self.start + dt.timedelta(days=rng.randrange(span_days))
            weekday = day.weekday()
            if rng.random() < _WEEKDAY_VOLUME[weekday] / 1.05:
                break
        median = _WEEKDAY_MEDIAN_MINUTES[day.weekday()]
        # Triangular-ish daytime distribution clipped to the day.
        minutes = int(rng.triangular(9 * 60 - 60, 21 * 60 + 30, median))
        minutes = max(0, min(24 * 60 - 1, minutes))
        second = rng.randrange(60)
        return dt.datetime.combine(day, dt.time(minutes // 60, minutes % 60, second))

    def _fill_slots(self, rng: random.Random, template: Template,
                    link: Optional[SmishingLink]) -> Dict[str, str]:
        amount = f"{rng.randrange(20, 2500)}" if rng.random() < 0.7 else (
            f"{rng.randrange(20, 900)}.{rng.randrange(10, 99)}"
        )
        brand_text = ""
        if self.brand is not None:
            roll = rng.random()
            if roll < 0.12 and self.brand.aliases:
                brand_text = rng.choice(self.brand.aliases)
            elif roll < 0.2:
                brand_text = leetify(self.brand.name, rng)
            else:
                brand_text = self.brand.name
        return {
            "brand": brand_text,
            "url": str(link.url) if link else "",
            "name": rng.choice(_FIRST_NAMES),
            "amount": amount,
            "currency": _currency_for(self.language, self.target_country),
            "code": f"{rng.randrange(100000, 999999)}",
            "tracking": f"{rng.choice('ABCDEFGH')}{rng.choice('JKLMNP')}"
                        f"{rng.randrange(10**8, 10**9)}",
            "phone": "",
        }

    def generate_events(
        self, rng: random.Random, count: Optional[int] = None
    ) -> List[SmishingEvent]:
        """Emit ``count`` (default: campaign volume) ground-truth events."""
        total = self.volume if count is None else count
        events: List[SmishingEvent] = []
        for index in range(total):
            identity = self.identities[sample_zipf(rng, len(self.identities), 0.8)]
            template = rng.choice(self.templates)
            link: Optional[SmishingLink] = None
            if template.needs_url and self.links:
                link = self.links[sample_zipf(rng, len(self.links), 0.9)]
            slots = self._fill_slots(rng, template, link)
            text = template.render(slots)
            translated = None
            if self.language != "en" and template.english_gloss:
                translated = template.english_gloss.format(**slots)
            moment = self._sample_moment(rng)
            message = SmsMessage(
                text=text,
                sender=identity.sender,
                received_at=moment,
                recipient_country=self.target_country,
                url=link.url if link else None,
            )
            events.append(
                SmishingEvent(
                    event_id=f"{self.campaign_id}-{index:06d}",
                    message=message,
                    campaign_id=self.campaign_id,
                    scam_type=self.scam_type,
                    language=self.language,
                    brand=self.brand.name if self.brand else None,
                    lures=template.lures,
                    translated_text=translated,
                    delivery_path=identity.delivery_path,
                    apk_payload=self.serves_apk and link is not None,
                )
            )
        return events


_ALNUM_STEMS = ("INFO", "ALERT", "NOTICE", "SECURE", "VERIFY", "MSG", "TEAM",
                "CARE", "BANK", "POST", "GOV", "PAY")
_EMAIL_DOMAINS = ("icloud.com", "gmail.com", "outlook.com", "mail.com",
                  "yandex.com", "proton.me")


class CampaignFactory:
    """Draws calibrated campaigns and their sending identities."""

    def __init__(
        self,
        rng: random.Random,
        *,
        infrastructure: InfrastructureBuilder,
        number_factory: NumberFactory,
        brands: Optional[BrandRegistry] = None,
        operators: Optional[OperatorRegistry] = None,
        countries: Optional[CountryRegistry] = None,
        templates: Optional[TemplateLibrary] = None,
        timeline: Tuple[dt.date, dt.date] = (dt.date(2017, 1, 1),
                                             dt.date(2023, 9, 30)),
    ):
        self._rng = rng
        self._infra = infrastructure
        self._numbers = number_factory
        self._brands = brands or default_brands()
        self._operators = operators or default_operators()
        self._countries = countries or default_countries()
        self._templates = templates or default_templates()
        self._timeline = timeline
        self._scam_sampler = WeightedSampler(SCAM_TYPE_WEIGHTS)
        self._kind_sampler = WeightedSampler(SENDER_KIND_WEIGHTS)
        self._language_sampler = WeightedSampler(LANGUAGE_WEIGHTS)
        self._origin_samplers = {
            scam: WeightedSampler(weights)
            for scam, weights in ORIGIN_COUNTRY_BY_SCAM.items()
        }
        self._counter = 0

    # -- identities ------------------------------------------------------------

    def _phone_identity(self, origin_iso3: str) -> SenderIdentity:
        country = self._countries.get(origin_iso3)
        try:
            operator = self._operators.pick_for_country(origin_iso3, self._rng)
        except Exception:
            operator = self._operators.get("Vodafone")
        issued = self._numbers.sender_number(country, operator)
        path = "mno"
        roll = self._rng.random()
        if roll < 0.06:
            path = "sim_farm"
        elif roll < 0.08:
            path = "blaster"
        return SenderIdentity(
            sender=classify_sender_id(issued.e164),
            delivery_path=path,
            origin_country=origin_iso3,
            operator=issued.original_operator,
        )

    def _alnum_identity(self, brand: Optional[Brand]) -> SenderIdentity:
        if brand is not None and self._rng.random() < 0.6:
            stem = "".join(ch for ch in brand.name.upper() if ch.isalnum())[:8]
        else:
            stem = self._rng.choice(_ALNUM_STEMS)
        suffix = self._rng.choice(("", "", str(self._rng.randrange(10, 99))))
        raw = (stem + suffix)[:11] or "INFO"
        return SenderIdentity(
            sender=classify_sender_id(raw), delivery_path="aggregator"
        )

    def _email_identity(self) -> SenderIdentity:
        local = "".join(
            self._rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
            for _ in range(self._rng.randrange(8, 14))
        )
        raw = f"{local}@{self._rng.choice(_EMAIL_DOMAINS)}"
        return SenderIdentity(sender=classify_sender_id(raw),
                              delivery_path="imessage")

    def _build_identities(
        self, scam_type: ScamType, origin_iso3: str, brand: Optional[Brand],
        pool_size: int
    ) -> List[SenderIdentity]:
        identities: List[SenderIdentity] = []
        for _ in range(pool_size):
            kind = self._kind_sampler.sample(self._rng)
            if scam_type.is_conversational:
                kind = SenderIdKind.PHONE_NUMBER  # conversations need a line
            if kind is SenderIdKind.PHONE_NUMBER:
                identities.append(self._phone_identity(origin_iso3))
            elif kind is SenderIdKind.ALPHANUMERIC:
                identities.append(self._alnum_identity(brand))
            else:
                identities.append(self._email_identity())
        return identities

    # -- campaign assembly -------------------------------------------------------

    def _pick_language(self, scam_type: ScamType, brand: Optional[Brand]) -> str:
        # Brands anchor language choice; global orgs skew English (§5.3).
        if brand is not None and self._rng.random() < 0.65:
            return self._rng.choice(brand.languages)
        return self._language_sampler.sample(self._rng)

    def _pick_target_country(
        self, brand: Optional[Brand], language: str, origin: str
    ) -> str:
        if brand is not None and brand.countries:
            return self._rng.choice(brand.countries)
        for country in self._countries:
            if language in country.languages and self._rng.random() < 0.5:
                return country.iso3
        return origin

    def create_campaign(
        self,
        *,
        scam_type: Optional[ScamType] = None,
        volume: Optional[int] = None,
    ) -> Campaign:
        """Draw one campaign from the calibrated marginals."""
        self._counter += 1
        campaign_id = f"c{self._counter:05d}"
        scam = scam_type or self._scam_sampler.sample(self._rng)
        brand: Optional[Brand] = None
        if not scam.is_conversational:
            try:
                brand_name = self._brands.sampler_for(scam).sample(self._rng)
                brand = self._brands.get(brand_name)
            except Exception:
                brand = None
        language = self._pick_language(scam, brand)
        origin_sampler = self._origin_samplers[scam]
        origin = origin_sampler.sample(self._rng)
        target = self._pick_target_country(brand, language, origin)
        start_floor, end_cap = self._timeline
        # Smishing volume grows over the collection years (Table 15):
        # later years are proportionally more likely campaign starts.
        years = list(range(start_floor.year, end_cap.year + 1))
        year_weights = {year: 1.0 + 0.45 * (year - years[0]) for year in years}
        year = WeightedSampler(year_weights).sample(self._rng)
        year_start = max(dt.date(year, 1, 1), start_floor)
        year_end = min(dt.date(year, 12, 31), end_cap - dt.timedelta(days=1))
        span = max((year_end - year_start).days, 1)
        start = year_start + dt.timedelta(days=self._rng.randrange(span))
        duration = self._rng.randrange(3, 45)
        end = min(start + dt.timedelta(days=duration), end_cap)
        if volume is None:
            volume = max(3, int(self._rng.expovariate(1 / 28.0)))
        identity_pool = max(1, min(12, volume // 4 + 1))
        identities = self._build_identities(scam, origin, brand, identity_pool)
        apk_fraction = getattr(self._infra, "_apk_fraction", 0.02)
        serves_apk = (
            scam in URL_BEARING_SCAM_TYPES
            and self._rng.random() < apk_fraction
        )
        links: List[SmishingLink] = []
        if scam in URL_BEARING_SCAM_TYPES:
            domain_count = max(1, min(6, volume // 12 + 1))
            for _ in range(domain_count):
                asset = self._infra.register_domain(
                    campaign_id, scam, brand.name if brand else None, start,
                    serves_apk=serves_apk,
                )
                links.append(self._infra.build_link(asset, scam))
        elif scam is ScamType.HEY_MUM_DAD and self._rng.random() < 0.5:
            # Conversation scams sometimes seed a wa.me link (§4.2).
            digits = identities[0].sender.digits or "447700900000"
            wa_url = self._infra.build_whatsapp_link(digits)
            links = []
            _ = wa_url  # wa.me links are attached via template-free path below
        templates = self._templates.templates(scam, language)
        return Campaign(
            campaign_id=campaign_id,
            scam_type=scam,
            brand=brand,
            language=language,
            target_country=target,
            origin_country=origin,
            identities=identities,
            links=links,
            templates=templates,
            start=start,
            end=end if end > start else start + dt.timedelta(days=1),
            volume=volume,
            serves_apk=serves_apk,
        )

    def create_sbi_burst_campaign(self, volume: int = 860) -> Campaign:
        """The August 2021 SBI flash campaign the paper excludes from Fig. 2."""
        self._counter += 1
        campaign_id = f"c{self._counter:05d}-sbi2021"
        brand = self._brands.get("State Bank of India")
        identities = self._build_identities(
            ScamType.BANKING, "IND", brand, pool_size=10
        )
        start = dt.date(2021, 8, 3)
        asset = self._infra.register_domain(
            campaign_id, ScamType.BANKING, brand.name, start
        )
        links = [self._infra.build_link(asset, ScamType.BANKING)
                 for _ in range(3)]
        return Campaign(
            campaign_id=campaign_id,
            scam_type=ScamType.BANKING,
            brand=brand,
            language="en",
            target_country="IND",
            origin_country="IND",
            identities=identities,
            links=links,
            templates=self._templates.templates(ScamType.BANKING, "en"),
            start=start,
            end=start + dt.timedelta(days=1),
            volume=volume,
            burst_at=dt.datetime(2021, 8, 3, 11, 34, 0),
        )
