"""Reproduction of "Fishing for Smishing" (IMC 2025).

A smishing-report mining, enrichment and measurement pipeline running over
a fully simulated ecosystem: scammer campaigns, mobile networks, web
infrastructure, five public forums, and every external service the paper
queries (HLR, WHOIS, crt.sh, passive DNS, VirusTotal, Google Safe
Browsing, a vision/annotation LLM).

Typical use::

    from repro import ScenarioConfig, build_world, run_pipeline
    from repro.analysis.report import generate_paper_report

    world = build_world(ScenarioConfig(seed=7726, n_campaigns=150))
    run = run_pipeline(world)
    print(generate_paper_report(run).render())

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-vs-measured comparison.
"""

from .core.pipeline import PipelineRun, run_pipeline
from .types import (
    Forum,
    LurePrinciple,
    PhoneNumberType,
    ScamType,
    SenderIdKind,
)
from .world.scenario import ScenarioConfig, World, build_world

__version__ = "1.0.0"

__all__ = [
    "Forum",
    "LurePrinciple",
    "PhoneNumberType",
    "PipelineRun",
    "ScamType",
    "ScenarioConfig",
    "SenderIdKind",
    "World",
    "build_world",
    "run_pipeline",
    "__version__",
]
