"""Deterministic fault injection for chaos-testing the pipeline.

The paper's collection survived real infrastructure failures by luck and
careful coding (§3.1); this package makes those failures *reproducible*
so the resilience layer (:mod:`repro.resilience`) is tested engineering,
not hope. It splits into two layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded immutable set
  of rules (transient bursts, sim-clock outage windows, per-call error
  rates, injected latency, hard :class:`CrashPoint` process deaths) plus
  the named CLI profiles (``none`` / ``flaky`` / ``outage``).
* :mod:`repro.faults.proxy` — :class:`FaultProxy`, the transparent
  wrapper that injects a plan's faults in front of any forum or
  enrichment service without the service knowing.

Same seed + same plan ⇒ byte-identical fault sequences.
"""

from .plan import (
    FAULT_PROFILES,
    CorruptPayload,
    CrashPoint,
    ErrorRate,
    FaultPlan,
    InjectedLatency,
    OutageWindow,
    TransientBurst,
    build_fault_plan,
)
from .proxy import DEFAULT_EXCLUDE, FaultProxy, inject_faults, wrap_if_planned

__all__ = [
    "FAULT_PROFILES",
    "DEFAULT_EXCLUDE",
    "CorruptPayload",
    "CrashPoint",
    "ErrorRate",
    "FaultPlan",
    "FaultProxy",
    "InjectedLatency",
    "OutageWindow",
    "TransientBurst",
    "build_fault_plan",
    "inject_faults",
    "wrap_if_planned",
]
