"""Fault-injecting proxies: chaos in front of unsuspecting services.

A :class:`FaultProxy` wraps any forum or enrichment service object and
consults a :class:`~repro.faults.plan.FaultPlan` before forwarding each
public method call. The wrapped service never knows: attribute reads and
writes pass through (collectors set ``service.query_time``, read
``service.meter``, take ``len(service)``), and a fault raised by the
plan means the underlying method — and therefore its meter charge —
never runs, exactly like a network failure in front of a real API.

The proxy owns the per-instance call counter the plan's call-indexed
rules (bursts, error rates) key on, so determinism needs no global
state. Methods in ``exclude`` are forwarded unwrapped — free local
helpers (scrape-date planning, world-side ingestion) are not requests
and must not draw faults.
"""

from __future__ import annotations

from typing import Optional, Set

import dataclasses

from ..core.enrichment import EnrichmentServices
from ..forums.base import Post, SearchPage
from .plan import CorruptPayload, FaultPlan

#: Service methods that are not API requests: world-side ingestion and
#: pure client-side planning. Injecting faults there would fail code
#: paths that never touch the (simulated) network.
DEFAULT_EXCLUDE: Set[str] = {
    "add_post", "add_posts", "delete_post", "register_apk",
    "weekly_scrape_dates", "snapshot", "meters",
}


class FaultProxy:
    """Transparent wrapper injecting a plan's faults ahead of each call."""

    _INTERNAL = ("_target", "_plan", "_service", "_clock", "_exclude",
                 "_calls", "_corrupters")

    def __init__(self, target, plan: FaultPlan, *,
                 service: Optional[str] = None, clock=None,
                 exclude: Optional[Set[str]] = None):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_plan", plan)
        object.__setattr__(
            self, "_service",
            service if service is not None else target.meter.service,
        )
        resolved_clock = clock if clock is not None else target.meter.clock
        if resolved_clock is None:
            raise ValueError(
                "FaultProxy needs a clock (the target's meter has none)"
            )
        object.__setattr__(self, "_clock", resolved_clock)
        object.__setattr__(
            self, "_exclude",
            DEFAULT_EXCLUDE if exclude is None else set(exclude),
        )
        object.__setattr__(self, "_calls", 0)
        object.__setattr__(self, "_corrupters", tuple(
            rule for rule in plan.rules_for(self._service)
            if isinstance(rule, CorruptPayload)
        ))

    # -- introspection (tests) ------------------------------------------------

    @property
    def fault_target(self):
        """The wrapped service object."""
        return self._target

    @property
    def fault_calls(self) -> int:
        """How many wrapped calls have been intercepted so far."""
        return self._calls

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> dict:
        return {"calls": self._calls}

    def restore_state(self, state: dict) -> None:
        """Jump the per-instance call counter to a journaled value so
        call-indexed rules (bursts, error rates) resume exactly where the
        crashed run left off."""
        object.__setattr__(self, "_calls", int(state["calls"]))

    # -- transparent forwarding -----------------------------------------------

    def __getattr__(self, name: str):
        attr = getattr(self._target, name)
        if (name.startswith("_") or name in self._exclude
                or not callable(attr)):
            return attr

        def wrapped(*args, **kwargs):
            index = self._calls
            object.__setattr__(self, "_calls", index + 1)
            self._plan.apply(self._service, index, self._clock)
            result = attr(*args, **kwargs)
            if self._corrupters:
                result = self._corrupt_result(index, result)
            return result

        wrapped.__name__ = getattr(attr, "__name__", name)
        return wrapped

    # -- payload corruption (CorruptPayload rules) ----------------------------

    def _corrupt_posts(self, index: int, posts):
        corrupted = []
        for position, post in enumerate(posts):
            if isinstance(post, Post) and any(
                    rule.hits(self._plan, index, position)
                    for rule in self._corrupters):
                # Never mutate the world's shared post objects — the
                # collector gets a mangled *copy*, like a real bad read.
                rule = next(r for r in self._corrupters
                            if r.hits(self._plan, index, position))
                post = dataclasses.replace(
                    post, body=rule.corrupt_body(post.body))
            corrupted.append(post)
        return corrupted

    def _corrupt_result(self, index: int, result):
        """Apply CorruptPayload rules to any post-shaped return value."""
        if isinstance(result, SearchPage):
            return SearchPage(posts=self._corrupt_posts(index, result.posts),
                              next_cursor=result.next_cursor)
        if isinstance(result, list) and any(
                isinstance(item, Post) for item in result):
            return self._corrupt_posts(index, result)
        if isinstance(result, Post):
            return self._corrupt_posts(index, [result])[0]
        return result

    def __setattr__(self, name: str, value) -> None:
        if name in self._INTERNAL:
            object.__setattr__(self, name, value)
        else:
            setattr(self._target, name, value)

    def __len__(self) -> int:
        return len(self._target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultProxy({self._service!r}, {self._target!r})"


def wrap_if_planned(service_obj, plan: FaultPlan, *, name: str, clock):
    """Wrap one service when the plan targets it, else pass it through."""
    if plan.affects(name):
        return FaultProxy(service_obj, plan, service=name, clock=clock)
    return service_obj


def inject_faults(services: EnrichmentServices, forums, plan: FaultPlan,
                  *, clock):
    """Wrap every planned-for service/forum; untouched ones pass through.

    Returns ``(services, forums)`` — new containers, original objects
    shared for every service the plan does not mention, so an empty plan
    is free and the world object is never mutated.
    """
    if plan.is_empty:
        return services, forums
    wrapped_services = EnrichmentServices(**{
        field: wrap_if_planned(
            getattr(services, field), plan,
            name=getattr(services, field).meter.service, clock=clock,
        )
        for field in ("hlr", "whois", "crtsh", "passivedns", "ipinfo",
                      "virustotal", "gsb", "openai")
    })
    wrapped_forums = {
        forum: wrap_if_planned(service_obj, plan, name=forum.value,
                               clock=clock)
        for forum, service_obj in forums.items()
    }
    return wrapped_services, wrapped_forums
