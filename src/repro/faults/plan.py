"""Deterministic fault plans: *what* fails, *when*, and *how*.

A :class:`FaultPlan` is a seeded, immutable description of the failures
to inject in front of services — the chaos-engineering analogue of the
real incidents the paper survived (§3.1). Four rule kinds compose:

* :class:`TransientBurst` — the service's calls ``after_calls`` ..
  ``after_calls + count - 1`` (0-based, counted per wrapped instance)
  fail with a retryable outage. Models a mid-run blip; because retries
  re-invoke the call, a burst of *n* consumes *n* attempts, not *n*
  distinct requests.
* :class:`OutageWindow` — every call while the simulated clock is in
  ``[start, end)`` fails. Retry backoff advances the clock, so callers
  with a :class:`~repro.resilience.RetryPolicy` ride out short windows
  and gap through long ones. ``permanent=True`` models a shutdown the
  way the Twitter academic API died: not retryable.
* :class:`ErrorRate` — each call fails independently with probability
  ``rate``, decided by a stable hash of ``(seed, service, call index)``
  — deterministic across runs, different across calls.
* :class:`InjectedLatency` — every call first advances the simulated
  clock by ``seconds`` (slow service, not a failing one).

Determinism: rules hold no state; the per-service call index lives in
the :class:`~repro.faults.proxy.FaultProxy` and the only randomness is
`stable_hash`, so two runs with the same seed and plan inject byte-
identical fault sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..errors import ConfigurationError, ServiceUnavailable, SimulatedCrash
from ..utils.rng import stable_hash


@dataclass(frozen=True)
class TransientBurst:
    """``count`` consecutive failing calls starting at ``after_calls``."""

    service: str
    after_calls: int
    count: int

    def check(self, plan: "FaultPlan", index: int, clock) -> None:
        if self.after_calls <= index < self.after_calls + self.count:
            raise ServiceUnavailable(
                f"{self.service}: injected transient fault "
                f"(call {index}, burst of {self.count})",
                service=self.service,
            )


@dataclass(frozen=True)
class OutageWindow:
    """The service is down while the sim clock is in ``[start, end)``."""

    service: str
    start: float
    end: float
    permanent: bool = False

    def check(self, plan: "FaultPlan", index: int, clock) -> None:
        if self.start <= clock.now < self.end:
            raise ServiceUnavailable(
                f"{self.service}: injected outage "
                f"(t={clock.now:.1f} in [{self.start:.0f}, {self.end:.0f}))",
                service=self.service,
                permanent=self.permanent,
            )


@dataclass(frozen=True)
class ErrorRate:
    """Each call independently fails with probability ``rate``."""

    service: str
    rate: float

    def check(self, plan: "FaultPlan", index: int, clock) -> None:
        draw = stable_hash(
            f"fault:{plan.seed}:{self.service}:{index}"
        ) / 2 ** 32
        if draw < self.rate:
            raise ServiceUnavailable(
                f"{self.service}: injected error (call {index})",
                service=self.service,
            )


@dataclass(frozen=True)
class InjectedLatency:
    """Every call costs ``seconds`` of simulated time before it runs."""

    service: str
    seconds: float

    def check(self, plan: "FaultPlan", index: int, clock) -> None:
        clock.advance(self.seconds)


@dataclass(frozen=True)
class CrashPoint:
    """Hard process death at the service's call ``at_call`` (0-based).

    Unlike every other rule this raises
    :class:`~repro.errors.SimulatedCrash` — a ``BaseException`` that no
    retry policy, breaker, or enrichment guard catches — so the run dies
    exactly as it would under ``kill -9``, mid-pipeline, with only the
    checkpoint journal left behind. The proxy's call counter increments
    *before* the plan is consulted and meter charges happen *after*, so
    a crash never lands mid-charge: the journal is always consistent.
    """

    service: str
    at_call: int

    def check(self, plan: "FaultPlan", index: int, clock) -> None:
        if index == self.at_call:
            raise SimulatedCrash(
                f"{self.service}: simulated process crash at call {index}",
                service=self.service,
                at_call=index,
            )


@dataclass(frozen=True)
class CorruptPayload:
    """Silently corrupt a fraction of the posts a forum call returns.

    Unlike every other rule this one never *fails* the call — the
    request succeeds, the meter charges, and the collector receives
    mangled data without knowing: bodies truncated mid-URL with
    replacement characters spliced in, the way real scrapes decay when
    an upstream changes encoding. The per-post draw is a stable hash of
    ``(seed, service, call index, position)``, so two runs with the
    same plan corrupt byte-identical posts. The corruption happens on
    *copies* — the world's own post objects are never touched.

    Not part of any named ``--faults`` profile: pair it with the
    ``--hostile`` world packs or hand-built plans in tests to prove the
    quarantine layer catches corruption the collector cannot see.
    """

    service: str
    rate: float
    seed_salt: str = "corrupt"

    def check(self, plan: "FaultPlan", index: int, clock) -> None:
        return None  # corruption applies to results, never the call

    def hits(self, plan: "FaultPlan", index: int, position: int) -> bool:
        draw = stable_hash(
            f"{self.seed_salt}:{plan.seed}:{self.service}:{index}:{position}"
        ) / 2 ** 32
        return draw < self.rate

    def corrupt_body(self, body: str) -> str:
        """Deterministic mangling: truncate at a third and splice in
        U+FFFD replacement characters (classic encoding rot)."""
        cut = max(1, len(body) // 3)
        return body[:cut] + "���" + body[cut:cut + 7]


FaultRule = object  # any of the six rule dataclasses above


class FaultPlan:
    """An immutable, seeded set of fault rules keyed by service name.

    Service names match the wire-level names used everywhere else in the
    repo: ``meter.service`` for enrichment services ("hlr", "whois",
    "gsb", ...) and ``Forum.value`` for forums ("Twitter", "Reddit", ...).
    """

    def __init__(self, seed: int = 0, rules: Iterable[FaultRule] = (),
                 profile: Optional[str] = None):
        self.seed = seed
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        #: Provenance: the named profile this plan was built from (set by
        #: :func:`build_fault_plan`), or None for hand-built plans. The
        #: checkpoint manifest records it so ``repro resume`` can rebuild
        #: the same plan without re-specifying ``--faults``.
        self.profile = profile
        for rule in self.rules:
            if not hasattr(rule, "service") or not hasattr(rule, "check"):
                raise ConfigurationError(
                    f"not a fault rule: {rule!r}"
                )

    @property
    def is_empty(self) -> bool:
        return not self.rules

    def affects(self, service: str) -> bool:
        return any(rule.service == service for rule in self.rules)

    def rules_for(self, service: str) -> Tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.service == service)

    def apply(self, service: str, index: int, clock) -> None:
        """Consult every rule for one call; crashes first, then latency,
        then failures.

        ``index`` is the 0-based per-instance call counter maintained by
        the proxy. Raises the first matching failure. Crash points are
        consulted before everything else: a process death at call N
        preempts whatever soft fault the profile would have injected at
        the same index (otherwise an ErrorRate firing at exactly N would
        shadow the one index the crash matches and the kill would never
        happen).
        """
        rules = self.rules_for(service)
        for rule in rules:
            if isinstance(rule, CrashPoint):
                rule.check(self, index, clock)
        for rule in rules:
            if isinstance(rule, InjectedLatency):
                rule.check(self, index, clock)
        for rule in rules:
            if not isinstance(rule, (CrashPoint, InjectedLatency)):
                rule.check(self, index, clock)

    def extended(self, *extra: FaultRule) -> "FaultPlan":
        """A new plan with ``extra`` rules appended (same seed/profile).

        The CLI uses this to graft a :class:`CrashPoint` onto a named
        profile (``--crash-at``) without disturbing the profile's rules.
        """
        return FaultPlan(seed=self.seed, rules=self.rules + tuple(extra),
                         profile=self.profile)

    def without_crash_points(self) -> "FaultPlan":
        """The plan minus any :class:`CrashPoint` rules.

        Two uses: the checkpoint manifest fingerprints the *survivable*
        fault plan (a crashed run and its resume intentionally differ in
        crash points), and ``repro resume`` strips them so the resumed
        run does not re-crash at the same call index.
        """
        kept = tuple(r for r in self.rules if not isinstance(r, CrashPoint))
        if len(kept) == len(self.rules):
            return self
        return FaultPlan(seed=self.seed, rules=kept, profile=self.profile)

    def describe(self) -> str:
        """One-line summary for span attributes and logs."""
        if self.is_empty:
            return "none"
        return "; ".join(
            f"{type(rule).__name__}({rule.service})" for rule in self.rules
        )


#: The CLI's named chaos profiles (``--faults PROFILE``).
FAULT_PROFILES = ("none", "flaky", "outage")


def build_fault_plan(profile: Optional[str], *, seed: int = 0) -> FaultPlan:
    """The named chaos profiles behind the ``--faults`` CLI flag.

    * ``none``  — empty plan (the default; zero injection overhead).
    * ``flaky`` — independent transient error rates on several
      enrichment services plus a Reddit error rate and a crt.sh burst:
      lots of retries, a handful of gaps, no lasting outage.
    * ``outage``— one mid-run outage: VirusTotal is down for the first
      240 simulated seconds (retry backoff rides the clock past the
      window, so late URLs recover), plus a passive-DNS burst.
    """
    if profile is None or profile == "none":
        return FaultPlan(seed=seed, profile="none")
    if profile == "flaky":
        return FaultPlan(seed=seed, profile="flaky", rules=(
            ErrorRate("whois", 0.20),
            ErrorRate("gsb", 0.10),
            ErrorRate("virustotal", 0.10),
            TransientBurst("crtsh", after_calls=10, count=6),
            InjectedLatency("openai", 0.02),
            ErrorRate("Reddit", 0.15),
        ))
    if profile == "outage":
        return FaultPlan(seed=seed, profile="outage", rules=(
            OutageWindow("virustotal", start=0.0, end=240.0),
            TransientBurst("spamhaus-pdns", after_calls=25, count=40),
        ))
    raise ConfigurationError(
        f"unknown fault profile {profile!r}; choose from {FAULT_PROFILES}"
    )
