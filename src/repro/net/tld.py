"""Top-level-domain registry with IANA root-zone classification.

Substitute for the ``tld`` PyPI package plus the IANA root database lookup
the paper performs in §3.3.3 / Table 16. The registry covers every TLD the
synthetic world registers domains under, each tagged with its IANA class
(generic, country-code, generic-restricted, sponsored, infrastructure,
test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ValidationError
from ..types import TldClass


@dataclass(frozen=True)
class TldRecord:
    """One entry of the root-zone database."""

    suffix: str
    tld_class: TldClass
    sponsor: str = ""


_GENERIC = [
    "com", "net", "org", "info", "me", "co", "top", "online", "xyz", "app",
    "dev", "site", "club", "shop", "live", "vip", "icu", "work", "link",
    "click", "buzz", "fun", "space", "store", "tech", "website", "world",
    "today", "cloud", "email", "digital", "network", "services", "support",
    "systems", "solutions", "agency", "finance", "money", "bank-card",
    "express", "delivery", "center", "host", "page", "mobi", "cam", "rest",
    "lol", "sbs", "cfd", "bond", "beauty", "hair", "skin", "makeup",
    "quest", "monster", "christmas", "loan", "men", "win", "bid", "date",
    "download", "racing", "review", "stream", "trade", "party", "science",
    "accountant", "faith", "cricket", "gdn", "okinawa", "tokyo", "asia",
    "best", "business", "cash", "chat", "city", "codes", "company",
    "computer", "credit", "deals", "direct", "events", "exchange", "fit",
    "group", "guru", "help", "life", "ltd", "media", "one", "plus", "pro",
    "run", "sale", "social", "team", "tips", "tools", "zone", "army",
    "blue", "red", "pink", "black", "gold", "green", "promo", "rocks",
    "wang", "ren", "lat", "uno", "ink", "wiki", "bar", "pw", "surf",
]

_COUNTRY_CODE = [
    "in", "us", "uk", "ly", "gd", "do", "gy", "de", "ws", "cc", "fr", "es",
    "nl", "it", "id", "pt", "jp", "br", "ru", "cn", "au", "be", "ch", "at",
    "ie", "cz", "pl", "ro", "tr", "ua", "za", "gh", "hu", "nz", "qa", "ke",
    "lk", "mw", "ng", "cd", "mx", "ar", "cl", "pe", "col", "ve", "ec",
    "my", "sg", "th", "vn", "ph", "kr", "tw", "hk", "il", "sa", "ae", "eg",
    "ma", "tn", "dz", "se", "no", "dk", "fi", "is", "gr", "bg", "hr", "sk",
    "si", "lt", "lv", "ee", "cy", "mt", "lu", "li", "mc", "sm", "md", "rs",
    "ba", "mk", "al", "ge", "am", "az", "kz", "uz", "pk", "bd", "np", "mm",
    "kh", "la", "mn", "fj", "pg", "to", "tv", "fm", "nu", "tk", "ml", "ga",
    "cf", "gq", "st", "su", "ai", "io", "sh", "ac", "vg", "ky", "bm", "bs",
    "bz", "pa", "cr", "ni", "hn", "gt", "sv", "cu", "ht", "dm", "lc", "vc",
    "tt", "jm", "pr", "gl", "fo", "gg", "je", "im", "eu", "gp",
]

_GENERIC_RESTRICTED = ["biz", "name", "pro-restricted"]

_SPONSORED = ["gov", "edu", "mil", "int", "aero", "coop", "museum", "travel",
              "jobs", "post", "tel", "cat", "xxx", "asia-s"]

_INFRASTRUCTURE = ["arpa"]

_TEST = ["test"]


class TldRegistry:
    """Lookup table from TLD suffix to :class:`TldRecord`.

    Also extracts the registered (pay-level) domain and TLD from a
    fully-qualified hostname, handling the multi-label public suffixes the
    free-hosting ecosystem of §4.3 relies on (``web.app``, ``ngrok.io``,
    ``firebaseapp.com``, ``herokuapp.com``, ``vercel.app``, ``netlify.app``).
    """

    #: Multi-label suffixes operated by free website-building services: a
    #: domain under one of these belongs to the *customer*, so the
    #: effective TLD is the whole suffix (paper §4.3 counts web.app,
    #: ngrok.io etc. separately).
    PUBLIC_SUFFIXES: Tuple[str, ...] = (
        "web.app",
        "ngrok.io",
        "firebaseapp.com",
        "herokuapp.com",
        "vercel.app",
        "netlify.app",
        "github.io",
        "pages.dev",
        "co.uk",
        "org.uk",
        "co.in",
        "com.br",
        "com.au",
        "co.za",
        "co.jp",
        "com.mx",
        "com.ar",
    )

    def __init__(self) -> None:
        self._records: Dict[str, TldRecord] = {}
        for suffix in _GENERIC:
            self._add(suffix, TldClass.GENERIC)
        for suffix in _COUNTRY_CODE:
            self._add(suffix, TldClass.COUNTRY_CODE)
        for suffix in _GENERIC_RESTRICTED:
            self._add(suffix, TldClass.GENERIC_RESTRICTED)
        for suffix in _SPONSORED:
            self._add(suffix, TldClass.SPONSORED)
        for suffix in _INFRASTRUCTURE:
            self._add(suffix, TldClass.INFRASTRUCTURE)
        for suffix in _TEST:
            self._add(suffix, TldClass.TEST)

    def _add(self, suffix: str, tld_class: TldClass) -> None:
        self._records[suffix] = TldRecord(suffix=suffix, tld_class=tld_class)

    def __contains__(self, suffix: str) -> bool:
        return suffix.lower().lstrip(".") in self._records

    def __len__(self) -> int:
        return len(self._records)

    def record(self, suffix: str) -> TldRecord:
        """Return the record for ``suffix`` or raise ``ValidationError``."""
        key = suffix.lower().lstrip(".")
        try:
            return self._records[key]
        except KeyError:
            raise ValidationError(f"unknown TLD: {suffix!r}") from None

    def classify(self, suffix: str) -> TldClass:
        """IANA class of a TLD suffix."""
        return self.record(suffix).tld_class

    def all_suffixes(self, tld_class: Optional[TldClass] = None) -> Iterable[str]:
        """All registered suffixes, optionally filtered by class."""
        for suffix, record in self._records.items():
            if tld_class is None or record.tld_class is tld_class:
                yield suffix

    def split_host(self, host: str) -> Tuple[str, str]:
        """Split a hostname into (registered_domain, effective_tld).

        ``fb.user-page.online`` → (``user-page.online``, ``online``);
        ``sa-krs.web.app`` → (``sa-krs.web.app``, ``web.app``) because
        ``web.app`` is a public suffix and the customer label is part of
        the registered name.
        """
        host = host.lower().strip(".")
        if not host or "." not in host:
            raise ValidationError(f"not a dotted hostname: {host!r}")
        labels = host.split(".")
        for suffix in sorted(self.PUBLIC_SUFFIXES, key=len, reverse=True):
            suffix_labels = suffix.split(".")
            if len(labels) > len(suffix_labels) and labels[-len(suffix_labels):] == suffix_labels:
                registered = ".".join(labels[-len(suffix_labels) - 1:])
                return registered, suffix
        tld = labels[-1]
        if tld not in self._records:
            raise ValidationError(f"unknown TLD in host: {host!r}")
        registered = ".".join(labels[-2:])
        return registered, tld

    def effective_tld(self, host: str) -> str:
        """Effective TLD of a host (multi-label for public suffixes)."""
        return self.split_host(host)[1]


_DEFAULT_REGISTRY: Optional[TldRegistry] = None


def default_registry() -> TldRegistry:
    """Shared immutable registry instance (built once per process)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = TldRegistry()
    return _DEFAULT_REGISTRY
