"""Autonomous-system registry: the hosting side of the smishing ecosystem.

Models §4.6 / Table 8: each AS owns IPv4 prefixes in one or more countries;
a small set of organisations operate several ASNs (Amazon runs AS16509 and
AS14618); some providers are CDN/proxy services that hide origin hosting
(Cloudflare), and a few are bulletproof hosting providers (Frantech,
Proton66, Stark Industries) that ignore abuse reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import NotFound
from .ipaddr import AddressPool, IPv4, Prefix


@dataclass(frozen=True)
class AsRecord:
    """One autonomous system."""

    asn: int
    organisation: str
    countries: Tuple[str, ...]
    prefixes: Tuple[str, ...]
    is_proxy: bool = False
    is_cloud: bool = False
    is_bulletproof: bool = False

    @property
    def name(self) -> str:
        return f"AS{self.asn}"


#: The AS catalogue, calibrated to Table 8 plus the BPHs named in §4.6.
#: Prefix sizes are intentionally small — they are allocation pools for the
#: simulation, not real routing tables.
_CATALOGUE: List[AsRecord] = [
    AsRecord(16509, "Amazon", ("US", "JP", "IE"), ("52.94.0.0/16",), is_cloud=True),
    AsRecord(14618, "Amazon", ("US", "IN", "MA"), ("54.160.0.0/16",), is_cloud=True),
    AsRecord(13335, "Cloudflare", ("US",), ("104.16.0.0/14",), is_proxy=True),
    AsRecord(63949, "Akamai", ("US", "IN"), ("172.104.0.0/16",), is_cloud=True),
    AsRecord(15169, "Google", ("US",), ("34.64.0.0/16",), is_cloud=True),
    AsRecord(396982, "Google", ("US",), ("35.192.0.0/16",), is_cloud=True),
    AsRecord(35916, "Multacom", ("US",), ("104.149.0.0/17",)),
    AsRecord(47846, "SEDO GmbH", ("DE",), ("91.195.240.0/23",)),
    AsRecord(45102, "Alibaba", ("HK", "CN"), ("47.74.0.0/16",), is_cloud=True),
    AsRecord(37963, "Alibaba", ("CN", "US"), ("47.92.0.0/16",), is_cloud=True),
    AsRecord(132203, "Tencent", ("US", "DE"), ("43.128.0.0/16",), is_cloud=True),
    AsRecord(53667, "FranTech Solutions", ("US", "LU"), ("198.98.48.0/20",),
             is_bulletproof=True),
    AsRecord(17444, "HKBN Enterprise", ("HK",), ("210.3.0.0/17",)),
    AsRecord(20473, "The Constant Company", ("US",), ("45.32.0.0/16",), is_cloud=True),
    AsRecord(198953, "Proton66 OOO", ("RU",), ("45.135.232.0/22",),
             is_bulletproof=True),
    AsRecord(44477, "Stark Industries", ("NL",), ("77.91.68.0/22",),
             is_bulletproof=True),
    AsRecord(16276, "OVH", ("FR",), ("51.38.0.0/16",), is_cloud=True),
    AsRecord(24940, "Hetzner", ("DE",), ("88.198.0.0/16",), is_cloud=True),
    AsRecord(14061, "DigitalOcean", ("US", "SG"), ("138.68.0.0/16",), is_cloud=True),
    AsRecord(26496, "GoDaddy Hosting", ("US",), ("160.153.0.0/17",), is_cloud=True),
    AsRecord(8075, "Microsoft", ("US",), ("40.76.0.0/16",), is_cloud=True),
    AsRecord(55293, "A2 Hosting", ("US",), ("68.66.224.0/19",)),
    AsRecord(22612, "Namecheap Hosting", ("US",), ("198.54.112.0/20",)),
    AsRecord(19871, "Network Solutions", ("US",), ("205.178.128.0/18",)),
]


class AsRegistry:
    """Registry of autonomous systems, with IP allocation and reverse lookup.

    Acts as both the world's hosting substrate (allocating addresses to
    smishing hosts) and the ``ipinfo.io`` IP-to-ASN / IP-to-country
    database (§3.3.3).
    """

    def __init__(self, catalogue: Optional[List[AsRecord]] = None):
        self._records: Dict[int, AsRecord] = {}
        self._pools: Dict[int, AddressPool] = {}
        self._prefix_index: List[Tuple[Prefix, AsRecord]] = []
        for record in catalogue if catalogue is not None else _CATALOGUE:
            self.add(record)

    def add(self, record: AsRecord) -> None:
        self._records[record.asn] = record
        prefixes = [Prefix.parse(p) for p in record.prefixes]
        self._pools[record.asn] = AddressPool(prefixes)
        for prefix in prefixes:
            self._prefix_index.append((prefix, record))
        # Longest-prefix first so lookups prefer the most specific owner.
        self._prefix_index.sort(key=lambda item: -item[0].length)

    def __len__(self) -> int:
        return len(self._records)

    def record(self, asn: int) -> AsRecord:
        try:
            return self._records[asn]
        except KeyError:
            raise NotFound(f"unknown ASN: {asn}", service="asn") from None

    def organisations(self) -> List[str]:
        return sorted({r.organisation for r in self._records.values()})

    def asns_for(self, organisation: str) -> List[AsRecord]:
        return [r for r in self._records.values() if r.organisation == organisation]

    def allocate_address(self, asn: int, rng: random.Random) -> IPv4:
        """Allocate a fresh address from one of the AS's prefixes."""
        try:
            pool = self._pools[asn]
        except KeyError:
            raise NotFound(f"unknown ASN: {asn}", service="asn") from None
        return pool.allocate(rng)

    def lookup(self, address: IPv4) -> AsRecord:
        """Find the AS owning ``address`` (ipinfo.io style)."""
        for prefix, record in self._prefix_index:
            if address in prefix:
                return record
        raise NotFound(f"address not announced: {address}", service="asn")

    def country_of(self, address: IPv4, rng: Optional[random.Random] = None) -> str:
        """ipinfo's IP-to-country answer.

        Multi-country organisations geolocate per-address; we pick a
        deterministic country from the AS's list keyed on the address so
        repeated queries agree.
        """
        record = self.lookup(address)
        if len(record.countries) == 1:
            return record.countries[0]
        return record.countries[address.value % len(record.countries)]

    def bulletproof_asns(self) -> List[AsRecord]:
        return [r for r in self._records.values() if r.is_bulletproof]


@dataclass
class HostingChoice:
    """How a campaign host is placed: directly on a cloud/BPH, optionally
    fronted by a proxy AS (Cloudflare) that hides the origin."""

    origin_asn: int
    proxy_asn: Optional[int] = None
    addresses: List[IPv4] = field(default_factory=list)

    @property
    def visible_asn(self) -> int:
        """The ASN passive DNS observers see (the proxy when present)."""
        return self.proxy_asn if self.proxy_asn is not None else self.origin_asn
