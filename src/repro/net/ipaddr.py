"""Minimal IPv4 modelling: addresses, prefixes, and allocation pools.

The hosting simulation assigns each web host one or more IPv4 addresses
drawn from prefixes owned by autonomous systems (see
:mod:`repro.net.asn`). We model addresses as plain integers wrapped in a
tiny value type rather than pulling in :mod:`ipaddress`, because we also
need deterministic sequential allocation out of a prefix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ValidationError


@dataclass(frozen=True, order=True)
class IPv4:
    """An IPv4 address stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**32:
            raise ValidationError(f"IPv4 value out of range: {self.value}")

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    @classmethod
    def parse(cls, text: str) -> "IPv4":
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise ValidationError(f"not an IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValidationError(f"not an IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValidationError(f"octet out of range: {text!r}")
            value = (value << 8) | octet
        return cls(value)


@dataclass(frozen=True)
class Prefix:
    """A CIDR prefix such as ``104.16.0.0/13``."""

    network: IPv4
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValidationError(f"prefix length out of range: {self.length}")
        mask = self.mask
        if self.network.value & ~mask & 0xFFFFFFFF:
            raise ValidationError(
                f"network {self.network} has host bits set for /{self.length}"
            )

    @property
    def mask(self) -> int:
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        return 2 ** (32 - self.length)

    def __contains__(self, address: IPv4) -> bool:
        return (address.value & self.mask) == self.network.value

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        network_text, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise ValidationError(f"not a CIDR prefix: {text!r}")
        return cls(IPv4.parse(network_text), int(length_text))

    def hosts(self) -> Iterator[IPv4]:
        """Iterate all addresses in the prefix (including network/broadcast;
        this is an allocation pool, not a subnet plan)."""
        for offset in range(self.size):
            yield IPv4(self.network.value + offset)

    def random_address(self, rng: random.Random) -> IPv4:
        """Pick a uniform random address inside the prefix."""
        return IPv4(self.network.value + rng.randrange(self.size))


class AddressPool:
    """Deterministic allocator handing out unique addresses from prefixes."""

    def __init__(self, prefixes: List[Prefix]):
        if not prefixes:
            raise ValidationError("AddressPool requires at least one prefix")
        self._prefixes = list(prefixes)
        self._allocated: set = set()

    def allocate(self, rng: random.Random) -> IPv4:
        """Allocate a previously unissued address (random prefix, random
        offset, with linear probing on collision)."""
        total = sum(p.size for p in self._prefixes)
        if len(self._allocated) >= total:
            raise ValidationError("address pool exhausted")
        for _ in range(64):
            prefix = rng.choice(self._prefixes)
            address = prefix.random_address(rng)
            if address.value not in self._allocated:
                self._allocated.add(address.value)
                return address
        # Dense pool: fall back to a scan.
        for prefix in self._prefixes:
            for address in prefix.hosts():
                if address.value not in self._allocated:
                    self._allocated.add(address.value)
                    return address
        raise ValidationError("address pool exhausted")

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)
